// The packer geometry manager (Section 3.4, Figure 8) plus a simple placer.
//
// The packer implements the Tk 3.x cavity algorithm: slaves are processed in
// order, each carving a parcel off one side of the remaining cavity.
// Syntax (as in the paper):
//
//   pack append .x .x.a top .x.b top .x.c top
//   pack append . .scroll {right filly} .list {left expand fill}
//
// The option list per window understands: top/bottom/left/right, expand,
// fill, fillx, filly, padx N, pady N, frame <anchor>.  `pack unpack` forgets
// a window; `pack info` reports the slave list.  Geometry propagation sizes
// the parent to fit its slaves.

#ifndef SRC_TK_PACK_H_
#define SRC_TK_PACK_H_

#include <map>
#include <string>
#include <vector>

#include "src/tk/widget.h"

namespace tk {

class App;

enum class Side { kTop, kBottom, kLeft, kRight };

struct PackOptions {
  Side side = Side::kTop;
  bool expand = false;
  bool fill_x = false;
  bool fill_y = false;
  int pad_x = 0;
  int pad_y = 0;
  Anchor anchor = Anchor::kCenter;
};

class Packer : public GeometryManager {
 public:
  explicit Packer(App& app) : app_(app) {}

  const char* name() const override { return "pack"; }

  // Parses an option list ("{left expand fill}") into PackOptions.
  static tcl::Code ParseOptions(tcl::Interp& interp, const std::string& list,
                                PackOptions* out);

  // Appends `slave` to `parent`'s pack list (claiming management).
  tcl::Code Append(Widget* parent, Widget* slave, const PackOptions& options);
  // Inserts before/after an existing slave.
  tcl::Code InsertRelative(Widget* parent, Widget* anchor_slave, bool after, Widget* slave,
                           const PackOptions& options);
  // Removes `slave` from its parent's pack list and unmaps it.
  tcl::Code Unpack(Widget* slave);
  // The slave paths packed in `parent`, in order.
  std::vector<std::string> Slaves(const Widget* parent) const;
  const PackOptions* OptionsFor(const Widget* slave) const;
  bool Manages(const Widget* slave) const;

  // Recomputes the layout of `parent` now (normally done at idle time).
  void Arrange(Widget* parent);

  // Geometry propagation: resize the parent to fit its slaves' requests
  // (on by default, as in Tk).
  void SetPropagate(Widget* parent, bool propagate);

  // GeometryManager:
  void RequestChanged(Widget* widget) override;
  void WidgetGone(Widget* widget) override;

 private:
  struct Slave {
    Widget* widget = nullptr;
    PackOptions options;
  };
  struct Master {
    std::vector<Slave> slaves;
    bool propagate = true;
  };

  // Extra width/height the expandable slaves from index `first` can share.
  static int XExpansion(const std::vector<Slave>& slaves, size_t first, int cavity_width);
  static int YExpansion(const std::vector<Slave>& slaves, size_t first, int cavity_height);
  void PropagateRequest(Widget* parent, Master& master);

  App& app_;
  std::map<std::string, Master> masters_;            // Keyed by parent path.
  std::map<std::string, std::string> slave_parent_;  // Slave path -> parent path.
};

// The `place` manager: absolute/relative placement, as a second manager to
// demonstrate the framework's manager-independence.
class Placer : public GeometryManager {
 public:
  explicit Placer(App& app) : app_(app) {}
  const char* name() const override { return "place"; }

  struct Placement {
    int x = 0;
    int y = 0;
    double rel_width = 0.0;   // 0 = use requested size.
    double rel_height = 0.0;
    int width = 0;            // 0 = use requested size.
    int height = 0;
  };

  tcl::Code Place(Widget* parent, Widget* slave, const Placement& placement);
  tcl::Code Forget(Widget* slave);
  void Arrange(Widget* parent);

  void RequestChanged(Widget* widget) override;
  void WidgetGone(Widget* widget) override;

 private:
  struct Slave {
    Widget* widget = nullptr;
    Placement placement;
  };

  App& app_;
  std::map<std::string, std::vector<Slave>> masters_;
  std::map<std::string, std::string> slave_parent_;
};

}  // namespace tk

#endif  // SRC_TK_PACK_H_
