#include "src/tk/bind.h"

#include <cctype>
#include <cstdio>

#include "src/tcl/interp.h"
#include "src/tk/app.h"

namespace tk {
namespace {

// Max time between presses (server ticks) for Double-/Triple- matching.
constexpr xsim::Timestamp kMultiClickTime = 500;
// How much event history to keep per window.
constexpr size_t kHistoryLimit = 32;

struct TypeName {
  const char* name;
  xsim::EventType type;
};

constexpr TypeName kTypeNames[] = {
    {"Key", xsim::EventType::kKeyPress},
    {"KeyPress", xsim::EventType::kKeyPress},
    {"KeyRelease", xsim::EventType::kKeyRelease},
    {"Button", xsim::EventType::kButtonPress},
    {"ButtonPress", xsim::EventType::kButtonPress},
    {"ButtonRelease", xsim::EventType::kButtonRelease},
    {"Motion", xsim::EventType::kMotionNotify},
    {"Enter", xsim::EventType::kEnterNotify},
    {"Leave", xsim::EventType::kLeaveNotify},
    {"FocusIn", xsim::EventType::kFocusIn},
    {"FocusOut", xsim::EventType::kFocusOut},
    {"Expose", xsim::EventType::kExpose},
    {"Configure", xsim::EventType::kConfigureNotify},
    {"Map", xsim::EventType::kMapNotify},
    {"Unmap", xsim::EventType::kUnmapNotify},
    {"Destroy", xsim::EventType::kDestroyNotify},
    {"Property", xsim::EventType::kPropertyNotify},
};

struct ModName {
  const char* name;
  uint32_t mask;
};

constexpr ModName kModNames[] = {
    {"Control", xsim::kControlMask}, {"Shift", xsim::kShiftMask},
    {"Lock", xsim::kLockMask},       {"Meta", xsim::kMod1Mask},
    {"M", xsim::kMod1Mask},          {"Alt", xsim::kMod1Mask},
    {"Mod1", xsim::kMod1Mask},       {"B1", xsim::kButton1Mask},
    {"Button1", xsim::kButton1Mask}, {"B2", xsim::kButton2Mask},
    {"Button2", xsim::kButton2Mask}, {"B3", xsim::kButton3Mask},
    {"Button3", xsim::kButton3Mask}, {"B4", xsim::kButton4Mask},
    {"Button4", xsim::kButton4Mask}, {"B5", xsim::kButton5Mask},
    {"Button5", xsim::kButton5Mask},
};

// Splits the inside of <...> on '-'.
std::vector<std::string> SplitFields(const std::string& text) {
  std::vector<std::string> fields;
  std::string current;
  for (char c : text) {
    if (c == '-' && !current.empty()) {
      fields.push_back(current);
      current.clear();
    } else if (c != '-') {
      current.push_back(c);
    }
  }
  if (!current.empty()) {
    fields.push_back(current);
  }
  return fields;
}

// Parses the contents of one <...> token.
bool ParseAngleToken(const std::string& contents, EventPattern* out, std::string* error) {
  EventPattern pattern;
  std::vector<std::string> fields = SplitFields(contents);
  if (fields.empty()) {
    *error = "empty event specification";
    return false;
  }
  bool have_type = false;
  size_t i = 0;
  for (; i < fields.size(); ++i) {
    const std::string& field = fields[i];
    // Repeat counts.
    if (field == "Double") {
      pattern.repeat = 2;
      continue;
    }
    if (field == "Triple") {
      pattern.repeat = 3;
      continue;
    }
    if (field == "Any") {
      pattern.any_modifiers = true;
      continue;
    }
    // Modifiers.
    bool is_mod = false;
    for (const ModName& mod : kModNames) {
      if (field == mod.name) {
        pattern.modifiers |= mod.mask;
        is_mod = true;
        break;
      }
    }
    if (is_mod) {
      continue;
    }
    // Event type.
    bool is_type = false;
    for (const TypeName& type : kTypeNames) {
      if (field == type.name) {
        pattern.type = type.type;
        have_type = true;
        is_type = true;
        break;
      }
    }
    if (is_type) {
      ++i;
      break;  // Whatever follows is the detail.
    }
    break;  // Not a modifier or type: must be the detail.
  }
  // Remaining field (if any) is the detail.
  if (i < fields.size()) {
    const std::string& detail = fields[i];
    if (i + 1 < fields.size()) {
      *error = "extra fields in event specification \"" + contents + "\"";
      return false;
    }
    bool all_digits = !detail.empty();
    for (char c : detail) {
      if (!std::isdigit(static_cast<unsigned char>(c))) {
        all_digits = false;
        break;
      }
    }
    if (all_digits &&
        (!have_type || pattern.type == xsim::EventType::kButtonPress ||
         pattern.type == xsim::EventType::kButtonRelease)) {
      // <1>, <Double-1>, <ButtonRelease-2>: button detail.
      if (!have_type) {
        pattern.type = xsim::EventType::kButtonPress;
      }
      pattern.detail = static_cast<uint32_t>(std::stoul(detail));
    } else {
      // Keysym detail.
      std::optional<xsim::KeySym> keysym = xsim::KeySymFromName(detail);
      if (!keysym) {
        *error = "bad event type or keysym \"" + detail + "\"";
        return false;
      }
      if (!have_type) {
        pattern.type = xsim::EventType::kKeyPress;
      }
      pattern.detail = *keysym;
    }
  } else if (!have_type) {
    *error = "no event type or button # or keysym in \"" + contents + "\"";
    return false;
  }
  *out = pattern;
  return true;
}

bool EventMatches(const EventPattern& pattern, const xsim::Event& event) {
  if (pattern.type != event.type) {
    return false;
  }
  if (pattern.detail != 0 && pattern.detail != event.detail) {
    return false;
  }
  if (!pattern.any_modifiers && (event.state & pattern.modifiers) != pattern.modifiers) {
    return false;
  }
  return true;
}

// Events that may sit between the presses of a sequence without breaking it.
bool IsIgnorableBetween(const xsim::Event& event) {
  switch (event.type) {
    case xsim::EventType::kKeyRelease:
    case xsim::EventType::kButtonRelease:
    case xsim::EventType::kMotionNotify:
    case xsim::EventType::kEnterNotify:
    case xsim::EventType::kLeaveNotify:
    case xsim::EventType::kExpose:
      return true;
    default:
      return false;
  }
}

}  // namespace

std::optional<std::vector<EventPattern>> ParseEventSequence(const std::string& text,
                                                            std::string* error) {
  std::vector<EventPattern> sequence;
  size_t pos = 0;
  while (pos < text.size()) {
    char c = text[pos];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++pos;
      continue;
    }
    if (c == '<') {
      size_t close = text.find('>', pos);
      if (close == std::string::npos) {
        *error = "missing \">\" in binding";
        return std::nullopt;
      }
      EventPattern pattern;
      if (!ParseAngleToken(text.substr(pos + 1, close - pos - 1), &pattern, error)) {
        return std::nullopt;
      }
      sequence.push_back(pattern);
      pos = close + 1;
      continue;
    }
    // A bare character: KeyPress of that keysym.
    std::optional<xsim::KeySym> keysym = xsim::KeySymFromName(text.substr(pos, 1));
    if (!keysym) {
      *error = std::string("bad character \"") + c + "\" in binding";
      return std::nullopt;
    }
    EventPattern pattern;
    pattern.type = xsim::EventType::kKeyPress;
    pattern.detail = *keysym;
    sequence.push_back(pattern);
    ++pos;
  }
  if (sequence.empty()) {
    *error = "empty binding";
    return std::nullopt;
  }
  return sequence;
}

std::string ExpandPercents(const std::string& script, const xsim::Event& event,
                           const std::string& widget_path) {
  std::string out;
  out.reserve(script.size() + 16);
  for (size_t i = 0; i < script.size(); ++i) {
    char c = script[i];
    if (c != '%' || i + 1 >= script.size()) {
      out.push_back(c);
      continue;
    }
    ++i;
    char kind = script[i];
    switch (kind) {
      case '%':
        out.push_back('%');
        break;
      case 'x':
        out += std::to_string(event.x);
        break;
      case 'y':
        out += std::to_string(event.y);
        break;
      case 'X':
        out += std::to_string(event.x_root);
        break;
      case 'Y':
        out += std::to_string(event.y_root);
        break;
      case 'b':
        out += std::to_string(event.detail);
        break;
      case 'k':
        out += std::to_string(event.detail);
        break;
      case 'K':
        out += xsim::KeySymName(event.detail);
        break;
      case 'A': {
        // The ASCII string the keystroke produces, list-quoted so scripts
        // can insert it safely.
        std::string ascii =
            xsim::KeySymToString(event.detail, (event.state & xsim::kShiftMask) != 0);
        if (ascii.empty() || ascii == " " || ascii == "\n" || ascii == "\t" ||
            ascii.find_first_of("\\{}[]$\";") != std::string::npos) {
          out += "{" + ascii + "}";
        } else {
          out += ascii;
        }
        break;
      }
      case 'W':
        out += widget_path;
        break;
      case 'w':
        out += std::to_string(event.area.width);
        break;
      case 'h':
        out += std::to_string(event.area.height);
        break;
      case 's':
        out += std::to_string(event.state);
        break;
      case 't':
        out += std::to_string(event.time);
        break;
      case 'T':
        out += xsim::EventTypeName(event.type);
        break;
      default:
        out.push_back('%');
        out.push_back(kind);
        break;
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// BindingTable.

tcl::Code BindingTable::Bind(const std::string& tag, const std::string& pattern,
                             const std::string& script) {
  std::string error;
  std::optional<std::vector<EventPattern>> sequence = ParseEventSequence(pattern, &error);
  if (!sequence) {
    return app_.interp().Error(error);
  }
  std::vector<Binding>& list = bindings_[tag];
  for (size_t i = 0; i < list.size(); ++i) {
    if (list[i].pattern_text == pattern) {
      if (script.empty()) {
        list.erase(list.begin() + i);
      } else {
        list[i].script = script;
        list[i].sequence = *sequence;
      }
      return tcl::Code::kOk;
    }
  }
  if (script.empty()) {
    return tcl::Code::kOk;
  }
  Binding binding;
  binding.sequence = std::move(*sequence);
  binding.script = script;
  binding.pattern_text = pattern;
  list.push_back(std::move(binding));
  return tcl::Code::kOk;
}

std::string BindingTable::GetBinding(const std::string& tag, const std::string& pattern) const {
  auto it = bindings_.find(tag);
  if (it == bindings_.end()) {
    return "";
  }
  for (const Binding& binding : it->second) {
    if (binding.pattern_text == pattern) {
      return binding.script;
    }
  }
  return "";
}

std::vector<std::string> BindingTable::BoundPatterns(const std::string& tag) const {
  std::vector<std::string> out;
  auto it = bindings_.find(tag);
  if (it == bindings_.end()) {
    return out;
  }
  for (const Binding& binding : it->second) {
    out.push_back(binding.pattern_text);
  }
  return out;
}

void BindingTable::RemoveTag(const std::string& tag) {
  bindings_.erase(tag);
  histories_.erase(tag);
}

bool BindingTable::MatchesSequence(const Binding& binding, const History& history,
                                   const xsim::Event& event) {
  // Match the pattern sequence against the tail of the history; the last
  // pattern element must match the current event.
  int hist_index = static_cast<int>(history.events.size()) - 1;
  for (int p = static_cast<int>(binding.sequence.size()) - 1; p >= 0; --p) {
    const EventPattern& pattern = binding.sequence[p];
    int need = pattern.repeat;
    xsim::Timestamp last_time = 0;
    bool matched_current = false;
    while (need > 0) {
      if (hist_index < 0) {
        return false;
      }
      const xsim::Event& candidate = history.events[hist_index];
      bool is_current = static_cast<size_t>(hist_index) == history.events.size() - 1;
      if (EventMatches(pattern, candidate)) {
        if (last_time != 0 && last_time - candidate.time > kMultiClickTime) {
          return false;  // Presses too far apart for Double/Triple.
        }
        last_time = candidate.time;
        --need;
        --hist_index;
        if (is_current) {
          matched_current = true;
        }
        continue;
      }
      if (is_current) {
        return false;  // The triggering event must match the final pattern.
      }
      if (IsIgnorableBetween(candidate)) {
        --hist_index;
        continue;
      }
      return false;
    }
    if (p == static_cast<int>(binding.sequence.size()) - 1 && !matched_current) {
      return false;
    }
    (void)event;
  }
  return true;
}

const Binding* BindingTable::FindBestMatch(const std::string& tag, const History& history,
                                           const xsim::Event& event) const {
  auto it = bindings_.find(tag);
  if (it == bindings_.end()) {
    return nullptr;
  }
  const Binding* best = nullptr;
  auto score = [](const Binding& b) {
    // Longer sequences are more specific; then higher repeat counts; then
    // more modifiers; then a concrete detail.
    uint64_t s = b.sequence.size() * 1000000;
    const EventPattern& last = b.sequence.back();
    s += static_cast<uint64_t>(last.repeat) * 10000;
    s += static_cast<uint64_t>(__builtin_popcount(last.modifiers)) * 100;
    if (last.detail != 0) {
      s += 10;
    }
    return s;
  };
  for (const Binding& binding : it->second) {
    if (!MatchesSequence(binding, history, event)) {
      continue;
    }
    if (best == nullptr || score(binding) > score(*best)) {
      best = &binding;
    }
  }
  return best;
}

int BindingTable::Dispatch(const xsim::Event& event, const std::string& widget_path,
                           const std::string& widget_class) {
  History& history = histories_[widget_path];
  history.events.push_back(event);
  if (history.events.size() > kHistoryLimit) {
    history.events.pop_front();
  }
  int fired = 0;
  // Per Tk: the widget's own bindings fire, and so do its class bindings --
  // one (the most specific) per tag.
  std::string scripts[2];
  size_t count = 0;
  for (const std::string& tag : {widget_path, widget_class}) {
    const Binding* binding = FindBestMatch(tag, history, event);
    if (binding != nullptr) {
      scripts[count++] = ExpandPercents(binding->script, event, widget_path);
    }
  }
  // Execute after lookup: a script may mutate the binding table.
  for (size_t i = 0; i < count; ++i) {
    tcl::Code code = app_.interp().Eval(scripts[i]);
    ++fired;
    ++match_count_;
    if (code == tcl::Code::kError) {
      // A binding has no caller to return the error to; hand it to the
      // application's shared background-error path (tkerror or stderr).
      app_.BackgroundError("binding error (" + widget_path + "): " +
                           app_.interp().result());
    }
  }
  return fired;
}

}  // namespace tk
