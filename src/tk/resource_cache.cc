#include "src/tk/resource_cache.h"

#include <cctype>

namespace tk {
namespace {

// The monochrome fallback when a color cannot be allocated: keep light
// colors visible on dark backgrounds and vice versa.
xsim::Pixel FallbackPixel(const std::string& name) {
  std::string lower;
  lower.reserve(name.size());
  for (char c : name) {
    lower.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  }
  bool light = lower.find("white") != std::string::npos ||
               lower.find("light") != std::string::npos;
  return light ? 0xffffff : 0x000000;
}

}  // namespace

xsim::Pixel ResourceCache::GetColor(const std::string& name) {
  if (caching_enabled_) {
    auto it = colors_.find(name);
    if (it != colors_.end()) {
      CountHit(color_stats_);
      return it->second;
    }
  }
  CountMiss(color_stats_);
  std::optional<xsim::Pixel> allocated = display_.AllocNamedColor(name);
  xsim::Pixel pixel;
  if (allocated) {
    pixel = *allocated;
  } else {
    ++degraded_;
    pixel = FallbackPixel(name);
  }
  if (caching_enabled_ && allocated) {
    colors_[name] = pixel;
  }
  return pixel;
}

std::optional<std::string> ResourceCache::NameOfColor(xsim::Pixel pixel) const {
  // Prefer the name the application actually used (cache reverse lookup),
  // falling back to the server database name.
  for (const auto& [name, cached] : colors_) {
    if (cached == pixel) {
      return name;
    }
  }
  return xsim::ColorName(xsim::UnpackPixel(pixel));
}

std::optional<xsim::FontId> ResourceCache::GetFont(const std::string& name) {
  if (caching_enabled_) {
    auto it = fonts_.find(name);
    if (it != fonts_.end()) {
      CountHit(font_stats_);
      return it->second;
    }
  }
  CountMiss(font_stats_);
  std::optional<xsim::FontId> font = display_.LoadFont(name);
  if (!font) {
    return std::nullopt;
  }
  if (caching_enabled_) {
    fonts_[name] = *font;
  }
  return font;
}

std::optional<std::string> ResourceCache::NameOfFont(xsim::FontId font) const {
  for (const auto& [name, cached] : fonts_) {
    if (cached == font) {
      return name;
    }
  }
  const xsim::FontMetrics* metrics = display_.QueryFont(font);
  if (metrics == nullptr) {
    return std::nullopt;
  }
  return metrics->name;
}

xsim::CursorId ResourceCache::GetCursor(const std::string& name) {
  if (caching_enabled_) {
    auto it = cursors_.find(name);
    if (it != cursors_.end()) {
      CountHit(cursor_stats_);
      return it->second;
    }
  }
  CountMiss(cursor_stats_);
  xsim::CursorId cursor = display_.CreateNamedCursor(name);
  if (caching_enabled_) {
    cursors_[name] = cursor;
  }
  return cursor;
}

std::optional<std::string> ResourceCache::NameOfCursor(xsim::CursorId cursor) const {
  for (const auto& [name, cached] : cursors_) {
    if (cached == cursor) {
      return name;
    }
  }
  return display_.server().CursorName(cursor);
}

std::optional<xsim::BitmapId> ResourceCache::GetBitmap(const std::string& name) {
  if (caching_enabled_) {
    auto it = bitmaps_.find(name);
    if (it != bitmaps_.end()) {
      CountHit(bitmap_stats_);
      return it->second;
    }
  }
  CountMiss(bitmap_stats_);
  // "@file" names a bitmap file (Section 3.3's "@star"); built-in names get
  // a nominal 16x16 cell.  Either way the server records it by name.
  int width = 16;
  int height = 16;
  xsim::BitmapId bitmap = display_.CreateBitmap(name, width, height);
  if (caching_enabled_) {
    bitmaps_[name] = bitmap;
  }
  return bitmap;
}

std::optional<std::string> ResourceCache::NameOfBitmap(xsim::BitmapId bitmap) const {
  for (const auto& [name, cached] : bitmaps_) {
    if (cached == bitmap) {
      return name;
    }
  }
  return std::nullopt;
}

}  // namespace tk
