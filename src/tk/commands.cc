// Tcl commands exposing the Tk intrinsics: widget creation commands, bind,
// pack, place, destroy, winfo, focus, option, selection, send, after,
// update, tkwait, wm.  This is what makes "virtually all of the intrinsics
// accessible from Tcl" (Section 3 of the paper).

#include <fstream>
#include <functional>
#include <sstream>

#include "src/tcl/list.h"
#include "src/tcl/utils.h"
#include "src/tk/app.h"
#include "src/tk/bind.h"
#include "src/tk/pack.h"
#include "src/tk/selection.h"
#include "src/tk/send.h"
#include "src/tk/trace_cmd.h"
#include "src/tk/widget.h"
#include "src/tk/widgets/button.h"
#include "src/tk/widgets/canvas.h"
#include "src/tk/widgets/entry.h"
#include "src/tk/widgets/frame.h"
#include "src/tk/widgets/listbox.h"
#include "src/tk/widgets/menu.h"
#include "src/tk/widgets/message.h"
#include "src/tk/widgets/scale.h"
#include "src/tk/widgets/scrollbar.h"
#include "src/tk/widgets/text.h"

namespace tk {
namespace {

using WidgetFactory = std::function<std::unique_ptr<Widget>(App&, std::string path)>;

// Checks that `path` is a legal, not-yet-used window path whose parent
// exists.
tcl::Code ValidateNewPath(App& app, const std::string& path) {
  tcl::Interp& interp = app.interp();
  if (path.empty() || path[0] != '.') {
    return interp.Error("bad window path name \"" + path + "\"");
  }
  if (app.FindWidget(path) != nullptr) {
    return interp.Error("window name \"" + path + "\" already exists");
  }
  size_t dot = path.rfind('.');
  std::string parent = dot == 0 ? "." : path.substr(0, dot);
  if (path != "." && app.FindWidget(parent) == nullptr) {
    return interp.Error("bad window path name \"" + path + "\" (parent \"" + parent +
                        "\" doesn't exist)");
  }
  if (path.find("..") != std::string::npos || path.back() == '.') {
    return interp.Error("bad window path name \"" + path + "\"");
  }
  return tcl::Code::kOk;
}

// Registers one widget-creation command (e.g. `button .b -text Hi`).
void RegisterWidgetClass(App& app, const std::string& command, WidgetFactory factory) {
  App* app_ptr = &app;
  app.interp().RegisterCommand(
      command, [app_ptr, factory, command](tcl::Interp& interp,
                                           std::vector<std::string>& args) {
        if (args.size() < 2) {
          return interp.WrongNumArgs(command + " pathName ?options?");
        }
        const std::string path = args[1];
        tcl::Code code = ValidateNewPath(*app_ptr, path);
        if (code != tcl::Code::kOk) {
          return code;
        }
        std::unique_ptr<Widget> widget = factory(*app_ptr, path);
        Widget* ptr = app_ptr->AddWidget(std::move(widget));
        code = ptr->ConfigureFromArgs(args, 2);
        if (code == tcl::Code::kOk) {
          code = ptr->ApplyDefaults();
        }
        if (code != tcl::Code::kOk) {
          std::string message = interp.result();
          app_ptr->DestroyWidget(path);
          return interp.Error(message);
        }
        interp.SetResult(path);
        return tcl::Code::kOk;
      });
}

// --- bind ----------------------------------------------------------------------

tcl::Code BindCmd(App& app, std::vector<std::string>& args) {
  tcl::Interp& interp = app.interp();
  if (args.size() < 2 || args.size() > 4) {
    return interp.WrongNumArgs("bind window ?pattern? ?command?");
  }
  const std::string& tag = args[1];
  if (args.size() == 2) {
    interp.SetResult(tcl::MergeList(app.bindings().BoundPatterns(tag)));
    return tcl::Code::kOk;
  }
  if (args.size() == 3) {
    interp.SetResult(app.bindings().GetBinding(tag, args[2]));
    return tcl::Code::kOk;
  }
  return app.bindings().Bind(tag, args[2], args[3]);
}

// --- pack ----------------------------------------------------------------------

tcl::Code PackCmd(App& app, std::vector<std::string>& args) {
  tcl::Interp& interp = app.interp();
  if (args.size() < 2) {
    return interp.WrongNumArgs("pack option window ?options?");
  }
  const std::string& option = args[1];
  if (option == "append" || option == "before" || option == "after") {
    if (args.size() < 3) {
      return interp.WrongNumArgs("pack append parent window options ?window options ...?");
    }
    Widget* anchor = app.FindWidget(args[2]);
    if (anchor == nullptr) {
      return interp.Error("bad window path name \"" + args[2] + "\"");
    }
    Widget* parent = anchor;
    if (option != "append") {
      parent = app.FindWidget(anchor->parent_path());
      if (parent == nullptr || !app.packer().Manages(anchor)) {
        return interp.Error("window \"" + args[2] + "\" isn't packed");
      }
    }
    if ((args.size() - 3) % 2 != 0) {
      return interp.Error("wrong # args: window \"" + args.back() + "\" has no options");
    }
    for (size_t i = 3; i + 1 < args.size(); i += 2) {
      Widget* slave = app.FindWidget(args[i]);
      if (slave == nullptr) {
        return interp.Error("bad window path name \"" + args[i] + "\"");
      }
      PackOptions options;
      tcl::Code code = Packer::ParseOptions(interp, args[i + 1], &options);
      if (code != tcl::Code::kOk) {
        return code;
      }
      if (option == "append") {
        code = app.packer().Append(parent, slave, options);
      } else {
        code = app.packer().InsertRelative(parent, anchor, option == "after", slave, options);
      }
      if (code != tcl::Code::kOk) {
        return code;
      }
    }
    interp.ResetResult();
    return tcl::Code::kOk;
  }
  if (option == "unpack" || option == "forget") {
    for (size_t i = 2; i < args.size(); ++i) {
      Widget* slave = app.FindWidget(args[i]);
      if (slave == nullptr) {
        return interp.Error("bad window path name \"" + args[i] + "\"");
      }
      app.packer().Unpack(slave);
    }
    interp.ResetResult();
    return tcl::Code::kOk;
  }
  if (option == "info" || option == "slaves") {
    if (args.size() != 3) {
      return interp.WrongNumArgs("pack info parent");
    }
    Widget* parent = app.FindWidget(args[2]);
    if (parent == nullptr) {
      return interp.Error("bad window path name \"" + args[2] + "\"");
    }
    interp.SetResult(tcl::MergeList(app.packer().Slaves(parent)));
    return tcl::Code::kOk;
  }
  if (option == "propagate") {
    if (args.size() != 4) {
      return interp.WrongNumArgs("pack propagate parent boolean");
    }
    Widget* parent = app.FindWidget(args[2]);
    if (parent == nullptr) {
      return interp.Error("bad window path name \"" + args[2] + "\"");
    }
    std::optional<bool> value = tcl::ParseBool(args[3]);
    if (!value) {
      return interp.Error("expected boolean value but got \"" + args[3] + "\"");
    }
    app.packer().SetPropagate(parent, *value);
    interp.ResetResult();
    return tcl::Code::kOk;
  }
  return interp.Error("bad option \"" + option +
                      "\": should be append, after, before, forget, info, propagate, "
                      "slaves, or unpack");
}

// --- place ---------------------------------------------------------------------

tcl::Code PlaceCmd(App& app, std::vector<std::string>& args) {
  tcl::Interp& interp = app.interp();
  if (args.size() < 3) {
    return interp.WrongNumArgs("place window|forget window ?options?");
  }
  if (args[1] == "forget") {
    Widget* slave = app.FindWidget(args[2]);
    if (slave == nullptr) {
      return interp.Error("bad window path name \"" + args[2] + "\"");
    }
    return app.placer().Forget(slave);
  }
  Widget* slave = app.FindWidget(args[1]);
  if (slave == nullptr) {
    return interp.Error("bad window path name \"" + args[1] + "\"");
  }
  Widget* parent = app.FindWidget(slave->parent_path());
  if (parent == nullptr) {
    return interp.Error("can't place the main window");
  }
  Placer::Placement placement;
  for (size_t i = 2; i + 1 < args.size(); i += 2) {
    const std::string& flag = args[i];
    const std::string& value = args[i + 1];
    if (flag == "-x" || flag == "-y" || flag == "-width" || flag == "-height") {
      std::optional<int64_t> parsed = tcl::ParseInt(value);
      if (!parsed) {
        return interp.Error("expected integer but got \"" + value + "\"");
      }
      if (flag == "-x") {
        placement.x = static_cast<int>(*parsed);
      } else if (flag == "-y") {
        placement.y = static_cast<int>(*parsed);
      } else if (flag == "-width") {
        placement.width = static_cast<int>(*parsed);
      } else {
        placement.height = static_cast<int>(*parsed);
      }
    } else if (flag == "-relwidth" || flag == "-relheight") {
      std::optional<double> parsed = tcl::ParseDouble(value);
      if (!parsed) {
        return interp.Error("expected floating-point number but got \"" + value + "\"");
      }
      if (flag == "-relwidth") {
        placement.rel_width = *parsed;
      } else {
        placement.rel_height = *parsed;
      }
    } else {
      return interp.Error("unknown place option \"" + flag + "\"");
    }
  }
  return app.placer().Place(parent, slave, placement);
}

// --- destroy -------------------------------------------------------------------

tcl::Code DestroyCmd(App& app, std::vector<std::string>& args) {
  for (size_t i = 1; i < args.size(); ++i) {
    app.DestroyWidget(args[i]);  // Destroying a nonexistent window is a no-op.
  }
  app.interp().ResetResult();
  return tcl::Code::kOk;
}

// --- winfo ---------------------------------------------------------------------

tcl::Code WinfoCmd(App& app, std::vector<std::string>& args) {
  tcl::Interp& interp = app.interp();
  if (args.size() < 2) {
    return interp.WrongNumArgs("winfo option ?window?");
  }
  const std::string& option = args[1];
  if (option == "interps") {
    interp.SetResult(tcl::MergeList(app.send_channel().RegisteredNames()));
    return tcl::Code::kOk;
  }
  if (option == "containing") {
    if (args.size() != 4) {
      return interp.WrongNumArgs("winfo containing rootX rootY");
    }
    std::optional<int64_t> x = tcl::ParseInt(args[2]);
    std::optional<int64_t> y = tcl::ParseInt(args[3]);
    if (!x || !y) {
      return interp.Error("expected integer coordinates");
    }
    xsim::WindowId window =
        app.server().WindowAt(static_cast<int>(*x), static_cast<int>(*y));
    for (const std::string& candidate : app.WidgetPaths()) {
      Widget* widget = app.FindWidget(candidate);
      if (widget != nullptr && widget->window() == window) {
        interp.SetResult(candidate);
        return tcl::Code::kOk;
      }
    }
    interp.ResetResult();
    return tcl::Code::kOk;
  }
  if (args.size() < 3) {
    return interp.WrongNumArgs("winfo " + option + " window");
  }
  const std::string& path = args[2];
  if (option == "exists") {
    interp.SetResult(app.FindWidget(path) != nullptr ? "1" : "0");
    return tcl::Code::kOk;
  }
  Widget* widget = app.FindWidget(path);
  if (widget == nullptr) {
    return interp.Error("bad window path name \"" + path + "\"");
  }
  if (option == "children") {
    interp.SetResult(tcl::MergeList(app.ChildPaths(path)));
  } else if (option == "class") {
    interp.SetResult(widget->clazz());
  } else if (option == "name") {
    interp.SetResult(widget->name());
  } else if (option == "parent") {
    interp.SetResult(widget->parent_path());
  } else if (option == "width") {
    interp.SetResult(std::to_string(widget->width()));
  } else if (option == "height") {
    interp.SetResult(std::to_string(widget->height()));
  } else if (option == "x") {
    interp.SetResult(std::to_string(widget->x()));
  } else if (option == "y") {
    interp.SetResult(std::to_string(widget->y()));
  } else if (option == "reqwidth") {
    interp.SetResult(std::to_string(widget->req_width()));
  } else if (option == "reqheight") {
    interp.SetResult(std::to_string(widget->req_height()));
  } else if (option == "rootx" || option == "rooty") {
    std::optional<xsim::Point> abs = app.server().AbsolutePosition(widget->window());
    interp.SetResult(std::to_string(abs ? (option == "rootx" ? abs->x : abs->y) : 0));
  } else if (option == "geometry") {
    interp.SetResult(std::to_string(widget->width()) + "x" + std::to_string(widget->height()) +
                     "+" + std::to_string(widget->x()) + "+" + std::to_string(widget->y()));
  } else if (option == "ismapped") {
    interp.SetResult(app.server().IsMapped(widget->window()) ? "1" : "0");
  } else if (option == "id") {
    interp.SetResult(std::to_string(widget->window()));
  } else {
    return interp.Error("bad option \"" + option +
                        "\": must be children, class, exists, geometry, height, id, "
                        "interps, ismapped, name, parent, reqheight, reqwidth, rootx, "
                        "rooty, width, x, or y");
  }
  return tcl::Code::kOk;
}

// --- focus ----------------------------------------------------------------------

tcl::Code FocusCmd(App& app, std::vector<std::string>& args) {
  tcl::Interp& interp = app.interp();
  if (args.size() == 1) {
    xsim::WindowId focus = app.display().GetInputFocus();
    for (const std::string& path : app.WidgetPaths()) {
      Widget* widget = app.FindWidget(path);
      if (widget != nullptr && widget->window() == focus) {
        interp.SetResult(path);
        return tcl::Code::kOk;
      }
    }
    interp.SetResult("none");
    return tcl::Code::kOk;
  }
  if (args.size() != 2) {
    return interp.WrongNumArgs("focus ?window?");
  }
  if (args[1] == "none") {
    app.display().SetInputFocus(xsim::kNone);
    interp.ResetResult();
    return tcl::Code::kOk;
  }
  Widget* widget = app.FindWidget(args[1]);
  if (widget == nullptr) {
    return interp.Error("bad window path name \"" + args[1] + "\"");
  }
  app.display().SetInputFocus(widget->window());
  interp.ResetResult();
  return tcl::Code::kOk;
}

// --- option ---------------------------------------------------------------------

tcl::Code OptionCmd(App& app, std::vector<std::string>& args) {
  tcl::Interp& interp = app.interp();
  if (args.size() < 2) {
    return interp.WrongNumArgs("option cmd arg ?arg ...?");
  }
  const std::string& option = args[1];
  if (option == "add") {
    if (args.size() != 4 && args.size() != 5) {
      return interp.WrongNumArgs("option add pattern value ?priority?");
    }
    int priority = OptionDb::kInteractive;
    if (args.size() == 5) {
      if (args[4] == "widgetDefault") {
        priority = OptionDb::kWidgetDefault;
      } else if (args[4] == "startupFile") {
        priority = OptionDb::kStartupFile;
      } else if (args[4] == "userDefault") {
        priority = OptionDb::kUserDefault;
      } else if (args[4] == "interactive") {
        priority = OptionDb::kInteractive;
      } else if (std::optional<int64_t> n = tcl::ParseInt(args[4])) {
        priority = static_cast<int>(*n);
      } else {
        return interp.Error("bad priority level \"" + args[4] + "\"");
      }
    }
    app.options().Add(args[2], args[3], priority);
    interp.ResetResult();
    return tcl::Code::kOk;
  }
  if (option == "get") {
    if (args.size() != 5) {
      return interp.WrongNumArgs("option get window name class");
    }
    Widget* widget = app.FindWidget(args[2]);
    if (widget == nullptr) {
      return interp.Error("bad window path name \"" + args[2] + "\"");
    }
    // Build name/class chains for the widget.
    std::vector<std::string> names = {app.name()};
    std::vector<std::string> classes = {"Tk"};
    if (args[2] != ".") {
      std::string rest = args[2].substr(1);
      std::string prefix;
      size_t start = 0;
      while (start <= rest.size()) {
        size_t dot = rest.find('.', start);
        std::string component =
            dot == std::string::npos ? rest.substr(start) : rest.substr(start, dot - start);
        names.push_back(component);
        prefix = "." + rest.substr(0, dot == std::string::npos ? rest.size() : dot);
        Widget* ancestor = app.FindWidget(prefix);
        classes.push_back(ancestor != nullptr ? ancestor->clazz() : "");
        if (dot == std::string::npos) {
          break;
        }
        start = dot + 1;
      }
    }
    names.push_back(args[3]);
    classes.push_back(args[4]);
    std::optional<std::string> value = app.options().Get(names, classes);
    interp.SetResult(value ? *value : "");
    return tcl::Code::kOk;
  }
  if (option == "clear") {
    app.options().Clear();
    interp.ResetResult();
    return tcl::Code::kOk;
  }
  if (option == "readfile") {
    if (args.size() != 3 && args.size() != 4) {
      return interp.WrongNumArgs("option readfile fileName ?priority?");
    }
    std::ifstream file(args[2]);
    if (!file) {
      return interp.Error("couldn't read file \"" + args[2] + "\"");
    }
    std::ostringstream contents;
    contents << file.rdbuf();
    app.options().LoadString(contents.str(), OptionDb::kStartupFile);
    interp.ResetResult();
    return tcl::Code::kOk;
  }
  return interp.Error("bad option \"" + option +
                      "\": must be add, clear, get, or readfile");
}

// --- selection ------------------------------------------------------------------

tcl::Code SelectionCmd(App& app, std::vector<std::string>& args) {
  tcl::Interp& interp = app.interp();
  if (args.size() < 2) {
    return interp.WrongNumArgs("selection option ?arg ...?");
  }
  const std::string& option = args[1];
  if (option == "get") {
    int64_t timeout_ms = -1;
    if (args.size() == 4 && args[2] == "-timeout") {
      std::optional<int64_t> ms = tcl::ParseInt(args[3]);
      if (!ms || *ms < 0) {
        return interp.Error("bad timeout value \"" + args[3] + "\"");
      }
      timeout_ms = *ms;
    } else if (args.size() != 2) {
      return interp.WrongNumArgs("selection get ?-timeout ms?");
    }
    std::string value;
    tcl::Code code = app.selection().Retrieve(&value, timeout_ms);
    if (code != tcl::Code::kOk) {
      return code;
    }
    interp.SetResult(std::move(value));
    return tcl::Code::kOk;
  }
  if (option == "own") {
    if (args.size() == 2) {
      std::optional<std::string> owner = app.selection().OwnerPath();
      interp.SetResult(owner ? *owner : "");
      return tcl::Code::kOk;
    }
    Widget* widget = app.FindWidget(args[2]);
    if (widget == nullptr) {
      return interp.Error("bad window path name \"" + args[2] + "\"");
    }
    std::string script = app.selection().GetHandlerScript(args[2]);
    if (args.size() == 4) {
      script = args[3];
    }
    app.selection().ClaimScript(widget, script);
    interp.ResetResult();
    return tcl::Code::kOk;
  }
  if (option == "handle") {
    if (args.size() != 4) {
      return interp.WrongNumArgs("selection handle window command");
    }
    if (app.FindWidget(args[2]) == nullptr) {
      return interp.Error("bad window path name \"" + args[2] + "\"");
    }
    app.selection().SetHandlerScript(args[2], args[3]);
    interp.ResetResult();
    return tcl::Code::kOk;
  }
  if (option == "clear") {
    app.selection().Release();
    interp.ResetResult();
    return tcl::Code::kOk;
  }
  return interp.Error("bad option \"" + option +
                      "\": must be clear, get, handle, or own");
}

// --- send -----------------------------------------------------------------------

tcl::Code SendCmd(App& app, std::vector<std::string>& args) {
  tcl::Interp& interp = app.interp();
  int64_t timeout_ms = -1;
  size_t first = 1;
  if (args.size() >= 3 && args[1] == "-timeout") {
    std::optional<int64_t> ms = tcl::ParseInt(args[2]);
    if (!ms || *ms < 0) {
      return interp.Error("bad timeout value \"" + args[2] + "\"");
    }
    timeout_ms = *ms;
    first = 3;
  }
  if (args.size() < first + 2) {
    return interp.WrongNumArgs("send ?-timeout ms? interpName arg ?arg ...?");
  }
  std::string script;
  if (args.size() == first + 2) {
    script = args[first + 1];
  } else {
    std::vector<std::string> parts(args.begin() + first + 1, args.end());
    script = tcl::ConcatStrings(parts);
  }
  std::string result;
  tcl::Code code = app.send_channel().Send(args[first], script, &result, timeout_ms);
  interp.SetResult(std::move(result));
  return code;
}

// --- after / update / tkwait ------------------------------------------------------

tcl::Code AfterCmd(App& app, std::vector<std::string>& args) {
  tcl::Interp& interp = app.interp();
  if (args.size() < 2) {
    return interp.WrongNumArgs("after ms ?command?");
  }
  if (args[1] == "cancel") {
    if (args.size() != 3) {
      return interp.WrongNumArgs("after cancel id");
    }
    // Ids look like "after#N".
    size_t hash = args[2].find('#');
    std::optional<int64_t> id =
        hash == std::string::npos ? std::nullopt : tcl::ParseInt(args[2].substr(hash + 1));
    if (id) {
      app.DeleteTimer(static_cast<uint64_t>(*id));
    }
    interp.ResetResult();
    return tcl::Code::kOk;
  }
  std::optional<int64_t> ms = tcl::ParseInt(args[1]);
  if (!ms || *ms < 0) {
    return interp.Error("bad milliseconds value \"" + args[1] + "\"");
  }
  if (args.size() == 2) {
    // Synchronous delay, pumping the event loop (as Tk's after does not --
    // it sleeps -- but blocking without dispatch would deadlock in-process
    // siblings, so we dispatch like `tkwait` would).  The WaitFor timeout
    // must exceed the delay itself or the wait would be cut short.
    auto deadline = std::chrono::steady_clock::now() + std::chrono::milliseconds(*ms);
    app.WaitFor([deadline]() { return std::chrono::steady_clock::now() >= deadline; },
                *ms + 1000);
    interp.ResetResult();
    return tcl::Code::kOk;
  }
  std::vector<std::string> parts(args.begin() + 2, args.end());
  std::string script = parts.size() == 1 ? parts[0] : tcl::ConcatStrings(parts);
  App* app_ptr = &app;
  uint64_t id = app.CreateTimerMs(*ms, [app_ptr, script]() {
    if (app_ptr->interp().Eval(script) == tcl::Code::kError) {
      app_ptr->BackgroundError("after script error: " + app_ptr->interp().result());
    }
  });
  interp.SetResult("after#" + std::to_string(id));
  return tcl::Code::kOk;
}

tcl::Code UpdateCmd(App& app, std::vector<std::string>& args) {
  if (args.size() == 2 && args[1] == "idletasks") {
    app.UpdateIdleTasks();
  } else {
    app.Update();
  }
  app.interp().ResetResult();
  return tcl::Code::kOk;
}

tcl::Code TkwaitCmd(App& app, std::vector<std::string>& args) {
  tcl::Interp& interp = app.interp();
  if (args.size() != 3) {
    return interp.WrongNumArgs("tkwait variable|window name");
  }
  App* app_ptr = &app;
  if (args[1] == "variable") {
    std::string name = args[2];
    const std::string* initial = interp.GetVarQuiet(name);
    std::string before = initial != nullptr ? *initial : "\0unset";
    bool ok = app.WaitFor([app_ptr, name, before]() {
      const std::string* now = app_ptr->interp().GetVarQuiet(name);
      std::string current = now != nullptr ? *now : "\0unset";
      return current != before;
    });
    if (!ok) {
      return interp.Error("tkwait timed out waiting for variable \"" + name + "\"");
    }
    interp.ResetResult();
    return tcl::Code::kOk;
  }
  if (args[1] == "window") {
    std::string path = args[2];
    bool ok = app.WaitFor([app_ptr, path]() { return app_ptr->FindWidget(path) == nullptr; });
    if (!ok) {
      return interp.Error("tkwait timed out waiting for window \"" + path + "\"");
    }
    interp.ResetResult();
    return tcl::Code::kOk;
  }
  return interp.Error("bad option \"" + args[1] + "\": must be variable or window");
}

// --- wm (minimal window-manager interaction) ---------------------------------------

tcl::Code WmCmd(App& app, std::vector<std::string>& args) {
  tcl::Interp& interp = app.interp();
  if (args.size() < 3) {
    return interp.WrongNumArgs("wm option window ?arg?");
  }
  const std::string& option = args[1];
  Widget* widget = app.FindWidget(args[2]);
  if (widget == nullptr) {
    return interp.Error("bad window path name \"" + args[2] + "\"");
  }
  if (option == "title") {
    std::map<std::string, std::string>& titles = app.wm_titles();
    if (args.size() == 4) {
      titles[args[2]] = args[3];
      interp.ResetResult();
    } else {
      auto it = titles.find(args[2]);
      interp.SetResult(it != titles.end() ? it->second : app.name());
    }
    return tcl::Code::kOk;
  }
  if (option == "geometry") {
    if (args.size() == 4) {
      int w = 0;
      int h = 0;
      int x = widget->x();
      int y = widget->y();
      int fields = std::sscanf(args[3].c_str(), "%dx%d+%d+%d", &w, &h, &x, &y);
      if (fields < 2) {
        return interp.Error("bad geometry specifier \"" + args[3] + "\"");
      }
      widget->SetAssignedGeometry(x, y, w, h);
      interp.ResetResult();
    } else {
      interp.SetResult(std::to_string(widget->width()) + "x" +
                       std::to_string(widget->height()) + "+" + std::to_string(widget->x()) +
                       "+" + std::to_string(widget->y()));
    }
    return tcl::Code::kOk;
  }
  if (option == "withdraw") {
    widget->Unmap();
    interp.ResetResult();
    return tcl::Code::kOk;
  }
  if (option == "deiconify") {
    widget->Map();
    interp.ResetResult();
    return tcl::Code::kOk;
  }
  return interp.Error("bad wm option \"" + option +
                      "\": supported options are title, geometry, withdraw, deiconify");
}

// --- info faults (failure observability) --------------------------------------------
//
// Registered as an `info` extension (see Interp::RegisterInfoExtension):
//   info faults        -> key/value list of fault and degradation counters
//   info faults reset  -> zero all of them
tcl::Code InfoFaultsCmd(App& app, std::vector<std::string>& args) {
  tcl::Interp& interp = app.interp();
  // Fault counters must reflect every request this app has issued, including
  // ones still sitting in the output buffer: drain it first.
  app.display().Flush();
  const xsim::FaultCounters& server = app.server().fault_counters();
  if (args.size() == 2) {
    auto u = [](uint64_t value) { return tcl::FormatInt(static_cast<int64_t>(value)); };
    std::vector<std::string> kv = {
        "errors",             u(server.errors_generated),
        "injected-failures",  u(server.injected_failures),
        "injected-drops",     u(server.injected_drops),
        "injected-delays",    u(server.injected_delays),
        "killed-clients",     u(server.killed_clients),
        "x-errors",           u(app.display().error_count()),
        "background-errors",  u(app.background_error_count()),
        "send-timeouts",      u(app.send_channel().stats().timeouts),
        "dead-peer-sends",    u(app.send_channel().stats().dead_peers),
        "stale-replies",      u(app.send_channel().stats().stale_replies),
        "selection-timeouts", u(app.selection().timeout_count()),
        "degraded-colors",    u(app.resources().degraded())};
    interp.SetResult(tcl::MergeList(kv));
    return tcl::Code::kOk;
  }
  if (args.size() == 3 && args[2] == "reset") {
    app.server().ResetFaultCounters();
    app.display().reset_error_count();
    app.reset_background_error_count();
    app.send_channel().ResetStats();
    app.selection().reset_timeout_count();
    app.resources().reset_degraded();
    interp.ResetResult();
    return tcl::Code::kOk;
  }
  return interp.WrongNumArgs("info faults ?reset?");
}

}  // namespace

void App::RegisterCommands() {
  App* app = this;
  auto cmd = [this](const char* name, tcl::Code (*fn)(App&, std::vector<std::string>&)) {
    App* self = this;
    interp_->RegisterCommand(name, [self, fn](tcl::Interp&, std::vector<std::string>& args) {
      return fn(*self, args);
    });
  };
  cmd("bind", BindCmd);
  cmd("pack", PackCmd);
  cmd("place", PlaceCmd);
  cmd("destroy", DestroyCmd);
  cmd("winfo", WinfoCmd);
  cmd("focus", FocusCmd);
  cmd("option", OptionCmd);
  cmd("selection", SelectionCmd);
  cmd("send", SendCmd);
  cmd("after", AfterCmd);
  cmd("update", UpdateCmd);
  cmd("tkwait", TkwaitCmd);
  cmd("wm", WmCmd);

  // Tk-level introspection grafted onto the core `info` command.
  interp_->RegisterInfoExtension("faults",
                                 [app](tcl::Interp&, std::vector<std::string>& args) {
                                   return InfoFaultsCmd(*app, args);
                                 });

  // `xtrace` and `info latency` (trace_cmd.cc).
  RegisterTraceCommands(*app);

  RegisterWidgetClass(*app, "frame", [](App& a, std::string path) {
    return std::make_unique<Frame>(a, std::move(path));
  });
  RegisterWidgetClass(*app, "label", [](App& a, std::string path) {
    return std::make_unique<Label>(a, std::move(path));
  });
  RegisterWidgetClass(*app, "button", [](App& a, std::string path) {
    return std::make_unique<Button>(a, std::move(path));
  });
  RegisterWidgetClass(*app, "checkbutton", [](App& a, std::string path) {
    return std::make_unique<CheckButton>(a, std::move(path));
  });
  RegisterWidgetClass(*app, "radiobutton", [](App& a, std::string path) {
    return std::make_unique<RadioButton>(a, std::move(path));
  });
  RegisterWidgetClass(*app, "message", [](App& a, std::string path) {
    return std::make_unique<Message>(a, std::move(path));
  });
  RegisterWidgetClass(*app, "listbox", [](App& a, std::string path) {
    return std::make_unique<Listbox>(a, std::move(path));
  });
  RegisterWidgetClass(*app, "scrollbar", [](App& a, std::string path) {
    return std::make_unique<Scrollbar>(a, std::move(path));
  });
  RegisterWidgetClass(*app, "scale", [](App& a, std::string path) {
    return std::make_unique<Scale>(a, std::move(path));
  });
  RegisterWidgetClass(*app, "entry", [](App& a, std::string path) {
    return std::make_unique<Entry>(a, std::move(path));
  });
  RegisterWidgetClass(*app, "menu", [](App& a, std::string path) {
    return std::make_unique<Menu>(a, std::move(path));
  });
  RegisterWidgetClass(*app, "menubutton", [](App& a, std::string path) {
    return std::make_unique<MenuButton>(a, std::move(path));
  });
  RegisterWidgetClass(*app, "canvas", [](App& a, std::string path) {
    return std::make_unique<Canvas>(a, std::move(path));
  });
  RegisterWidgetClass(*app, "text", [](App& a, std::string path) {
    return std::make_unique<Text>(a, std::move(path));
  });
}

}  // namespace tk
