// The option database (Section 3.5): user preferences like
// "*Button.background: red", matched against a widget's name/class chain --
// the same mechanism as Xt's resource manager, with Tcl access through the
// `option` command.

#ifndef SRC_TK_OPTION_DB_H_
#define SRC_TK_OPTION_DB_H_

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace tk {

class OptionDb {
 public:
  // Priority levels, lowest to highest (Tk's widgetDefault .. interactive).
  enum Priority {
    kWidgetDefault = 20,
    kStartupFile = 40,
    kUserDefault = 60,
    kInteractive = 80,
  };

  // Adds "pattern: value".  Patterns are sequences of names/classes
  // separated by '.' (tight binding) or '*' (loose binding), ending in an
  // option name or class, e.g. "*Button.background" or "myapp.frame.b.text".
  void Add(std::string_view pattern, std::string_view value, int priority = kInteractive);

  // Looks up the option `name`/`clazz` for a widget whose window path
  // produced `names` (application name + path components + option name) and
  // `classes` (application class + widget classes + option class).  Returns
  // the best match: higher priority wins, then specificity (tight binding
  // beats loose, name beats class, later elements matter more).
  std::optional<std::string> Get(const std::vector<std::string>& names,
                                 const std::vector<std::string>& classes) const;

  // Parses .Xdefaults-style text: one "pattern: value" per line, '!'
  // comments, backslash-newline continuation.  Returns the number of
  // entries added.
  int LoadString(std::string_view text, int priority = kStartupFile);

  void Clear();
  size_t size() const { return entries_.size(); }

 private:
  struct Entry {
    // Parsed pattern: elements_[i] matched against names/classes; a "*"
    // element is stored as loose binding on the following element.
    std::vector<std::string> elements;
    std::vector<bool> loose;  // loose[i]: element i is preceded by '*'.
    std::string value;
    int priority = 0;
    int sequence = 0;  // Insertion order breaks ties (later wins).
  };

  static bool MatchElements(const Entry& entry, size_t ei,
                            const std::vector<std::string>& names,
                            const std::vector<std::string>& classes, size_t ki,
                            uint64_t* score);

  std::vector<Entry> entries_;
  int next_sequence_ = 0;
};

}  // namespace tk

#endif  // SRC_TK_OPTION_DB_H_
