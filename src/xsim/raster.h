// A 32-bit framebuffer with clipped drawing primitives.  The xsim server
// renders all window contents into one of these, replacing the physical
// screen of the paper's DECstation; tests and the Figure 10 "screen dump"
// read it back as PPM or sample individual pixels.

#ifndef SRC_XSIM_RASTER_H_
#define SRC_XSIM_RASTER_H_

#include <string>
#include <vector>

#include "src/xsim/types.h"

namespace xsim {

class Raster {
 public:
  Raster(int width, int height, Pixel fill = 0x00000000);

  int width() const { return width_; }
  int height() const { return height_; }

  Pixel At(int x, int y) const;

  // All drawing is clipped to `clip` (already in raster coordinates).
  void FillRect(const Rect& rect, Pixel pixel, const Rect& clip);
  void DrawRectOutline(const Rect& rect, Pixel pixel, const Rect& clip);
  void DrawLine(int x0, int y0, int x1, int y1, Pixel pixel, const Rect& clip);
  // Text is drawn as a filled block per character cell (glyph shapes don't
  // matter for layout verification, coverage does).
  void DrawTextBlock(int x, int baseline_y, int char_width, int ascent, int descent,
                     int char_count, Pixel pixel, const Rect& clip);

  // Serializes as binary PPM (P6).
  std::string ToPpm() const;

 private:
  void Set(int x, int y, Pixel pixel, const Rect& clip);

  int width_;
  int height_;
  std::vector<Pixel> pixels_;
};

}  // namespace xsim

#endif  // SRC_XSIM_RASTER_H_
