// Fault injection for the xsim server.
//
// Tests and benchmarks script failures the way a chaos harness would against
// a real display connection: a per-request-type policy can fail requests
// (the client sees a BadImplementation error), drop them silently (the
// request is lost in transit), or delay them.  Decisions are driven by a
// deterministic xorshift PRNG so a seeded run is exactly reproducible, and
// one-shot counters (`fail_next`, `drop_next`) allow scripting "the next
// ChangeProperty is lost" without probabilities.

#ifndef SRC_XSIM_FAULT_H_
#define SRC_XSIM_FAULT_H_

#include <array>
#include <cstdint>

#include "src/xsim/error.h"

namespace xsim {

class FaultInjector {
 public:
  struct Policy {
    double fail_probability = 0.0;  // Request fails with BadImplementation.
    double drop_probability = 0.0;  // Request is silently lost.
    uint64_t delay_ns = 0;          // Extra transport delay per request.
    // Deterministic one-shots: fail/drop exactly the next N matching
    // requests, independent of the probabilities above.
    int fail_next = 0;
    int drop_next = 0;

    bool empty() const {
      return fail_probability == 0.0 && drop_probability == 0.0 && delay_ns == 0 &&
             fail_next == 0 && drop_next == 0;
    }
  };

  // What the server should do with one request.
  struct Decision {
    bool fail = false;
    bool drop = false;
    uint64_t delay_ns = 0;
  };

  // Reseeds the PRNG; a given (seed, request sequence) always produces the
  // same decisions.
  void set_seed(uint64_t seed) { state_ = seed != 0 ? seed : kDefaultSeed; }

  // Installs `policy` for one request type, or for every type at once via
  // SetPolicyAll.  Policies are merged: a type-specific policy and the
  // catch-all both apply.
  void SetPolicy(RequestType type, const Policy& policy);
  void SetPolicyAll(const Policy& policy);
  void Clear();

  // True when any policy is installed (lets the server skip the hook on the
  // hot path).
  bool active() const { return active_; }

  // Consumes one decision for a request of `type`.
  Decision Decide(RequestType type);

 private:
  static constexpr uint64_t kDefaultSeed = 0x9e3779b97f4a7c15ull;

  double NextUniform();
  void Apply(Policy& policy, Decision* decision);
  void RecomputeActive();

  uint64_t state_ = kDefaultSeed;
  bool active_ = false;
  std::array<Policy, kRequestTypeCount> policies_;
  Policy catch_all_;
};

}  // namespace xsim

#endif  // SRC_XSIM_FAULT_H_
