// Fault injection for the xsim server.
//
// Tests and benchmarks script failures the way a chaos harness would against
// a real display connection: a per-request-type policy can fail requests
// (the client sees a BadImplementation error), drop them silently (the
// request is lost in transit), or delay them.  Decisions are driven by a
// deterministic xorshift PRNG so a seeded run is exactly reproducible, and
// one-shot counters (`fail_next`, `drop_next`) allow scripting "the next
// ChangeProperty is lost" without probabilities.
//
// The wire transport adds a second, lower layer: SetFramePolicy installs the
// same Policy shape against whole frames, where `drop` loses a frame in
// transit, `fail` truncates its payload (the decoder then reports BadLength),
// and `delay_ns` stalls delivery.
//
// Thread safety: policies are installed from the interpreter thread while
// wire server threads consume decisions, so every entry point locks an
// internal mutex; the active() fast-path flags are atomics.

#ifndef SRC_XSIM_FAULT_H_
#define SRC_XSIM_FAULT_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <mutex>

#include "src/xsim/error.h"

namespace xsim {

class FaultInjector {
 public:
  struct Policy {
    double fail_probability = 0.0;  // Request fails with BadImplementation.
    double drop_probability = 0.0;  // Request is silently lost.
    uint64_t delay_ns = 0;          // Extra transport delay per request.
    // Deterministic one-shots: fail/drop exactly the next N matching
    // requests, independent of the probabilities above.
    int fail_next = 0;
    int drop_next = 0;

    bool empty() const {
      return fail_probability == 0.0 && drop_probability == 0.0 && delay_ns == 0 &&
             fail_next == 0 && drop_next == 0;
    }
  };

  // What the server should do with one request (or, at the frame layer, one
  // frame: `fail` then means truncate).
  struct Decision {
    bool fail = false;
    bool drop = false;
    uint64_t delay_ns = 0;
  };

  // Reseeds the PRNG; a given (seed, request sequence) always produces the
  // same decisions.
  void set_seed(uint64_t seed);

  // Installs `policy` for one request type, or for every type at once via
  // SetPolicyAll.  Policies are merged: a type-specific policy and the
  // catch-all both apply.
  void SetPolicy(RequestType type, const Policy& policy);
  void SetPolicyAll(const Policy& policy);
  // Installs the frame-layer policy consumed by DecideFrame.
  void SetFramePolicy(const Policy& policy);
  // Retracts only the frame-layer policy, leaving request-level policies in
  // place -- chaos schedules toggle the two layers independently.
  void ClearFramePolicy();
  // The frame-layer policy currently installed (for schedule logging).
  Policy frame_policy() const;
  // Drops every policy, the frame-layer one included.
  void Clear();

  // True when any request policy is installed (lets the server skip the hook
  // on the hot path).  frame_active() is the same fast-path flag for the
  // frame layer.
  bool active() const { return active_.load(std::memory_order_relaxed); }
  bool frame_active() const { return frame_active_.load(std::memory_order_relaxed); }

  // Consumes one decision for a request of `type`.
  Decision Decide(RequestType type);
  // Consumes one frame-layer decision (fail = truncate the frame).
  Decision DecideFrame();

 private:
  static constexpr uint64_t kDefaultSeed = 0x9e3779b97f4a7c15ull;

  double NextUniform();
  void Apply(Policy& policy, Decision* decision);
  void RecomputeActive();

  mutable std::mutex mu_;
  uint64_t state_ = kDefaultSeed;
  std::atomic<bool> active_{false};
  std::atomic<bool> frame_active_{false};
  std::array<Policy, kRequestTypeCount> policies_;
  Policy catch_all_;
  Policy frame_policy_;
};

}  // namespace xsim

#endif  // SRC_XSIM_FAULT_H_
