#include "src/xsim/wire/wire_server.h"

#include <fcntl.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <string_view>
#include <utility>

#include "src/xsim/color.h"
#include "src/xsim/server.h"

namespace xsim {
namespace wire {

namespace {

// Inbox flow control (reactor backend): past the high-water mark the loop
// parks this connection's read interest; the dispatch worker re-arms it once
// the backlog drains below the low-water mark.  The numbers are modest on
// purpose -- the threaded backend's implicit window is one frame (the reader
// blocks inside dispatch), so a small reactor window keeps the two backends'
// end-to-end pacing comparable.
constexpr size_t kInboxHighWater = 64;
constexpr size_t kInboxLowWater = 16;

bool ReadFull(int fd, uint8_t* data, size_t size) {
  size_t done = 0;
  while (done < size) {
    ssize_t n = ::recv(fd, data + done, size - done, 0);
    if (n > 0) {
      done += static_cast<size_t>(n);
    } else if (n < 0 && errno == EINTR) {
      continue;
    } else {
      return false;
    }
  }
  return true;
}

bool WriteFull(int fd, const uint8_t* data, size_t size) {
  size_t done = 0;
  while (done < size) {
    ssize_t n = ::send(fd, data + done, size - done, MSG_NOSIGNAL);
    if (n > 0) {
      done += static_cast<size_t>(n);
    } else if (n < 0 && errno == EINTR) {
      continue;
    } else {
      return false;
    }
  }
  return true;
}

void SetNonBlocking(int fd) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) {
    ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  }
}

}  // namespace

WireBackend WireBackendFromEnv() {
  const char* env = std::getenv("TCLK_WIRE_BACKEND");
  if (env != nullptr && std::string_view(env) == "threads") {
    return WireBackend::kThreads;
  }
  return WireBackend::kReactor;
}

const char* WireBackendName(WireBackend backend) {
  return backend == WireBackend::kThreads ? "threads" : "reactor";
}

WireServer::WireServer(Server& server, WireBackend backend)
    : server_(server), backend_(backend) {
  if (backend_ == WireBackend::kReactor) {
    executor_ = std::make_unique<DispatchExecutor>(
        [this](uint64_t token) { DispatchTask(token); },
        DispatchExecutor::DefaultWorkerCount());
    reactor_ = std::make_unique<Reactor>(
        [this](uint64_t token, bool readable, bool writable) {
          OnIo(token, readable, writable);
        },
        Reactor::DefaultLoopCount());
  }
}

WireServer::~WireServer() {
  std::vector<std::shared_ptr<Connection>> connections;
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutting_down_ = true;
    connections = connections_;
  }
  for (const auto& conn : connections) {
    KillConnection(*conn);
  }
  for (const auto& conn : connections) {
    // A published connection's threads are attached moments later
    // (unconditionally), so this wait is bounded; joining earlier would race
    // the accept path's move-assignments.
    while (!conn->threads_attached.load(std::memory_order_acquire)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    if (backend_ == WireBackend::kThreads) {
      if (conn->reader.joinable()) {
        conn->reader.join();
      }
      if (conn->writer.joinable()) {
        conn->writer.join();
      }
    } else {
      // Reactor: the kill's shutdown surfaces as EPOLLHUP, the loop marks
      // EOF, and a dispatch worker runs the same teardown a reader thread
      // would -- wait for both roles to report done.
      while (!conn->reader_done.load(std::memory_order_acquire) ||
             !conn->writer_done.load(std::memory_order_acquire)) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    }
    {
      std::lock_guard<std::mutex> lock(conn->out_mu);
      if (conn->fd >= 0) {
        ::close(conn->fd);
        conn->fd = -1;
      }
    }
  }
  // Every connection is quiesced; stop the engines.  Reactor first (joins
  // the loops, so no further OnIo), then the executor (drains whatever
  // stale tokens remain -- their tasks find teardown_started and no-op).
  reactor_.reset();
  executor_.reset();
}

int WireServer::Connect() {
  ReapFinishedConnections();
  uint64_t grace;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutting_down_ || !listening_) {
      return -1;
    }
    grace = retain_grace_ms_;
  }
  // Sweep retained sessions whose grace period lapsed while nobody was
  // around to resume them -- the accept path is the natural periodic hook.
  server_.ReapRetainedSessions(grace);
  int fds[2];
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0) {
    return -1;
  }
  auto conn = std::make_shared<Connection>();
  conn->fd = fds[0];
  if (backend_ == WireBackend::kReactor) {
    // Only the server end goes non-blocking; the client end keeps blocking
    // semantics (WireTransport is unchanged by the backend choice).
    SetNonBlocking(fds[0]);
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutting_down_ || !listening_) {
      ::close(fds[0]);
      ::close(fds[1]);
      return -1;
    }
    if (backend_ == WireBackend::kReactor) {
      conn->token = next_token_++;
      by_token_[conn->token] = conn;
    }
    connections_.push_back(conn);
  }
  server_.CountWireConnection();
  if (backend_ == WireBackend::kReactor) {
    // No per-connection threads to attach; mark attached before the first
    // event can possibly finish the connection.
    conn->threads_attached.store(true, std::memory_order_release);
    if (!reactor_->Add(fds[0], conn->token)) {
      std::lock_guard<std::mutex> lock(mu_);
      by_token_.erase(conn->token);
      for (auto it = connections_.begin(); it != connections_.end(); ++it) {
        if (it->get() == conn.get()) {
          connections_.erase(it);
          break;
        }
      }
      ::close(fds[0]);
      ::close(fds[1]);
      return -1;
    }
  } else {
    conn->reader = std::thread(&WireServer::ReaderLoop, this, conn);
    conn->writer = std::thread(&WireServer::WriterLoop, this, conn);
    conn->threads_attached.store(true, std::memory_order_release);
  }
  conn_stats_.RecordAccept();
  return fds[1];
}

size_t WireServer::connection_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return connections_.size();
}

void WireServer::Bounce() {
  std::vector<std::shared_ptr<Connection>> live;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutting_down_) {
      return;
    }
    listening_ = false;
    live = connections_;
  }
  for (const auto& conn : live) {
    KillConnection(*conn);
  }
  // Wait for each connection's roles to run their teardown (the reader-exit
  // path applies the client's close-down mode), so by the time Bounce()
  // returns the server's session table reflects the restart.  Identical on
  // both backends: the done flags are set by threads or by the reactor's
  // worker/loop, but mean the same thing.
  for (const auto& conn : live) {
    while (!conn->reader_done.load(std::memory_order_acquire) ||
           !conn->writer_done.load(std::memory_order_acquire)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  ReapFinishedConnections();
  bounces_.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(mu_);
    listening_ = true;
  }
}

bool WireServer::listening() const {
  std::lock_guard<std::mutex> lock(mu_);
  return listening_ && !shutting_down_;
}

bool WireServer::InjectHalfClose(size_t index) {
  std::shared_ptr<Connection> target;
  {
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<std::shared_ptr<Connection>> live;
    for (const auto& conn : connections_) {
      if (!conn->reader_done.load(std::memory_order_acquire)) {
        live.push_back(conn);
      }
    }
    if (live.empty()) {
      return false;
    }
    target = live[index % live.size()];
  }
  // Stop the server->client direction only.  The client sees EOF on its
  // next read while its writes still reach the reader; the connection is
  // fully torn down once a dispatched frame fails to ack (writer dead).
  // out_mu keeps the shutdown off a reaped (closed, recyclable) fd if the
  // target finished right after selection.
  {
    std::lock_guard<std::mutex> lock(target->out_mu);
    if (target->fd >= 0) {
      ::shutdown(target->fd, SHUT_WR);
    }
  }
  return true;
}

void WireServer::set_retain_grace_ms(uint64_t ms) {
  std::lock_guard<std::mutex> lock(mu_);
  retain_grace_ms_ = ms;
}

uint64_t WireServer::retain_grace_ms() const {
  std::lock_guard<std::mutex> lock(mu_);
  return retain_grace_ms_;
}

void WireServer::set_outbound_capacity(size_t frames) {
  std::lock_guard<std::mutex> lock(mu_);
  outbound_capacity_ = frames == 0 ? 1 : frames;
}

void WireServer::set_backpressure_timeout_ms(uint64_t ms) {
  std::lock_guard<std::mutex> lock(mu_);
  backpressure_timeout_ms_ = ms;
}

size_t WireServer::outbound_capacity() const {
  std::lock_guard<std::mutex> lock(mu_);
  return outbound_capacity_;
}

WireServer::Stats WireServer::stats() const {
  Stats stats;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& conn : connections_) {
      if (!conn->reader_done.load(std::memory_order_acquire)) {
        ++stats.live_connections;
      }
    }
  }
  stats.accepted_connections = conn_stats_.accepted();
  stats.peak_outbound_depth = conn_stats_.peak_outbound_depth();
  stats.backpressure_kills = conn_stats_.backpressure_kills();
  stats.reaped_connections = conn_stats_.reaped();
  stats.bounces = bounces_.load(std::memory_order_relaxed);
  return stats;
}

void WireServer::ResetStats() {
  conn_stats_.Reset();
  bounces_.store(0, std::memory_order_relaxed);
}

void WireServer::ReapFinishedConnections() {
  std::vector<std::shared_ptr<Connection>> finished;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto it = connections_.begin(); it != connections_.end();) {
      const auto& conn = *it;
      if (conn->threads_attached.load(std::memory_order_acquire) &&
          conn->reader_done.load(std::memory_order_acquire) &&
          conn->writer_done.load(std::memory_order_acquire)) {
        finished.push_back(conn);
        by_token_.erase(conn->token);
        it = connections_.erase(it);
      } else {
        ++it;
      }
    }
  }
  // Join outside mu_ (the threads have already exited, so this is instant,
  // but a join must never run under the lock their loops might want).  On
  // the reactor backend there is nothing to join and the fd has already
  // been removed from the epoll set (MaybeFinishWriter does that before
  // setting writer_done), so closing it here cannot race a loop.
  for (const auto& conn : finished) {
    if (conn->reader.joinable()) {
      conn->reader.join();
    }
    if (conn->writer.joinable()) {
      conn->writer.join();
    }
    {
      // Paired with KillConnection: the close and the kill's shutdown
      // serialize on out_mu, so a late kill sees fd == -1 instead of a
      // recycled descriptor.
      std::lock_guard<std::mutex> lock(conn->out_mu);
      if (conn->fd >= 0) {
        ::close(conn->fd);
        conn->fd = -1;
      }
    }
    conn_stats_.RecordReap();
  }
}

// ---------------------------------------------------------------------------
// Threads backend.

void WireServer::ReaderLoop(std::shared_ptr<Connection> conn) {
  while (true) {
    uint8_t header[kFrameHeaderSize];
    if (!ReadFull(conn->fd, header, sizeof(header))) {
      break;  // EOF or shutdown: the client hung up.
    }
    FrameHeader decoded;
    DecodeStatus status = DecodeFrameHeader(header, sizeof(header), &decoded);
    if (status != DecodeStatus::kOk) {
      // The byte stream itself is unsynchronized; all the server can do is
      // name the damage and hang up.
      conn->disconnect_reason.store(DisconnectReason::kMalformed,
                                    std::memory_order_relaxed);
      server_.CountWireMalformed();
      EnqueueError(*conn, DecodeStatusToError(status), 0);
      break;
    }
    Frame frame;
    frame.kind = decoded.kind;
    frame.payload.resize(decoded.payload_length);
    if (decoded.payload_length != 0 &&
        !ReadFull(conn->fd, frame.payload.data(), frame.payload.size())) {
      break;
    }
    server_.CountWireFrameIn(kFrameHeaderSize + decoded.payload_length);
    if (!DispatchFrame(*conn, frame)) {
      break;
    }
    // Push events this dispatch generated -- for every connection, not just
    // this one: A's SendEvent must reach B without B asking.
    FanOutEvents();
  }
  if (ReleaseClient(*conn)) {
    // Not an orderly kBye (that path already disconnected and zeroed the
    // client) and still the owner -- a resume on a newer connection may have
    // adopted the session: apply the close-down mode and record why.
    server_.DisconnectClient(conn->client,
                             conn->disconnect_reason.load(std::memory_order_relaxed));
  }
  // Let the writer drain whatever is queued (the farewell error frame, for
  // one) and exit.
  {
    std::lock_guard<std::mutex> lock(conn->out_mu);
    conn->closing = true;
  }
  conn->out_ready.notify_all();
  conn->out_space.notify_all();
  conn->reader_done.store(true, std::memory_order_release);
}

void WireServer::WriterLoop(std::shared_ptr<Connection> conn) {
  while (true) {
    std::vector<uint8_t> frame;
    {
      std::unique_lock<std::mutex> lock(conn->out_mu);
      conn->out_ready.wait(lock, [&] { return !conn->out.empty() || conn->closing; });
      if (conn->out.empty()) {
        break;  // Closing with nothing left to send.
      }
      frame = std::move(conn->out.front());
      conn->out.pop_front();
    }
    conn->out_space.notify_all();
    if (!WriteFull(conn->fd, frame.data(), frame.size())) {
      std::lock_guard<std::mutex> lock(conn->out_mu);
      conn->out.clear();
      conn->closing = true;
      conn->out_space.notify_all();
      break;
    }
    server_.CountWireFrameOut(frame.size());
  }
  // The queue is drained (farewell error frames included) and no more will
  // be accepted: hang up so the client sees EOF rather than a silent stall.
  // The fd itself is closed at join time.
  ::shutdown(conn->fd, SHUT_RDWR);
  conn->writer_done.store(true, std::memory_order_release);
}

// ---------------------------------------------------------------------------
// Reactor backend.

std::shared_ptr<WireServer::Connection> WireServer::FindByToken(uint64_t token) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = by_token_.find(token);
  return it == by_token_.end() ? nullptr : it->second;
}

void WireServer::OnIo(uint64_t token, bool readable, bool writable) {
  std::shared_ptr<Connection> conn = FindByToken(token);
  if (conn == nullptr) {
    return;  // Reaped; the event raced the teardown.
  }
  if (writable) {
    HandleWritable(conn);
  }
  if (readable) {
    HandleReadable(conn);
  }
}

void WireServer::HandleReadable(const std::shared_ptr<Connection>& conn) {
  bool schedule = false;
  {
    std::lock_guard<std::mutex> lock(conn->in_mu);
    if (conn->eof_seen || conn->header_poisoned) {
      return;  // Already winding down; ignore level-triggered residue.
    }
    if (conn->read_paused) {
      // Read interest is parked, but EPOLLHUP/EPOLLERR are delivered
      // regardless of the interest mask.  Peek so a peer hangup noticed
      // while parked still reaches the dispatcher instead of spinning the
      // loop on a level-triggered HUP.
      uint8_t probe;
      ssize_t n = ::recv(conn->fd, &probe, 1, MSG_PEEK);
      if (n == 0 || (n < 0 && errno != EAGAIN && errno != EWOULDBLOCK &&
                     errno != EINTR)) {
        conn->eof_seen = true;
        if (!conn->dispatch_scheduled) {
          conn->dispatch_scheduled = true;
          schedule = true;
        }
      }
    } else {
      bool hit_eof = false;
      uint8_t chunk[16384];
      while (true) {
        ssize_t n = ::recv(conn->fd, chunk, sizeof(chunk), 0);
        if (n > 0) {
          conn->in_buf.insert(conn->in_buf.end(), chunk, chunk + n);
        } else if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
          break;
        } else if (n < 0 && errno == EINTR) {
          continue;
        } else {
          hit_eof = true;  // 0 is EOF; anything else is a dead socket.
          break;
        }
      }
      // Reassemble: peel every complete frame off the front of in_buf.  A
      // header split across reads, or a payload arriving one byte per
      // readiness callback, just leaves a remainder for next time.
      size_t consumed = 0;
      while (true) {
        if (conn->in_buf.size() - consumed < kFrameHeaderSize) {
          break;
        }
        FrameHeader header;
        DecodeStatus status = DecodeFrameHeader(conn->in_buf.data() + consumed,
                                                kFrameHeaderSize, &header);
        if (status != DecodeStatus::kOk) {
          // Poisoned byte stream: stop reassembling; the dispatcher reports
          // the damage after the frames that preceded it.
          conn->header_poisoned = true;
          conn->header_error = status;
          break;
        }
        if (conn->in_buf.size() - consumed < kFrameHeaderSize + header.payload_length) {
          break;
        }
        Frame frame;
        frame.kind = header.kind;
        frame.payload.assign(
            conn->in_buf.begin() + consumed + kFrameHeaderSize,
            conn->in_buf.begin() + consumed + kFrameHeaderSize + header.payload_length);
        consumed += kFrameHeaderSize + header.payload_length;
        server_.CountWireFrameIn(kFrameHeaderSize + header.payload_length);
        conn->inbox.push_back(std::move(frame));
      }
      if (consumed != 0) {
        conn->in_buf.erase(conn->in_buf.begin(),
                           conn->in_buf.begin() + static_cast<long>(consumed));
      }
      if (hit_eof) {
        conn->eof_seen = true;
      }
      if (!hit_eof && !conn->header_poisoned &&
          conn->inbox.size() >= kInboxHighWater) {
        // Flow control: stop pulling bytes until dispatch catches up (the
        // worker re-arms below the low-water mark).
        conn->read_paused = true;
        reactor_->SetReadInterest(conn->fd, false);
      }
      if ((hit_eof || conn->header_poisoned || !conn->inbox.empty()) &&
          !conn->dispatch_scheduled) {
        conn->dispatch_scheduled = true;
        schedule = true;
      }
    }
  }
  if (schedule) {
    executor_->Schedule(conn->token);
  }
}

void WireServer::HandleWritable(const std::shared_ptr<Connection>& conn) {
  std::vector<size_t> sent_sizes;
  bool finish = false;
  {
    std::lock_guard<std::mutex> lock(conn->out_mu);
    if (conn->fd < 0 || conn->writer_finishing) {
      return;
    }
    bool dead = false;
    while (!conn->out.empty()) {
      const std::vector<uint8_t>& front = conn->out.front();
      ssize_t n = ::send(conn->fd, front.data() + conn->out_offset,
                         front.size() - conn->out_offset, MSG_NOSIGNAL);
      if (n > 0) {
        conn->out_offset += static_cast<size_t>(n);
        if (conn->out_offset == front.size()) {
          sent_sizes.push_back(front.size());
          conn->out.pop_front();
          conn->out_offset = 0;
        }
      } else if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        break;  // Socket buffer full again; EPOLLOUT will bring us back.
      } else if (n < 0 && errno == EINTR) {
        continue;
      } else {
        dead = true;
        break;
      }
    }
    if (dead) {
      conn->out.clear();
      conn->out_offset = 0;
      conn->closing = true;
    }
    if (conn->out.empty()) {
      if (conn->write_armed) {
        reactor_->SetWriteInterest(conn->fd, false);
        conn->write_armed = false;
      }
      if (conn->closing) {
        finish = true;
      }
    }
  }
  // Book-keep outside out_mu: CountWireFrameOut takes the Server lock, and
  // the established order is the Server lock before out_mu, never after.
  for (size_t size : sent_sizes) {
    server_.CountWireFrameOut(size);
  }
  if (!sent_sizes.empty()) {
    conn->out_space.notify_all();  // Backpressure waiters on dispatch workers.
  }
  if (finish) {
    conn->out_space.notify_all();
    MaybeFinishWriter(conn);
  }
}

void WireServer::MaybeFinishWriter(const std::shared_ptr<Connection>& conn) {
  int fd = -1;
  {
    std::lock_guard<std::mutex> lock(conn->out_mu);
    if (conn->writer_finishing) {
      return;
    }
    if (!conn->closing || !conn->out.empty()) {
      return;  // The ring still has farewell frames to drain.
    }
    conn->writer_finishing = true;
    fd = conn->fd;
    if (fd >= 0) {
      // Hang up so the client sees EOF rather than a silent stall; the fd
      // itself is closed at reap time.
      ::shutdown(fd, SHUT_RDWR);
    }
  }
  if (fd >= 0) {
    reactor_->Remove(fd);
  }
  // Only now mark the writer done: reap and the destructor close() the fd
  // on an acquire-load of this flag, so the epoll removal above must be
  // fully over before anyone can observe it.
  conn->writer_done.store(true, std::memory_order_release);
  // A writer that dies before the reader saw EOF (server-side half-close,
  // peer reset mid-ack) must still bring the whole connection down: the fd
  // just left the epoll set, so the read side will never observe the
  // shutdown on its own.  Mark the stream ended and hand the teardown to a
  // dispatch worker, mirroring the threaded backend where a writer failure
  // wakes the blocked reader.
  bool schedule = false;
  {
    std::lock_guard<std::mutex> lock(conn->in_mu);
    if (!conn->eof_seen) {
      conn->eof_seen = true;
      if (!conn->dispatch_scheduled) {
        conn->dispatch_scheduled = true;
        schedule = true;
      }
    }
  }
  if (schedule) {
    executor_->Schedule(conn->token);
  }
}

void WireServer::FinishReader(Connection& conn) {
  if (ReleaseClient(conn)) {
    server_.DisconnectClient(conn.client,
                             conn.disconnect_reason.load(std::memory_order_relaxed));
  }
  {
    std::lock_guard<std::mutex> lock(conn.out_mu);
    conn.closing = true;
  }
  conn.out_ready.notify_all();
  conn.out_space.notify_all();
  conn.reader_done.store(true, std::memory_order_release);
}

void WireServer::DispatchTask(uint64_t token) {
  std::shared_ptr<Connection> conn = FindByToken(token);
  if (conn == nullptr) {
    return;  // Reaped (or the server is quiescing); nothing to do.
  }
  while (true) {
    Frame frame;
    bool have = false;
    bool poisoned = false;
    DecodeStatus poison_error = DecodeStatus::kOk;
    {
      std::lock_guard<std::mutex> lock(conn->in_mu);
      if (!conn->inbox.empty()) {
        frame = std::move(conn->inbox.front());
        conn->inbox.pop_front();
        have = true;
        if (conn->read_paused && !conn->eof_seen &&
            conn->inbox.size() < kInboxLowWater) {
          conn->read_paused = false;
          reactor_->SetReadInterest(conn->fd, true);
        }
      } else if (conn->eof_seen || conn->header_poisoned) {
        if (conn->teardown_started) {
          conn->dispatch_scheduled = false;
          return;
        }
        conn->teardown_started = true;
        poisoned = conn->header_poisoned;
        poison_error = conn->header_error;
      } else {
        // Drained; deschedule.  The loop schedules again on the next frame.
        conn->dispatch_scheduled = false;
        if (conn->read_paused) {
          conn->read_paused = false;
          reactor_->SetReadInterest(conn->fd, true);
        }
        return;
      }
    }
    if (have) {
      // The threaded reader's loop body, verbatim: dispatch, then push the
      // events this dispatch generated to every connection.
      bool keep = DispatchFrame(*conn, frame);
      FanOutEvents();
      if (!keep) {
        {
          std::lock_guard<std::mutex> lock(conn->in_mu);
          if (conn->teardown_started) {
            conn->dispatch_scheduled = false;
            return;
          }
          conn->teardown_started = true;
          conn->eof_seen = true;  // Stop the loop from reading further.
        }
        FinishReader(*conn);
        {
          std::lock_guard<std::mutex> lock(conn->in_mu);
          conn->dispatch_scheduled = false;
        }
        MaybeFinishWriter(conn);
        return;
      }
      continue;
    }
    // Falling through here means the stream ended (EOF, kill, or poisoned
    // header) and this worker won the teardown.
    if (poisoned) {
      // Same order as the threaded reader: name the damage, then hang up.
      conn->disconnect_reason.store(DisconnectReason::kMalformed,
                                    std::memory_order_relaxed);
      server_.CountWireMalformed();
      EnqueueError(*conn, DecodeStatusToError(poison_error), 0);
    }
    FinishReader(*conn);
    {
      std::lock_guard<std::mutex> lock(conn->in_mu);
      conn->dispatch_scheduled = false;
    }
    MaybeFinishWriter(conn);
    return;
  }
}

// ---------------------------------------------------------------------------
// Outbound queue.

bool WireServer::EnqueueFrame(Connection& conn, std::vector<uint8_t> frame) {
  size_t capacity;
  uint64_t timeout_ms;
  {
    std::lock_guard<std::mutex> lock(mu_);
    capacity = outbound_capacity_;
    timeout_ms = backpressure_timeout_ms_;
  }
  {
    std::unique_lock<std::mutex> lock(conn.out_mu);
    bool room = conn.out_space.wait_for(
        lock, std::chrono::milliseconds(timeout_ms),
        [&] { return conn.out.size() < capacity || conn.closing; });
    if (conn.closing) {
      return false;
    }
    if (!room) {
      // The client stopped draining; a wedged connection must not stall the
      // rest of the server.  (On the reactor backend this wait ran on a
      // dispatch worker -- loops kept draining other connections.)
      lock.unlock();
      conn.disconnect_reason.store(DisconnectReason::kBackpressure,
                                   std::memory_order_relaxed);
      conn_stats_.RecordBackpressureKill();
      KillConnection(conn);
      return false;
    }
    conn.out.push_back(std::move(frame));
    conn_stats_.RecordOutboundDepth(conn.out.size());
    if (backend_ == WireBackend::kReactor && !conn.write_armed && conn.fd >= 0) {
      // Lock order is fine: the reactor's registry lock is a leaf.
      reactor_->SetWriteInterest(conn.fd, true);
      conn.write_armed = true;
    }
  }
  conn.out_ready.notify_one();
  return true;
}

void WireServer::EnqueueError(Connection& conn, ErrorCode code, uint64_t sequence) {
  XError error;
  error.code = code;
  error.sequence = sequence;
  error.resource = kNone;
  error.request = RequestType::kOther;
  EnqueueFrame(conn, EncodeFrame(FrameKind::kError, EncodeErrorPayload(error)));
}

void WireServer::PumpEvents(Connection& conn) {
  ClientId client = conn.client.load();
  if (client == 0) {
    return;
  }
  std::lock_guard<std::mutex> pump(conn.pump_mu);
  // Drain under the pump lock only: NextEvent locks the Server internally,
  // and EnqueueFrame must not run under the Server lock (backpressure can
  // block there).
  Event event;
  while (server_.NextEvent(client, &event)) {
    if (!EnqueueFrame(conn, EncodeFrame(FrameKind::kEvent, EncodeEventPayload(event)))) {
      return;
    }
  }
}

void WireServer::FanOutEvents() {
  std::vector<std::shared_ptr<Connection>> connections;
  {
    std::lock_guard<std::mutex> lock(mu_);
    connections = connections_;
  }
  for (const auto& conn : connections) {
    PumpEvents(*conn);
  }
}

void WireServer::AdoptClient(Connection& conn, ClientId client) {
  std::shared_ptr<Connection> self;
  std::shared_ptr<Connection> stale;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& candidate : connections_) {
      if (candidate.get() == &conn) {
        self = candidate;
        break;
      }
    }
    if (self == nullptr) {
      return;  // Shutting down; the connection is already being torn off.
    }
    auto it = client_owner_.find(client);
    if (it != client_owner_.end() && it->second.get() != &conn) {
      stale = it->second;
    }
    client_owner_[client] = std::move(self);
  }
  if (stale != nullptr) {
    // The client redialed before the stale connection's EOF arrived.  Zero
    // its client first so its reader-exit teardown and event pumping no-op,
    // then hang it up -- any frames still buffered on it were sent before
    // the client gave up on that wire.
    stale->client.store(0);
    KillConnection(*stale);
  }
}

bool WireServer::ReleaseClient(Connection& conn) {
  ClientId client = conn.client.load();
  if (client == 0) {
    return false;
  }
  std::lock_guard<std::mutex> lock(mu_);
  auto it = client_owner_.find(client);
  if (it == client_owner_.end() || it->second.get() != &conn) {
    return false;  // Ownership was stolen by a resume on a newer connection.
  }
  client_owner_.erase(it);
  return true;
}

void WireServer::KillConnection(Connection& conn) {
  {
    std::lock_guard<std::mutex> lock(conn.out_mu);
    conn.closing = true;
    // Wakes the reader out of recv() -- or, on the reactor backend, surfaces
    // as EPOLLHUP on the owning loop; the fd itself is closed at reap time.
    // Under out_mu so a kill aimed at an already-finished connection (a
    // stale session stolen by AdoptClient, or a bounce racing a reap) can
    // never shut down an fd the reaper has closed and the OS has recycled.
    if (conn.fd >= 0) {
      ::shutdown(conn.fd, SHUT_RDWR);
    }
  }
  conn.out_ready.notify_all();
  conn.out_space.notify_all();
}

// ---------------------------------------------------------------------------
// Dispatch (shared by both backends).

WireAck WireServer::MakeAck(ClientId client, uint64_t value) {
  WireAck ack;
  ack.value = value;
  ack.sequence = server_.ClientSequence(client);
  ack.extra = server_.ClientAlive(client) ? 1 : 0;
  return ack;
}

bool WireServer::DispatchFrame(Connection& conn, const Frame& frame) {
  switch (frame.kind) {
    case FrameKind::kHello: {
      std::string name;
      if (conn.client != 0 ||
          DecodeHelloPayload(frame.payload, &name) != DecodeStatus::kOk) {
        conn.disconnect_reason.store(DisconnectReason::kMalformed,
                                     std::memory_order_relaxed);
        server_.CountWireMalformed();
        EnqueueError(conn, ErrorCode::kBadLength, 0);
        return false;
      }
      conn.client = server_.RegisterClient(std::move(name));
      AdoptClient(conn, conn.client);
      // The sink outlives nothing: `conn` is owned by connections_, which
      // ~WireServer clears only after every thread is joined, and the Server
      // erases the sink when the client unregisters.
      Connection* raw = &conn;
      server_.SetErrorSink(conn.client, [this, raw](const XError& error) {
        EnqueueFrame(*raw, EncodeFrame(FrameKind::kError, EncodeErrorPayload(error)));
      });
      WireAck ack = MakeAck(conn.client, conn.client);
      ack.extra = server_.root();  // kHelloAck repurposes extra for the root.
      ack.token = server_.ClientSessionToken(conn.client);
      return EnqueueFrame(conn, EncodeFrame(FrameKind::kHelloAck, EncodeAckPayload(ack)));
    }
    case FrameKind::kResume: {
      std::string name;
      uint64_t token = 0;
      if (conn.client != 0 ||
          DecodeResumePayload(frame.payload, &name, &token) != DecodeStatus::kOk) {
        conn.disconnect_reason.store(DisconnectReason::kMalformed,
                                     std::memory_order_relaxed);
        server_.CountWireMalformed();
        EnqueueError(conn, ErrorCode::kBadLength, 0);
        return false;
      }
      // Reattach to the session the token names -- retained, or still
      // nominally connected (the client redialed before this server noticed
      // the old wire die; AdoptClient steals ownership from the stale
      // connection).  Otherwise fall back to a fresh registration (the
      // session was reaped, torn down by DestroyAll, or the token is from a
      // previous server generation).  The ack's flags tell the client which
      // happened.
      ClientId resumed = server_.ResumeSession(token);
      bool was_resumed = resumed != 0;
      conn.client = was_resumed ? resumed : server_.RegisterClient(std::move(name));
      AdoptClient(conn, conn.client);
      Connection* raw = &conn;
      server_.SetErrorSink(conn.client, [this, raw](const XError& error) {
        EnqueueFrame(*raw, EncodeFrame(FrameKind::kError, EncodeErrorPayload(error)));
      });
      WireAck ack = MakeAck(conn.client, conn.client);
      ack.extra = server_.root();
      ack.token = server_.ClientSessionToken(conn.client);
      ack.flags = was_resumed ? kAckFlagResumed : 0;
      return EnqueueFrame(conn, EncodeFrame(FrameKind::kHelloAck, EncodeAckPayload(ack)));
    }
    case FrameKind::kPing: {
      if (conn.client == 0) {
        return false;
      }
      if (blackhole_pings_.load(std::memory_order_relaxed)) {
        return true;  // Swallowed: the client's liveness deadline expires.
      }
      WireAck probe;
      uint64_t nonce =
          DecodeAckPayload(frame.payload, &probe) == DecodeStatus::kOk ? probe.value : 0;
      return EnqueueFrame(
          conn, EncodeFrame(FrameKind::kPong, EncodeAckPayload(MakeAck(conn.client, nonce))));
    }
    case FrameKind::kBatch:
      if (conn.client == 0) {
        return false;
      }
      return HandleBatch(conn, frame);
    case FrameKind::kRequestSync: {
      if (conn.client == 0) {
        return false;
      }
      std::vector<Request> batch;
      uint64_t applied = 0;
      DecodeStatus status = DecodeBatchPayload(frame.payload, &batch);
      if (status != DecodeStatus::kOk || batch.size() != 1) {
        server_.CountWireMalformed();
        server_.RaiseTransportError(conn.client, status == DecodeStatus::kOk
                                                     ? ErrorCode::kBadLength
                                                     : DecodeStatusToError(status));
      } else {
        applied = server_.ApplyRequest(conn.client, batch[0], /*synchronous=*/true) ? 1 : 0;
      }
      return EnqueueFrame(
          conn, EncodeFrame(FrameKind::kRequestAck, EncodeAckPayload(MakeAck(conn.client, applied))));
    }
    case FrameKind::kQuery: {
      if (conn.client == 0) {
        return false;
      }
      WireQuery query;
      WireReply reply;
      DecodeStatus status = DecodeQueryPayload(frame.payload, &query);
      if (status != DecodeStatus::kOk) {
        server_.CountWireMalformed();
        server_.RaiseTransportError(conn.client, DecodeStatusToError(status));
        reply.sequence = server_.ClientSequence(conn.client);
      } else {
        reply = ExecuteQuery(conn.client, query);
      }
      return EnqueueFrame(conn,
                          EncodeFrame(FrameKind::kReply, EncodeReplyPayload(reply)));
    }
    case FrameKind::kEventSync: {
      if (conn.client == 0) {
        return false;
      }
      PumpEvents(conn);
      return EnqueueFrame(
          conn,
          EncodeFrame(FrameKind::kEventSyncAck, EncodeAckPayload(MakeAck(conn.client, 0))));
    }
    case FrameKind::kBye: {
      // Orderly disconnect: apply the close-down mode before acking so the
      // client's destructor returning means its resources are already gone
      // (or retained) -- the direct path's teardown is synchronous too.
      // The default DestroyAll mode makes this identical to the old
      // unconditional UnregisterClient.
      if (ReleaseClient(conn)) {
        server_.DisconnectClient(conn.client, DisconnectReason::kBye);
      }
      conn.client = 0;
      EnqueueFrame(conn,
                   EncodeFrame(FrameKind::kByeAck, EncodeAckPayload(WireAck())));
      return false;
    }
    default:
      // A server-to-client kind arriving at the server is a protocol
      // violation; treat it like structural damage.
      conn.disconnect_reason.store(DisconnectReason::kMalformed,
                                   std::memory_order_relaxed);
      server_.CountWireMalformed();
      EnqueueError(conn, ErrorCode::kBadRequest, 0);
      return false;
  }
}

bool WireServer::HandleBatch(Connection& conn, const Frame& frame) {
  FaultInjector::Decision decision = server_.fault_injector().DecideFrame();
  if (decision.delay_ns != 0) {
    server_.CountWireFault(false, false, true);
    std::this_thread::sleep_for(std::chrono::nanoseconds(decision.delay_ns));
  }
  if (decision.drop) {
    // The batch is lost in transit.  The transport-level ack still flows
    // (acking delivery of zero requests) so the client is not wedged.
    server_.CountWireFault(true, false, false);
    return EnqueueFrame(
        conn, EncodeFrame(FrameKind::kBatchAck, EncodeAckPayload(MakeAck(conn.client, 0))));
  }
  std::vector<uint8_t> payload = frame.payload;
  if (decision.fail) {
    // Frame-layer "fail" = truncate: the decoder sees structural damage and
    // the client gets BadLength, but the connection survives.
    server_.CountWireFault(false, true, false);
    payload.resize(payload.size() / 2);
  }
  std::vector<Request> batch;
  size_t applied = 0;
  DecodeStatus status = DecodeBatchPayload(payload, &batch);
  if (status != DecodeStatus::kOk) {
    server_.CountWireMalformed();
    server_.RaiseTransportError(conn.client, DecodeStatusToError(status));
  } else {
    server_.CountWireBatch();
    // Sharded application: concurrent batches touching disjoint resource
    // classes (different window subtrees, GCs vs atoms) proceed in parallel
    // instead of convoying on one whole-batch server lock.
    applied = server_.ApplyBatchSharded(conn.client, batch);
  }
  // Deferred errors raised by the batch were enqueued by the error sink
  // above; the ack goes out after them, so the client sees errors first --
  // the ordering tk_flush's deferred-error tests assert.
  return EnqueueFrame(
      conn, EncodeFrame(FrameKind::kBatchAck, EncodeAckPayload(MakeAck(conn.client, applied))));
}

WireReply WireServer::ExecuteQuery(ClientId client, const WireQuery& query) {
  WireReply reply;
  switch (query.op) {
    case QueryOpcode::kInternAtom: {
      reply.value = server_.InternAtom(client, query.text);
      reply.ok = reply.value != kAtomNone;
      break;
    }
    case QueryOpcode::kAtomName: {
      reply.text = server_.AtomName(query.a);
      reply.ok = !reply.text.empty();
      break;
    }
    case QueryOpcode::kGetProperty: {
      std::optional<std::string> value = server_.GetProperty(client, query.a, query.b);
      reply.ok = value.has_value();
      if (value) {
        reply.text = std::move(*value);
      }
      break;
    }
    case QueryOpcode::kAllocNamedColor: {
      std::optional<Pixel> pixel = server_.AllocNamedColor(client, query.text);
      reply.ok = pixel.has_value();
      reply.value = pixel.value_or(0);
      break;
    }
    case QueryOpcode::kAllocColor: {
      reply.value = server_.AllocColor(client, UnpackPixel(query.a));
      reply.ok = true;
      break;
    }
    case QueryOpcode::kLoadFont: {
      std::optional<FontId> font = server_.LoadFont(client, query.text);
      reply.ok = font.has_value();
      reply.value = font.value_or(kNone);
      break;
    }
    case QueryOpcode::kQueryFont: {
      const FontMetrics* metrics = server_.QueryFont(query.a);
      reply.ok = metrics != nullptr;
      if (metrics != nullptr) {
        reply.value = metrics->char_width;
        reply.c = metrics->ascent;
        reply.d = metrics->descent;
        reply.text = metrics->name;
      }
      break;
    }
    case QueryOpcode::kCreateCursor: {
      reply.value = server_.CreateNamedCursor(client, query.text);
      reply.ok = reply.value != kNone;
      break;
    }
    case QueryOpcode::kCreateBitmap: {
      reply.value = server_.CreateBitmap(client, query.text, query.c, query.d);
      reply.ok = reply.value != kNone;
      break;
    }
    case QueryOpcode::kGetInputFocus: {
      reply.value = server_.GetInputFocus();
      reply.ok = true;
      break;
    }
    case QueryOpcode::kGetSelectionOwner: {
      reply.value = server_.GetSelectionOwner(client, query.a);
      reply.ok = reply.value != kNone;
      break;
    }
    case QueryOpcode::kNoOpRoundTrip: {
      server_.GetSelectionOwner(client, kAtomNone);
      reply.ok = true;
      break;
    }
    case QueryOpcode::kQueryOpcodeCount:
      break;
  }
  reply.sequence = server_.ClientSequence(client);
  return reply;
}

}  // namespace wire
}  // namespace xsim
