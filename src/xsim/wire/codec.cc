#include "src/xsim/wire/codec.h"

namespace xsim {
namespace wire {

namespace {

// Last legitimate values of the enums the decoders accept; anything above is
// kBadOpcode.  Keep in sync with request.h / event.h.
constexpr uint8_t kMaxRequestOpcode = static_cast<uint8_t>(RequestOpcode::kReparentWindow);
constexpr uint32_t kMaxEventType = static_cast<uint32_t>(EventType::kClientMessage);
constexpr uint8_t kMaxErrorCode = static_cast<uint8_t>(ErrorCode::kBadRequest);

DecodeStatus Finish(const Reader& r) {
  if (!r.ok()) {
    return DecodeStatus::kTruncated;
  }
  if (!r.AtEnd()) {
    return DecodeStatus::kTrailing;
  }
  return DecodeStatus::kOk;
}

}  // namespace

const char* FrameKindName(FrameKind kind) {
  switch (kind) {
    case FrameKind::kHello:
      return "Hello";
    case FrameKind::kHelloAck:
      return "HelloAck";
    case FrameKind::kBatch:
      return "Batch";
    case FrameKind::kBatchAck:
      return "BatchAck";
    case FrameKind::kRequestSync:
      return "RequestSync";
    case FrameKind::kRequestAck:
      return "RequestAck";
    case FrameKind::kQuery:
      return "Query";
    case FrameKind::kReply:
      return "Reply";
    case FrameKind::kEvent:
      return "Event";
    case FrameKind::kError:
      return "Error";
    case FrameKind::kEventSync:
      return "EventSync";
    case FrameKind::kEventSyncAck:
      return "EventSyncAck";
    case FrameKind::kBye:
      return "Bye";
    case FrameKind::kByeAck:
      return "ByeAck";
    case FrameKind::kPing:
      return "Ping";
    case FrameKind::kPong:
      return "Pong";
    case FrameKind::kResume:
      return "Resume";
    case FrameKind::kFrameKindCount:
      break;
  }
  return "?";
}

const char* DecodeStatusName(DecodeStatus status) {
  switch (status) {
    case DecodeStatus::kOk:
      return "ok";
    case DecodeStatus::kBadMagic:
      return "bad-magic";
    case DecodeStatus::kBadVersion:
      return "bad-version";
    case DecodeStatus::kBadKind:
      return "bad-kind";
    case DecodeStatus::kOversized:
      return "oversized";
    case DecodeStatus::kTruncated:
      return "truncated";
    case DecodeStatus::kBadOpcode:
      return "bad-opcode";
    case DecodeStatus::kTrailing:
      return "trailing";
  }
  return "?";
}

ErrorCode DecodeStatusToError(DecodeStatus status) {
  switch (status) {
    case DecodeStatus::kOk:
      return ErrorCode::kSuccess;
    case DecodeStatus::kBadOpcode:
      return ErrorCode::kBadRequest;
    default:
      return ErrorCode::kBadLength;
  }
}

// --- Writer -----------------------------------------------------------------

void Writer::U16(uint16_t v) {
  buf_.push_back(static_cast<uint8_t>(v & 0xff));
  buf_.push_back(static_cast<uint8_t>(v >> 8));
}

void Writer::U32(uint32_t v) {
  buf_.push_back(static_cast<uint8_t>(v & 0xff));
  buf_.push_back(static_cast<uint8_t>((v >> 8) & 0xff));
  buf_.push_back(static_cast<uint8_t>((v >> 16) & 0xff));
  buf_.push_back(static_cast<uint8_t>((v >> 24) & 0xff));
}

void Writer::U64(uint64_t v) {
  U32(static_cast<uint32_t>(v & 0xffffffffu));
  U32(static_cast<uint32_t>(v >> 32));
}

void Writer::Str(const std::string& s) {
  U32(static_cast<uint32_t>(s.size()));
  buf_.insert(buf_.end(), s.begin(), s.end());
}

void Writer::Rect4(const Rect& r) {
  I32(r.x);
  I32(r.y);
  I32(r.width);
  I32(r.height);
}

// --- Reader -----------------------------------------------------------------

uint8_t Reader::U8() {
  if (at_ + 1 > size_) {
    ok_ = false;
    at_ = size_;
    return 0;
  }
  return data_[at_++];
}

uint16_t Reader::U16() {
  if (at_ + 2 > size_) {
    ok_ = false;
    at_ = size_;
    return 0;
  }
  uint16_t v = static_cast<uint16_t>(data_[at_]) |
               static_cast<uint16_t>(data_[at_ + 1]) << 8;
  at_ += 2;
  return v;
}

uint32_t Reader::U32() {
  if (at_ + 4 > size_) {
    ok_ = false;
    at_ = size_;
    return 0;
  }
  uint32_t v = static_cast<uint32_t>(data_[at_]) |
               static_cast<uint32_t>(data_[at_ + 1]) << 8 |
               static_cast<uint32_t>(data_[at_ + 2]) << 16 |
               static_cast<uint32_t>(data_[at_ + 3]) << 24;
  at_ += 4;
  return v;
}

uint64_t Reader::U64() {
  uint64_t lo = U32();
  uint64_t hi = U32();
  return lo | hi << 32;
}

std::string Reader::Str() {
  uint32_t len = U32();
  if (!ok_ || len > remaining()) {
    ok_ = false;
    at_ = size_;
    return std::string();
  }
  std::string s(reinterpret_cast<const char*>(data_ + at_), len);
  at_ += len;
  return s;
}

Rect Reader::Rect4() {
  Rect r;
  r.x = I32();
  r.y = I32();
  r.width = I32();
  r.height = I32();
  return r;
}

// --- Frame assembly ---------------------------------------------------------

std::vector<uint8_t> EncodeFrame(FrameKind kind, std::vector<uint8_t> payload) {
  Writer w;
  w.U32(kWireMagic);
  w.U8(kWireVersion);
  w.U8(static_cast<uint8_t>(kind));
  w.U16(0);  // Reserved.
  w.U32(static_cast<uint32_t>(payload.size()));
  std::vector<uint8_t> frame = w.Take();
  frame.insert(frame.end(), payload.begin(), payload.end());
  return frame;
}

DecodeStatus DecodeFrameHeader(const uint8_t* data, size_t size, FrameHeader* out) {
  Reader r(data, size);
  uint32_t magic = r.U32();
  uint8_t version = r.U8();
  uint8_t kind = r.U8();
  r.U16();  // Reserved; tolerated nonzero for forward compatibility.
  uint32_t length = r.U32();
  if (!r.ok()) {
    return DecodeStatus::kTruncated;
  }
  if (magic != kWireMagic) {
    return DecodeStatus::kBadMagic;
  }
  if (version != kWireVersion) {
    return DecodeStatus::kBadVersion;
  }
  if (kind == 0 || kind >= static_cast<uint8_t>(FrameKind::kFrameKindCount)) {
    return DecodeStatus::kBadKind;
  }
  if (length > kMaxFramePayload) {
    return DecodeStatus::kOversized;
  }
  out->kind = static_cast<FrameKind>(kind);
  out->payload_length = length;
  return DecodeStatus::kOk;
}

DecodeStatus DecodeFrame(const std::vector<uint8_t>& bytes, Frame* out) {
  if (bytes.size() < kFrameHeaderSize) {
    return DecodeStatus::kTruncated;
  }
  FrameHeader header;
  DecodeStatus status = DecodeFrameHeader(bytes.data(), bytes.size(), &header);
  if (status != DecodeStatus::kOk) {
    return status;
  }
  if (bytes.size() - kFrameHeaderSize < header.payload_length) {
    return DecodeStatus::kTruncated;
  }
  if (bytes.size() - kFrameHeaderSize > header.payload_length) {
    return DecodeStatus::kTrailing;
  }
  out->kind = header.kind;
  out->payload.assign(bytes.begin() + kFrameHeaderSize, bytes.end());
  return DecodeStatus::kOk;
}

// --- Request ----------------------------------------------------------------

void EncodeRequest(Writer& w, const Request& request) {
  w.U8(static_cast<uint8_t>(request.op));
  w.U64(request.sequence);
  w.U32(request.window);
  w.U32(request.resource);
  w.U32(request.gc);
  w.U32(request.atom);
  w.U32(request.target);
  w.U32(request.property);
  w.U32(request.requestor);
  w.U32(request.pixel);
  w.U32(request.mask);
  w.I32(request.x);
  w.I32(request.y);
  w.I32(request.width);
  w.I32(request.height);
  w.I32(request.border_width);
  w.I32(request.x1);
  w.I32(request.y1);
  w.Rect4(request.rect);
  w.Str(request.text);
  w.U32(request.gc_values.foreground);
  w.U32(request.gc_values.background);
  w.U32(request.gc_values.font);
  w.I32(request.gc_values.line_width);
  // SendEvent payload, inline; same field order as EncodeEventPayload so the
  // embedded event round-trips field-for-field like a standalone one.
  w.U32(static_cast<uint32_t>(request.event.type));
  w.U32(request.event.window);
  w.U64(request.event.time);
  w.I32(request.event.x);
  w.I32(request.event.y);
  w.I32(request.event.x_root);
  w.I32(request.event.y_root);
  w.U32(request.event.state);
  w.U32(request.event.detail);
  w.Rect4(request.event.area);
  w.I32(request.event.border_width);
  w.I32(request.event.count);
  w.U32(request.event.atom);
  w.U32(request.event.target);
  w.U32(request.event.property);
  w.U32(request.event.requestor);
  w.U32(request.event.message_type);
  w.Str(request.event.data);
}

DecodeStatus DecodeRequest(Reader& r, Request* out) {
  uint8_t op = r.U8();
  if (r.ok() && op > kMaxRequestOpcode) {
    return DecodeStatus::kBadOpcode;
  }
  out->op = static_cast<RequestOpcode>(op);
  out->sequence = r.U64();
  out->window = r.U32();
  out->resource = r.U32();
  out->gc = r.U32();
  out->atom = r.U32();
  out->target = r.U32();
  out->property = r.U32();
  out->requestor = r.U32();
  out->pixel = r.U32();
  out->mask = r.U32();
  out->x = r.I32();
  out->y = r.I32();
  out->width = r.I32();
  out->height = r.I32();
  out->border_width = r.I32();
  out->x1 = r.I32();
  out->y1 = r.I32();
  out->rect = r.Rect4();
  out->text = r.Str();
  out->gc_values.foreground = r.U32();
  out->gc_values.background = r.U32();
  out->gc_values.font = r.U32();
  out->gc_values.line_width = r.I32();
  uint32_t event_type = r.U32();
  if (r.ok() && event_type > kMaxEventType) {
    return DecodeStatus::kBadOpcode;
  }
  out->event.type = static_cast<EventType>(event_type);
  out->event.window = r.U32();
  out->event.time = r.U64();
  out->event.x = r.I32();
  out->event.y = r.I32();
  out->event.x_root = r.I32();
  out->event.y_root = r.I32();
  out->event.state = r.U32();
  out->event.detail = r.U32();
  out->event.area = r.Rect4();
  out->event.border_width = r.I32();
  out->event.count = r.I32();
  out->event.atom = r.U32();
  out->event.target = r.U32();
  out->event.property = r.U32();
  out->event.requestor = r.U32();
  out->event.message_type = r.U32();
  out->event.data = r.Str();
  return r.ok() ? DecodeStatus::kOk : DecodeStatus::kTruncated;
}

std::vector<uint8_t> EncodeBatchPayload(const std::vector<Request>& batch) {
  Writer w;
  w.U32(static_cast<uint32_t>(batch.size()));
  for (const Request& request : batch) {
    EncodeRequest(w, request);
  }
  return w.Take();
}

DecodeStatus DecodeBatchPayload(const std::vector<uint8_t>& payload,
                                std::vector<Request>* out) {
  Reader r(payload);
  uint32_t count = r.U32();
  if (!r.ok()) {
    return DecodeStatus::kTruncated;
  }
  if (count > kMaxBatchRequests) {
    return DecodeStatus::kOversized;
  }
  out->clear();
  out->reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    Request request;
    DecodeStatus status = DecodeRequest(r, &request);
    if (status != DecodeStatus::kOk) {
      return status;
    }
    out->push_back(std::move(request));
  }
  return Finish(r);
}

// --- Event ------------------------------------------------------------------

std::vector<uint8_t> EncodeEventPayload(const Event& event) {
  Writer w;
  w.U32(static_cast<uint32_t>(event.type));
  w.U32(event.window);
  w.U64(event.time);
  w.I32(event.x);
  w.I32(event.y);
  w.I32(event.x_root);
  w.I32(event.y_root);
  w.U32(event.state);
  w.U32(event.detail);
  w.Rect4(event.area);
  w.I32(event.border_width);
  w.I32(event.count);
  w.U32(event.atom);
  w.U32(event.target);
  w.U32(event.property);
  w.U32(event.requestor);
  w.U32(event.message_type);
  w.Str(event.data);
  return w.Take();
}

DecodeStatus DecodeEventPayload(const std::vector<uint8_t>& payload, Event* out) {
  Reader r(payload);
  uint32_t type = r.U32();
  if (r.ok() && type > kMaxEventType) {
    return DecodeStatus::kBadOpcode;
  }
  out->type = static_cast<EventType>(type);
  out->window = r.U32();
  out->time = r.U64();
  out->x = r.I32();
  out->y = r.I32();
  out->x_root = r.I32();
  out->y_root = r.I32();
  out->state = r.U32();
  out->detail = r.U32();
  out->area = r.Rect4();
  out->border_width = r.I32();
  out->count = r.I32();
  out->atom = r.U32();
  out->target = r.U32();
  out->property = r.U32();
  out->requestor = r.U32();
  out->message_type = r.U32();
  out->data = r.Str();
  return Finish(r);
}

// --- Error ------------------------------------------------------------------

std::vector<uint8_t> EncodeErrorPayload(const XError& error) {
  Writer w;
  w.U8(static_cast<uint8_t>(error.code));
  w.U64(error.sequence);
  w.U32(error.resource);
  w.U8(static_cast<uint8_t>(error.request));
  return w.Take();
}

DecodeStatus DecodeErrorPayload(const std::vector<uint8_t>& payload, XError* out) {
  Reader r(payload);
  uint8_t code = r.U8();
  if (r.ok() && code > kMaxErrorCode) {
    return DecodeStatus::kBadOpcode;
  }
  out->code = static_cast<ErrorCode>(code);
  out->sequence = r.U64();
  out->resource = r.U32();
  uint8_t request = r.U8();
  if (r.ok() && request >= static_cast<uint8_t>(RequestType::kRequestTypeCount)) {
    return DecodeStatus::kBadOpcode;
  }
  out->request = static_cast<RequestType>(request);
  return Finish(r);
}

// --- Query / reply ----------------------------------------------------------

std::vector<uint8_t> EncodeQueryPayload(const WireQuery& query) {
  Writer w;
  w.U8(static_cast<uint8_t>(query.op));
  w.U32(query.a);
  w.U32(query.b);
  w.I32(query.c);
  w.I32(query.d);
  w.Str(query.text);
  return w.Take();
}

DecodeStatus DecodeQueryPayload(const std::vector<uint8_t>& payload, WireQuery* out) {
  Reader r(payload);
  uint8_t op = r.U8();
  if (r.ok() &&
      (op == 0 || op >= static_cast<uint8_t>(QueryOpcode::kQueryOpcodeCount))) {
    return DecodeStatus::kBadOpcode;
  }
  out->op = static_cast<QueryOpcode>(op);
  out->a = r.U32();
  out->b = r.U32();
  out->c = r.I32();
  out->d = r.I32();
  out->text = r.Str();
  return Finish(r);
}

std::vector<uint8_t> EncodeReplyPayload(const WireReply& reply) {
  Writer w;
  w.U8(reply.ok ? 1 : 0);
  w.U64(reply.value);
  w.U64(reply.sequence);
  w.I32(reply.c);
  w.I32(reply.d);
  w.Str(reply.text);
  return w.Take();
}

DecodeStatus DecodeReplyPayload(const std::vector<uint8_t>& payload, WireReply* out) {
  Reader r(payload);
  out->ok = r.U8() != 0;
  out->value = r.U64();
  out->sequence = r.U64();
  out->c = r.I32();
  out->d = r.I32();
  out->text = r.Str();
  return Finish(r);
}

// --- Hello / acks -----------------------------------------------------------

std::vector<uint8_t> EncodeHelloPayload(const std::string& client_name) {
  Writer w;
  w.Str(client_name);
  return w.Take();
}

DecodeStatus DecodeHelloPayload(const std::vector<uint8_t>& payload,
                                std::string* client_name) {
  Reader r(payload);
  *client_name = r.Str();
  return Finish(r);
}

std::vector<uint8_t> EncodeAckPayload(const WireAck& ack) {
  Writer w;
  w.U64(ack.value);
  w.U64(ack.sequence);
  w.U32(ack.extra);
  w.U64(ack.token);
  w.U32(ack.flags);
  return w.Take();
}

DecodeStatus DecodeAckPayload(const std::vector<uint8_t>& payload, WireAck* out) {
  Reader r(payload);
  out->value = r.U64();
  out->sequence = r.U64();
  out->extra = r.U32();
  out->token = r.U64();
  out->flags = r.U32();
  return Finish(r);
}

std::vector<uint8_t> EncodeResumePayload(const std::string& client_name, uint64_t token) {
  Writer w;
  w.Str(client_name);
  w.U64(token);
  return w.Take();
}

DecodeStatus DecodeResumePayload(const std::vector<uint8_t>& payload,
                                 std::string* client_name, uint64_t* token) {
  Reader r(payload);
  *client_name = r.Str();
  *token = r.U64();
  return Finish(r);
}

}  // namespace wire
}  // namespace xsim
