// The client side of the xsim connection: how a Display reaches its Server.
//
// The paper's Tk talks to X through Xlib over a byte stream; PR 4 gave the
// reproduction Xlib's output buffer but still delivered batches through an
// in-process pointer.  Transport makes that delivery step swappable:
//
//   * DirectTransport   -- the original shortcut: method calls on Server.
//   * WireTransport     -- a real byte stream (socketpair to the threaded
//                          WireServer front-end), every batch/query/event
//                          crossing as encoded frames.  XOpenDisplay's
//                          connect(), in miniature.
//
// Both implement identical protocol semantics: batches apply in order,
// queries are the only round trips the request counters see, errors arrive
// deferred with their enqueue-time sequence numbers, and events drain through
// the same Pending/PollEvent surface.  WireTransport keeps flushes
// deterministic by waiting for a transport-level batch acknowledgement (like
// TCP's ack, it is not an X round trip and is not counted as one), so every
// direct-mode conformance assertion holds unchanged over the wire.
//
// Transport selection: pass a TransportKind to Display::Open, or set the
// environment variable TCLK_TRANSPORT=wire to switch every Display in the
// process (how the wire variants of the conformance suites run).

#ifndef SRC_XSIM_WIRE_TRANSPORT_H_
#define SRC_XSIM_WIRE_TRANSPORT_H_

#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/xsim/error.h"
#include "src/xsim/event.h"
#include "src/xsim/request.h"
#include "src/xsim/types.h"
#include "src/xsim/wire/codec.h"

namespace xsim {

class Server;

namespace wire {

enum class TransportKind : uint8_t {
  kDirect = 0,  // In-process method calls (the PR 1-4 behaviour).
  kWire,        // Length-prefixed frames over a socketpair.
};

const char* TransportKindName(TransportKind kind);

// Reads TCLK_TRANSPORT ("direct"/"wire"); kDirect when unset or unknown.
TransportKind TransportKindFromEnv();

// What a Display needs from its connection.  One instance per Display; calls
// come from the owning Display's thread only.
class Transport {
 public:
  using ErrorSink = std::function<void(const XError&)>;

  virtual ~Transport() = default;

  virtual TransportKind kind() const = 0;
  virtual ClientId client_id() const = 0;
  virtual WindowId root() const = 0;

  // Last known liveness of the connection's server-side client record (a
  // KillClient'ed connection swallows requests, as in the direct path).
  virtual bool Alive() = 0;
  // Server-side sequence number of this client, for Display::Resync after a
  // query.  Over the wire this is the sequence carried by the latest
  // reply/ack rather than a fresh round trip.
  virtual uint64_t SequenceSync() = 0;

  // Ships one output-buffer flush; returns how many requests applied.
  // Blocks until the server acknowledges the batch (see file comment).
  virtual size_t SendBatch(const std::vector<Request>& batch) = 0;
  // XSynchronize path: one request, applied immediately, real status back.
  virtual bool SendRequestSync(const Request& request) = 0;
  // Reply-bearing queries (the only protocol round trips).
  virtual WireReply Query(const WireQuery& query) = 0;

  // Event interface (XPending/XNextEvent shape).  Over the wire these drain
  // the server-side queue through the connection first.
  virtual bool HasPendingEvents() = 0;
  virtual size_t PendingEventCount() = 0;
  virtual bool NextEvent(Event* out) = 0;

  // Orderly disconnect (idempotent; the destructor closes too).
  virtual void Close() = 0;

  // --- Connection-lifecycle surface (PR 7) ---------------------------------

  // True when the connection died *without* an orderly Close(): EOF, socket
  // error, unsynchronized stream, or a missed heartbeat.  This -- not
  // !Alive() -- is what should trigger a reconnect: a KillClient'ed client
  // is dead-but-connected and must stay dead.  Direct transports never
  // suffer IO errors.
  virtual bool io_error() const { return false; }
  // Session token issued by the server in the handshake; 0 on the direct
  // path (an in-process client cannot outlive its server).
  virtual uint64_t session_token() const { return 0; }
  // True when the handshake reattached to a retained session (kResume path)
  // rather than registering fresh.
  virtual bool resumed() const { return false; }
  // Heartbeat: probes the connection and waits up to `timeout_ms` for the
  // echo.  False (and io_error) when the pong never came -- the liveness
  // deadline expired.  A pong from a KillClient'ed session still counts as
  // alive wire.  Direct transports are trivially live while open.
  virtual bool Ping(uint64_t nonce, uint64_t timeout_ms) = 0;
};

// Connects a new client named `name` to `server` over the chosen transport,
// with `sink` receiving this connection's X error events.  The server must
// outlive the transport.  A nonzero `resume_token` asks the wire path to
// reattach to a retained session instead of registering fresh (ignored by
// the direct path, which cannot lose a connection in the first place).
std::unique_ptr<Transport> Connect(Server& server, TransportKind kind, std::string name,
                                   Transport::ErrorSink sink, uint64_t resume_token = 0);

// --- Implementations --------------------------------------------------------

// The in-process shortcut: every Transport call is the Server method the
// Display used to make directly.
class DirectTransport : public Transport {
 public:
  DirectTransport(Server& server, std::string name, ErrorSink sink);
  ~DirectTransport() override;

  TransportKind kind() const override { return TransportKind::kDirect; }
  ClientId client_id() const override { return client_; }
  WindowId root() const override;
  bool Alive() override;
  uint64_t SequenceSync() override;
  size_t SendBatch(const std::vector<Request>& batch) override;
  bool SendRequestSync(const Request& request) override;
  WireReply Query(const WireQuery& query) override;
  bool HasPendingEvents() override;
  size_t PendingEventCount() override;
  bool NextEvent(Event* out) override;
  void Close() override;
  bool Ping(uint64_t nonce, uint64_t timeout_ms) override;

 private:
  Server& server_;
  ClientId client_ = 0;
  bool closed_ = false;
};

// The byte-stream path: owns the client end of a socketpair to WireServer.
// Single-threaded by design (the Display's thread): sends a frame, then
// pumps incoming frames -- queueing events, delivering errors to the sink in
// arrival order -- until the matching ack/reply appears.  A broken
// connection degrades exactly like a dead client: sends are swallowed,
// queries return empty replies, Alive() goes false.
class WireTransport : public Transport {
 public:
  // Takes ownership of `fd` (the client end from WireServer::Connect) and
  // performs the handshake: kHello when `resume_token` is 0, kResume (with
  // fresh-registration fallback server-side) otherwise.
  WireTransport(int fd, std::string name, ErrorSink sink, uint64_t resume_token = 0);
  ~WireTransport() override;

  TransportKind kind() const override { return TransportKind::kWire; }
  ClientId client_id() const override { return client_; }
  WindowId root() const override { return root_; }
  bool Alive() override { return !closed_ && alive_; }
  uint64_t SequenceSync() override { return server_sequence_; }
  size_t SendBatch(const std::vector<Request>& batch) override;
  bool SendRequestSync(const Request& request) override;
  WireReply Query(const WireQuery& query) override;
  bool HasPendingEvents() override;
  size_t PendingEventCount() override;
  bool NextEvent(Event* out) override;
  void Close() override;
  bool io_error() const override { return io_error_; }
  uint64_t session_token() const override { return session_token_; }
  bool resumed() const override { return resumed_; }
  bool Ping(uint64_t nonce, uint64_t timeout_ms) override;

 private:
  bool SendFrame(FrameKind kind, const std::vector<uint8_t>& payload);
  // Reads one whole frame; false (and closed_) on EOF/damage.
  bool ReadFrame(Frame* out);
  // Pumps frames until one of kind `kind` arrives; events are queued and
  // errors delivered along the way.  False when the connection died first.
  bool WaitFor(FrameKind kind, std::vector<uint8_t>* payload);
  // Issues a kEventSync round trip so every event the server holds for this
  // client is in events_.
  void SyncEvents();
  void AdoptAck(const WireAck& ack);
  // Connection death that was not an orderly Close().
  void MarkIoError();
  // Sets/clears SO_RCVTIMEO on the socket (0 = block forever).
  void SetReadTimeout(uint64_t timeout_ms);

  int fd_ = -1;
  ClientId client_ = 0;
  WindowId root_ = kNone;
  ErrorSink sink_;
  bool closed_ = false;
  bool alive_ = true;
  bool io_error_ = false;
  bool resumed_ = false;
  uint64_t session_token_ = 0;
  uint64_t server_sequence_ = 0;
  std::deque<Event> events_;
};

}  // namespace wire
}  // namespace xsim

#endif  // SRC_XSIM_WIRE_TRANSPORT_H_
