#include "src/xsim/wire/transport.h"

#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <utility>

#include "src/xsim/color.h"
#include "src/xsim/server.h"
#include "src/xsim/wire/wire_server.h"

namespace xsim {
namespace wire {

const char* TransportKindName(TransportKind kind) {
  switch (kind) {
    case TransportKind::kDirect:
      return "direct";
    case TransportKind::kWire:
      return "wire";
  }
  return "?";
}

TransportKind TransportKindFromEnv() {
  const char* value = std::getenv("TCLK_TRANSPORT");
  if (value != nullptr && std::strcmp(value, "wire") == 0) {
    return TransportKind::kWire;
  }
  return TransportKind::kDirect;
}

std::unique_ptr<Transport> Connect(Server& server, TransportKind kind, std::string name,
                                   Transport::ErrorSink sink, uint64_t resume_token) {
  if (kind == TransportKind::kWire) {
    int fd = server.wire().Connect();
    return std::make_unique<WireTransport>(fd, std::move(name), std::move(sink),
                                           resume_token);
  }
  return std::make_unique<DirectTransport>(server, std::move(name), std::move(sink));
}

// ---------------------------------------------------------------------------
// DirectTransport: each call is the Server method Display used to make.

DirectTransport::DirectTransport(Server& server, std::string name, ErrorSink sink)
    : server_(server) {
  client_ = server_.RegisterClient(std::move(name));
  server_.SetErrorSink(client_, std::move(sink));
}

DirectTransport::~DirectTransport() { Close(); }

WindowId DirectTransport::root() const { return server_.root(); }

bool DirectTransport::Alive() { return !closed_ && server_.ClientAlive(client_); }

uint64_t DirectTransport::SequenceSync() { return server_.ClientSequence(client_); }

size_t DirectTransport::SendBatch(const std::vector<Request>& batch) {
  return server_.ApplyBatch(client_, batch);
}

bool DirectTransport::SendRequestSync(const Request& request) {
  return server_.ApplyRequest(client_, request, /*synchronous=*/true);
}

WireReply DirectTransport::Query(const WireQuery& query) {
  WireReply reply;
  switch (query.op) {
    case QueryOpcode::kInternAtom: {
      reply.value = server_.InternAtom(client_, query.text);
      reply.ok = reply.value != kAtomNone;
      break;
    }
    case QueryOpcode::kAtomName: {
      reply.text = server_.AtomName(query.a);
      reply.ok = !reply.text.empty();
      break;
    }
    case QueryOpcode::kGetProperty: {
      std::optional<std::string> value = server_.GetProperty(client_, query.a, query.b);
      reply.ok = value.has_value();
      if (value) {
        reply.text = std::move(*value);
      }
      break;
    }
    case QueryOpcode::kAllocNamedColor: {
      std::optional<Pixel> pixel = server_.AllocNamedColor(client_, query.text);
      reply.ok = pixel.has_value();
      reply.value = pixel.value_or(0);
      break;
    }
    case QueryOpcode::kAllocColor: {
      reply.value = server_.AllocColor(client_, UnpackPixel(query.a));
      reply.ok = true;
      break;
    }
    case QueryOpcode::kLoadFont: {
      std::optional<FontId> font = server_.LoadFont(client_, query.text);
      reply.ok = font.has_value();
      reply.value = font.value_or(kNone);
      break;
    }
    case QueryOpcode::kQueryFont: {
      const FontMetrics* metrics = server_.QueryFont(query.a);
      reply.ok = metrics != nullptr;
      if (metrics != nullptr) {
        reply.value = metrics->char_width;
        reply.c = metrics->ascent;
        reply.d = metrics->descent;
        reply.text = metrics->name;
      }
      break;
    }
    case QueryOpcode::kCreateCursor: {
      reply.value = server_.CreateNamedCursor(client_, query.text);
      reply.ok = reply.value != kNone;
      break;
    }
    case QueryOpcode::kCreateBitmap: {
      reply.value = server_.CreateBitmap(client_, query.text, query.c, query.d);
      reply.ok = reply.value != kNone;
      break;
    }
    case QueryOpcode::kGetInputFocus: {
      reply.value = server_.GetInputFocus();
      reply.ok = true;
      break;
    }
    case QueryOpcode::kGetSelectionOwner: {
      reply.value = server_.GetSelectionOwner(client_, query.a);
      reply.ok = reply.value != kNone;
      break;
    }
    case QueryOpcode::kNoOpRoundTrip: {
      server_.GetSelectionOwner(client_, kAtomNone);
      reply.ok = true;
      break;
    }
    case QueryOpcode::kQueryOpcodeCount:
      break;
  }
  reply.sequence = server_.ClientSequence(client_);
  return reply;
}

bool DirectTransport::HasPendingEvents() { return server_.HasPendingEvents(client_); }

size_t DirectTransport::PendingEventCount() { return server_.PendingEventCount(client_); }

bool DirectTransport::NextEvent(Event* out) { return server_.NextEvent(client_, out); }

void DirectTransport::Close() {
  if (closed_) {
    return;
  }
  closed_ = true;
  // An orderly goodbye is an orderly goodbye regardless of transport: route
  // through the same disconnect bookkeeping as a wire kBye, so close-down
  // modes apply and `xtrace summary` counts the departure.
  server_.DisconnectClient(client_, DisconnectReason::kBye);
}

bool DirectTransport::Ping(uint64_t nonce, uint64_t timeout_ms) {
  (void)nonce;
  (void)timeout_ms;
  // No wire to lose: an open in-process connection is trivially live, even
  // for a KillClient'ed (dead-but-connected) client.
  return !closed_;
}

// ---------------------------------------------------------------------------
// WireTransport: the byte-stream path.

namespace {

bool ReadFull(int fd, uint8_t* data, size_t size) {
  size_t done = 0;
  while (done < size) {
    ssize_t n = ::recv(fd, data + done, size - done, 0);
    if (n > 0) {
      done += static_cast<size_t>(n);
    } else if (n < 0 && errno == EINTR) {
      continue;
    } else {
      return false;  // EOF or hard error: the connection is gone.
    }
  }
  return true;
}

bool WriteFull(int fd, const uint8_t* data, size_t size) {
  size_t done = 0;
  while (done < size) {
    // MSG_NOSIGNAL: a peer that hung up must surface as EPIPE, not SIGPIPE.
    ssize_t n = ::send(fd, data + done, size - done, MSG_NOSIGNAL);
    if (n > 0) {
      done += static_cast<size_t>(n);
    } else if (n < 0 && errno == EINTR) {
      continue;
    } else {
      return false;
    }
  }
  return true;
}

}  // namespace

WireTransport::WireTransport(int fd, std::string name, ErrorSink sink,
                             uint64_t resume_token)
    : fd_(fd), sink_(std::move(sink)) {
  if (fd_ < 0) {
    // The server refused the socket (bounce in progress / shut down): an IO
    // failure, so the reconnect loop keeps retrying with backoff.
    closed_ = true;
    alive_ = false;
    io_error_ = true;
    return;
  }
  bool sent = resume_token != 0
                  ? SendFrame(FrameKind::kResume, EncodeResumePayload(name, resume_token))
                  : SendFrame(FrameKind::kHello, EncodeHelloPayload(name));
  if (!sent) {
    return;
  }
  std::vector<uint8_t> payload;
  WireAck ack;
  if (!WaitFor(FrameKind::kHelloAck, &payload) ||
      DecodeAckPayload(payload, &ack) != DecodeStatus::kOk) {
    MarkIoError();
    return;
  }
  client_ = static_cast<ClientId>(ack.value);
  server_sequence_ = ack.sequence;
  root_ = ack.extra;
  session_token_ = ack.token;
  resumed_ = (ack.flags & kAckFlagResumed) != 0;
}

WireTransport::~WireTransport() { Close(); }

bool WireTransport::SendFrame(FrameKind kind, const std::vector<uint8_t>& payload) {
  if (fd_ < 0 || closed_) {
    return false;
  }
  std::vector<uint8_t> frame = EncodeFrame(kind, payload);
  if (!WriteFull(fd_, frame.data(), frame.size())) {
    MarkIoError();
    return false;
  }
  return true;
}

bool WireTransport::ReadFrame(Frame* out) {
  if (fd_ < 0 || closed_) {
    return false;
  }
  uint8_t header[kFrameHeaderSize];
  FrameHeader decoded;
  if (!ReadFull(fd_, header, sizeof(header)) ||
      DecodeFrameHeader(header, sizeof(header), &decoded) != DecodeStatus::kOk) {
    MarkIoError();
    return false;
  }
  out->kind = decoded.kind;
  out->payload.resize(decoded.payload_length);
  if (decoded.payload_length != 0 &&
      !ReadFull(fd_, out->payload.data(), out->payload.size())) {
    MarkIoError();
    return false;
  }
  return true;
}

bool WireTransport::WaitFor(FrameKind kind, std::vector<uint8_t>* payload) {
  // Events and errors may arrive ahead of the response we are waiting on
  // (deferred errors from the batch being acked, fan-out from other clients'
  // activity); absorb them in arrival order, exactly as Xlib's _XReply does.
  while (true) {
    Frame frame;
    if (!ReadFrame(&frame)) {
      return false;
    }
    if (frame.kind == kind) {
      *payload = std::move(frame.payload);
      return true;
    }
    switch (frame.kind) {
      case FrameKind::kEvent: {
        Event event;
        if (DecodeEventPayload(frame.payload, &event) == DecodeStatus::kOk) {
          events_.push_back(event);
        }
        break;
      }
      case FrameKind::kError: {
        XError error;
        if (DecodeErrorPayload(frame.payload, &error) == DecodeStatus::kOk && sink_) {
          sink_(error);
        }
        break;
      }
      default:
        // A response we did not ask for: the stream is out of sync.
        MarkIoError();
        return false;
    }
  }
}

void WireTransport::AdoptAck(const WireAck& ack) {
  server_sequence_ = ack.sequence;
  alive_ = ack.extra != 0;
}

void WireTransport::MarkIoError() {
  closed_ = true;
  alive_ = false;
  io_error_ = true;
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void WireTransport::SetReadTimeout(uint64_t timeout_ms) {
  if (fd_ < 0) {
    return;
  }
  struct timeval tv;
  tv.tv_sec = static_cast<time_t>(timeout_ms / 1000);
  tv.tv_usec = static_cast<suseconds_t>((timeout_ms % 1000) * 1000);
  ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
}

bool WireTransport::Ping(uint64_t nonce, uint64_t timeout_ms) {
  if (closed_ || fd_ < 0) {
    return false;
  }
  WireAck probe;
  probe.value = nonce;
  if (!SendFrame(FrameKind::kPing, EncodeAckPayload(probe))) {
    return false;
  }
  // The pong must land within the liveness deadline; a blackholed or wedged
  // server shows up as a recv timeout, which ReadFull reports as failure and
  // WaitFor turns into an IO error -- exactly what reconnect keys off.
  if (timeout_ms != 0) {
    SetReadTimeout(timeout_ms);
  }
  std::vector<uint8_t> payload;
  WireAck pong;
  bool ok = WaitFor(FrameKind::kPong, &payload) &&
            DecodeAckPayload(payload, &pong) == DecodeStatus::kOk && pong.value == nonce;
  if (timeout_ms != 0) {
    SetReadTimeout(0);
  }
  if (ok) {
    AdoptAck(pong);
  } else {
    MarkIoError();
  }
  return ok;
}

size_t WireTransport::SendBatch(const std::vector<Request>& batch) {
  if (!SendFrame(FrameKind::kBatch, EncodeBatchPayload(batch))) {
    return 0;
  }
  std::vector<uint8_t> payload;
  WireAck ack;
  if (!WaitFor(FrameKind::kBatchAck, &payload) ||
      DecodeAckPayload(payload, &ack) != DecodeStatus::kOk) {
    return 0;
  }
  AdoptAck(ack);
  return static_cast<size_t>(ack.value);
}

bool WireTransport::SendRequestSync(const Request& request) {
  // A synchronous request travels as a batch of one; the ack carries its
  // real status (XSynchronize semantics end-to-end).
  std::vector<Request> batch(1, request);
  if (!SendFrame(FrameKind::kRequestSync, EncodeBatchPayload(batch))) {
    return false;
  }
  std::vector<uint8_t> payload;
  WireAck ack;
  if (!WaitFor(FrameKind::kRequestAck, &payload) ||
      DecodeAckPayload(payload, &ack) != DecodeStatus::kOk) {
    return false;
  }
  AdoptAck(ack);
  return ack.value != 0;
}

WireReply WireTransport::Query(const WireQuery& query) {
  WireReply reply;
  if (!SendFrame(FrameKind::kQuery, EncodeQueryPayload(query))) {
    return reply;
  }
  std::vector<uint8_t> payload;
  if (!WaitFor(FrameKind::kReply, &payload) ||
      DecodeReplyPayload(payload, &reply) != DecodeStatus::kOk) {
    return WireReply();
  }
  server_sequence_ = reply.sequence;
  return reply;
}

void WireTransport::SyncEvents() {
  if (!SendFrame(FrameKind::kEventSync, {})) {
    return;
  }
  std::vector<uint8_t> payload;
  WireAck ack;
  if (WaitFor(FrameKind::kEventSyncAck, &payload) &&
      DecodeAckPayload(payload, &ack) == DecodeStatus::kOk) {
    AdoptAck(ack);
  }
}

bool WireTransport::HasPendingEvents() {
  if (!events_.empty()) {
    return true;
  }
  SyncEvents();
  return !events_.empty();
}

size_t WireTransport::PendingEventCount() {
  SyncEvents();
  return events_.size();
}

bool WireTransport::NextEvent(Event* out) {
  if (events_.empty()) {
    SyncEvents();
  }
  if (events_.empty()) {
    return false;
  }
  *out = events_.front();
  events_.pop_front();
  return true;
}

void WireTransport::Close() {
  if (fd_ >= 0) {
    if (!closed_ && SendFrame(FrameKind::kBye, {})) {
      // Block until the server has unregistered us, so destruction is as
      // synchronous as the direct path's UnregisterClient.
      std::vector<uint8_t> payload;
      WaitFor(FrameKind::kByeAck, &payload);
    }
    ::close(fd_);
    fd_ = -1;
  }
  closed_ = true;
  alive_ = false;
}

}  // namespace wire
}  // namespace xsim
