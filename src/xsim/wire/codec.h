// Binary wire codec for the xsim X connection.
//
// PR 4 reified one-way requests as encoded Request records; this codec is
// the missing serialization step: every record (and every reply, event and
// error flowing the other way) becomes a length-prefixed frame with an
// explicit little-endian layout, so two address spaces can speak the
// protocol over a byte stream exactly as Xlib speaks X over a socket.
//
// Frame layout (all integers little-endian):
//
//   offset  size  field
//   0       4     magic 0x52495758 ("XWIR")
//   4       1     protocol version (kWireVersion)
//   5       1     frame kind (FrameKind)
//   6       2     reserved, must be 0
//   8       4     payload length in bytes (<= kMaxFramePayload)
//   12      N     payload, layout per kind
//
// Strings are a u32 length followed by raw bytes; they may never extend past
// the end of the payload.  Decoders are total: any truncated, oversized,
// corrupt or unknown-opcode input yields a DecodeStatus, never undefined
// behaviour -- the wire_decode_fuzz_test feeds seeded random mutations of
// valid frames through every decoder to hold that line.

#ifndef SRC_XSIM_WIRE_CODEC_H_
#define SRC_XSIM_WIRE_CODEC_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/xsim/error.h"
#include "src/xsim/event.h"
#include "src/xsim/request.h"
#include "src/xsim/types.h"

namespace xsim {
namespace wire {

inline constexpr uint32_t kWireMagic = 0x52495758;  // "XWIR" on the wire.
// v2 added connection-lifecycle frames (kPing/kPong/kResume) and the session
// token + flags fields in WireAck.
inline constexpr uint8_t kWireVersion = 2;
inline constexpr size_t kFrameHeaderSize = 12;
inline constexpr uint32_t kMaxFramePayload = 1u << 20;  // 1 MiB.
inline constexpr uint32_t kMaxBatchRequests = 1u << 16;

// Every message on the connection is one frame of exactly one kind.
enum class FrameKind : uint8_t {
  kHello = 1,      // client -> server: client name (connection setup).
  kHelloAck,       // server -> client: assigned ClientId, root window.
  kBatch,          // client -> server: one output-buffer flush of Requests.
  kBatchAck,       // server -> client: batch applied (transport-level, not a
                   // protocol round trip -- mirrors TCP ack, not X reply).
  kRequestSync,    // client -> server: one request, XSynchronize semantics.
  kRequestAck,     // server -> client: its status.
  kQuery,          // client -> server: reply-bearing query (InternAtom, ...).
  kReply,          // server -> client: the query's reply.
  kEvent,          // server -> client: one delivered X event.
  kError,          // server -> client: one X error event.
  kEventSync,      // client -> server: drain my event queue (XPending).
  kEventSyncAck,   // server -> client: queue drained up to this point.
  kBye,            // client -> server: orderly disconnect.
  kByeAck,         // server -> client: client unregistered; safe to close.
  kPing,           // client -> server: heartbeat probe (nonce in ack.value).
  kPong,           // server -> client: heartbeat echo (same nonce).
  kResume,         // client -> server: reattach to a retained session by token.
  kFrameKindCount,
};

const char* FrameKindName(FrameKind kind);

// Reply-bearing queries (the only requests that block for a server reply).
enum class QueryOpcode : uint8_t {
  kInternAtom = 1,
  kAtomName,
  kGetProperty,
  kAllocNamedColor,
  kAllocColor,
  kLoadFont,
  kQueryFont,
  kCreateCursor,
  kCreateBitmap,
  kGetInputFocus,
  kGetSelectionOwner,
  kNoOpRoundTrip,  // XSync's throwaway query.
  kQueryOpcodeCount,
};

// A fat query record, like Request: only the fields the opcode reads are
// meaningful.
struct WireQuery {
  QueryOpcode op = QueryOpcode::kNoOpRoundTrip;
  uint32_t a = 0;  // Window / atom / font / pixel components, per opcode.
  uint32_t b = 0;
  int32_t c = 0;
  int32_t d = 0;
  std::string text;

  bool operator==(const WireQuery&) const = default;
};

// A fat reply record covering every query's result shape.
struct WireReply {
  bool ok = false;       // Query-specific "has a value" flag.
  uint64_t value = 0;    // Numeric result (atom, pixel, window, font id...).
  uint64_t sequence = 0; // Server-side sequence after the query (XSync resync).
  int32_t c = 0;         // QueryFont ascent.
  int32_t d = 0;         // QueryFont descent.
  std::string text;      // String result (property value, atom name...).

  bool operator==(const WireReply&) const = default;
};

// kHelloAck.flags bit: the Hello/Resume reattached a retained session (the
// client's server-side resources survived, so no journal replay is needed).
inline constexpr uint32_t kAckFlagResumed = 1u << 0;

// Acknowledgement payload for kBatchAck / kRequestAck / kEventSyncAck /
// kHelloAck / kPing / kPong.  `value` is the applied-request count (batch),
// request status (sync request), pending-event count (event sync), ClientId
// (hello) or heartbeat nonce (ping/pong).
struct WireAck {
  uint64_t value = 0;
  uint64_t sequence = 0;
  uint32_t extra = 0;   // Root window id in kHelloAck; liveness elsewhere.
  uint64_t token = 0;   // Session token issued in kHelloAck (v2).
  uint32_t flags = 0;   // kAckFlag* bits (v2).

  bool operator==(const WireAck&) const = default;
};

// What a decoder thought of its input.
enum class DecodeStatus : uint8_t {
  kOk = 0,
  kBadMagic,      // Header magic mismatch: not an xwire stream.
  kBadVersion,    // Protocol version this build does not speak.
  kBadKind,       // Unknown frame kind.
  kOversized,     // Declared payload length exceeds kMaxFramePayload.
  kTruncated,     // Payload shorter than its fields claim.
  kBadOpcode,     // Unknown request/query/event opcode inside the payload.
  kTrailing,      // Payload longer than its fields account for.
};

const char* DecodeStatusName(DecodeStatus status);

// The X error code a rejected frame maps to: structural damage is BadLength,
// an unknown opcode is BadRequest (the X11 idioms for both).
ErrorCode DecodeStatusToError(DecodeStatus status);

struct FrameHeader {
  FrameKind kind = FrameKind::kHello;
  uint32_t payload_length = 0;
};

// A decoded frame.
struct Frame {
  FrameKind kind = FrameKind::kHello;
  std::vector<uint8_t> payload;
};

// --- Primitive little-endian writer/reader ---------------------------------

class Writer {
 public:
  void U8(uint8_t v) { buf_.push_back(v); }
  void U16(uint16_t v);
  void U32(uint32_t v);
  void U64(uint64_t v);
  void I32(int32_t v) { U32(static_cast<uint32_t>(v)); }
  void Str(const std::string& s);
  void Rect4(const Rect& r);
  size_t size() const { return buf_.size(); }
  std::vector<uint8_t> Take() { return std::move(buf_); }

 private:
  std::vector<uint8_t> buf_;
};

// Bounds-checked reader: any under-run latches ok() false and yields zero
// values; callers check ok() once at the end.
class Reader {
 public:
  Reader(const uint8_t* data, size_t size) : data_(data), size_(size) {}
  explicit Reader(const std::vector<uint8_t>& bytes)
      : Reader(bytes.data(), bytes.size()) {}

  uint8_t U8();
  uint16_t U16();
  uint32_t U32();
  uint64_t U64();
  int32_t I32() { return static_cast<int32_t>(U32()); }
  std::string Str();
  Rect Rect4();

  bool ok() const { return ok_; }
  bool AtEnd() const { return at_ == size_; }
  size_t remaining() const { return size_ - at_; }

 private:
  const uint8_t* data_;
  size_t size_;
  size_t at_ = 0;
  bool ok_ = true;
};

// --- Frame assembly ---------------------------------------------------------

// Prepends the 12-byte header to `payload`.
std::vector<uint8_t> EncodeFrame(FrameKind kind, std::vector<uint8_t> payload);

// Validates the fixed-size header (first kFrameHeaderSize bytes of `data`).
DecodeStatus DecodeFrameHeader(const uint8_t* data, size_t size, FrameHeader* out);

// Convenience whole-frame decoder (header + payload in one buffer).  Used by
// tests; the streaming transports decode header and payload separately.
DecodeStatus DecodeFrame(const std::vector<uint8_t>& bytes, Frame* out);

// --- Payload codecs ---------------------------------------------------------

void EncodeRequest(Writer& w, const Request& request);
DecodeStatus DecodeRequest(Reader& r, Request* out);

std::vector<uint8_t> EncodeBatchPayload(const std::vector<Request>& batch);
DecodeStatus DecodeBatchPayload(const std::vector<uint8_t>& payload,
                                std::vector<Request>* out);

std::vector<uint8_t> EncodeEventPayload(const Event& event);
DecodeStatus DecodeEventPayload(const std::vector<uint8_t>& payload, Event* out);

std::vector<uint8_t> EncodeErrorPayload(const XError& error);
DecodeStatus DecodeErrorPayload(const std::vector<uint8_t>& payload, XError* out);

std::vector<uint8_t> EncodeQueryPayload(const WireQuery& query);
DecodeStatus DecodeQueryPayload(const std::vector<uint8_t>& payload, WireQuery* out);

std::vector<uint8_t> EncodeReplyPayload(const WireReply& reply);
DecodeStatus DecodeReplyPayload(const std::vector<uint8_t>& payload, WireReply* out);

std::vector<uint8_t> EncodeHelloPayload(const std::string& client_name);
DecodeStatus DecodeHelloPayload(const std::vector<uint8_t>& payload,
                                std::string* client_name);

std::vector<uint8_t> EncodeAckPayload(const WireAck& ack);
DecodeStatus DecodeAckPayload(const std::vector<uint8_t>& payload, WireAck* out);

// kResume: reattach to the retained session `token`; `client_name` names the
// connection if the server has to fall back to a fresh registration.
std::vector<uint8_t> EncodeResumePayload(const std::string& client_name, uint64_t token);
DecodeStatus DecodeResumePayload(const std::vector<uint8_t>& payload,
                                 std::string* client_name, uint64_t* token);

}  // namespace wire
}  // namespace xsim

#endif  // SRC_XSIM_WIRE_CODEC_H_
