#include "src/xsim/wire/reactor.h"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <cstdlib>
#include <utility>

namespace xsim {
namespace wire {

namespace {

size_t EnvCount(const char* name, size_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') {
    return fallback;
  }
  long parsed = std::strtol(value, nullptr, 10);
  if (parsed < 1) {
    return fallback;
  }
  return static_cast<size_t>(parsed);
}

}  // namespace

size_t Reactor::DefaultLoopCount() { return EnvCount("TCLK_REACTOR_LOOPS", 2); }

Reactor::Reactor(IoHandler on_io, size_t loops) : on_io_(std::move(on_io)) {
  if (loops == 0) {
    loops = 1;
  }
  loops_ = std::vector<Loop>(loops);
  for (Loop& loop : loops_) {
    loop.epoll_fd = epoll_create1(EPOLL_CLOEXEC);
    loop.wake_fd = eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = ~uint64_t{0};  // Wake sentinel; never a connection token.
    epoll_ctl(loop.epoll_fd, EPOLL_CTL_ADD, loop.wake_fd, &ev);
    loop.thread = std::thread([this, &loop] { Run(loop); });
  }
}

Reactor::~Reactor() {
  stopping_.store(true, std::memory_order_release);
  for (Loop& loop : loops_) {
    uint64_t one = 1;
    [[maybe_unused]] ssize_t n = write(loop.wake_fd, &one, sizeof(one));
  }
  for (Loop& loop : loops_) {
    if (loop.thread.joinable()) {
      loop.thread.join();
    }
    close(loop.wake_fd);
    close(loop.epoll_fd);
  }
}

bool Reactor::Add(int fd, uint64_t token) {
  if (stopping_.load(std::memory_order_acquire)) {
    return false;
  }
  size_t target = 0;
  for (size_t i = 1; i < loops_.size(); ++i) {
    if (loops_[i].fds.load(std::memory_order_relaxed) <
        loops_[target].fds.load(std::memory_order_relaxed)) {
      target = i;
    }
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.u64 = token;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (epoll_ctl(loops_[target].epoll_fd, EPOLL_CTL_ADD, fd, &ev) != 0) {
      return false;
    }
    fds_[fd] = FdState{target, token, EPOLLIN};
  }
  loops_[target].fds.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void Reactor::SetWriteInterest(int fd, bool enabled) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = fds_.find(fd);
  if (it == fds_.end()) {
    return;
  }
  uint32_t events =
      enabled ? (it->second.events | EPOLLOUT) : (it->second.events & ~EPOLLOUT);
  if (events == it->second.events) {
    return;
  }
  epoll_event ev{};
  ev.events = events;
  ev.data.u64 = it->second.token;
  if (epoll_ctl(loops_[it->second.loop].epoll_fd, EPOLL_CTL_MOD, fd, &ev) == 0) {
    it->second.events = events;
  }
}

void Reactor::SetReadInterest(int fd, bool enabled) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = fds_.find(fd);
  if (it == fds_.end()) {
    return;
  }
  uint32_t events =
      enabled ? (it->second.events | EPOLLIN) : (it->second.events & ~EPOLLIN);
  if (events == it->second.events) {
    return;
  }
  epoll_event ev{};
  ev.events = events;
  ev.data.u64 = it->second.token;
  if (epoll_ctl(loops_[it->second.loop].epoll_fd, EPOLL_CTL_MOD, fd, &ev) == 0) {
    it->second.events = events;
  }
}

void Reactor::Remove(int fd) {
  size_t loop;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = fds_.find(fd);
    if (it == fds_.end()) {
      return;
    }
    loop = it->second.loop;
    epoll_ctl(loops_[loop].epoll_fd, EPOLL_CTL_DEL, fd, nullptr);
    fds_.erase(it);
  }
  loops_[loop].fds.fetch_sub(1, std::memory_order_relaxed);
}

void Reactor::Run(Loop& loop) {
  constexpr int kMaxEvents = 64;
  epoll_event events[kMaxEvents];
  while (!stopping_.load(std::memory_order_acquire)) {
    int n = epoll_wait(loop.epoll_fd, events, kMaxEvents, /*timeout_ms=*/200);
    if (n < 0) {
      continue;  // EINTR.
    }
    for (int i = 0; i < n; ++i) {
      uint64_t token = events[i].data.u64;
      if (token == ~uint64_t{0}) {
        uint64_t drain;
        while (read(loop.wake_fd, &drain, sizeof(drain)) > 0) {
        }
        continue;
      }
      uint32_t mask = events[i].events;
      // Errors and hangups surface through the normal read/write paths: a
      // read will see EOF/ECONNRESET, a write EPIPE.
      bool readable = (mask & (EPOLLIN | EPOLLERR | EPOLLHUP | EPOLLRDHUP)) != 0;
      bool writable = (mask & (EPOLLOUT | EPOLLERR | EPOLLHUP)) != 0;
      on_io_(token, readable, writable);
    }
  }
}

size_t DispatchExecutor::DefaultWorkerCount() {
  return EnvCount("TCLK_REACTOR_WORKERS", 4);
}

DispatchExecutor::DispatchExecutor(std::function<void(uint64_t token)> run,
                                   size_t workers)
    : run_(std::move(run)) {
  if (workers == 0) {
    workers = 1;
  }
  workers_.reserve(workers);
  for (size_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { Run(); });
  }
}

DispatchExecutor::~DispatchExecutor() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  ready_.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) {
      worker.join();
    }
  }
}

void DispatchExecutor::Schedule(uint64_t token) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(token);
  }
  ready_.notify_one();
}

void DispatchExecutor::Run() {
  while (true) {
    uint64_t token;
    {
      std::unique_lock<std::mutex> lock(mu_);
      ready_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        return;  // stopping_ and drained.
      }
      token = queue_.front();
      queue_.pop_front();
    }
    run_(token);
  }
}

}  // namespace wire
}  // namespace xsim
