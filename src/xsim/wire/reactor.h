// The event-driven half of the reactor WireServer backend.
//
// A real X server is select()/epoll() over one fd per client; this file is
// that loop, split into two small engines the WireServer composes:
//
//   * Reactor -- N event-loop threads, each owning an epoll set.  Fds are
//     assigned to a loop round-robin at Add() time and stay there (no
//     thundering herd; per-fd callbacks are serialized by their loop).
//     Level-triggered, with read/write interest toggled per fd: write
//     interest is armed only while a connection's outbound ring is
//     non-empty, read interest is parked while its inbox is full (flow
//     control).  Loops never block on anything but epoll_wait: handlers
//     must bound their lock holds and never wait on queue space.
//
//   * DispatchExecutor -- a small worker pool that runs protocol dispatch
//     *off* the loops.  Loops assemble frames and schedule the connection;
//     workers drain its inbox through the same DispatchFrame path the
//     threaded backend's reader threads use.  Workers are allowed to block
//     (the backpressure wait on a full outbound ring lives here, exactly as
//     it does on a threaded reader), which is what keeps the two backends'
//     kill semantics identical.
//
// Tokens, not pointers, cross the boundary: the epoll payload is an opaque
// uint64 the handler maps back to its connection under its own lock, so a
// stale event raced by a teardown resolves to "gone" instead of a dangling
// pointer.

#ifndef SRC_XSIM_WIRE_REACTOR_H_
#define SRC_XSIM_WIRE_REACTOR_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

namespace xsim {
namespace wire {

class Reactor {
 public:
  // `on_io(token, readable, writable)` runs on the owning loop thread.
  // EPOLLERR/EPOLLHUP are folded into readable=true (a read will observe the
  // condition) and writable=true when write interest was armed.
  using IoHandler = std::function<void(uint64_t token, bool readable, bool writable)>;

  Reactor(IoHandler on_io, size_t loops);
  ~Reactor();  // Stops and joins every loop.

  Reactor(const Reactor&) = delete;
  Reactor& operator=(const Reactor&) = delete;

  // Registers `fd` (must already be non-blocking) with read interest on the
  // least-loaded loop.  False when the reactor is stopping or epoll_ctl
  // failed.
  bool Add(int fd, uint64_t token);
  // Arms/disarms write or read interest.  Unknown fds are ignored (the
  // teardown path may race a late interest change).
  void SetWriteInterest(int fd, bool enabled);
  void SetReadInterest(int fd, bool enabled);
  // Unregisters `fd`.  Safe to call more than once; the caller still owns
  // and closes the fd.
  void Remove(int fd);

  size_t loop_count() const { return loops_.size(); }

  // How many loop threads a reactor gets by default: TCLK_REACTOR_LOOPS if
  // set, else a small constant -- the whole point is that a handful of
  // loops carries thousands of connections.
  static size_t DefaultLoopCount();

 private:
  struct Loop {
    int epoll_fd = -1;
    int wake_fd = -1;  // eventfd: kicks the loop for shutdown.
    std::thread thread;
    std::atomic<size_t> fds{0};  // Load metric for assignment.
  };

  struct FdState {
    size_t loop = 0;
    uint64_t token = 0;
    uint32_t events = 0;  // Current EPOLLIN/EPOLLOUT interest mask.
  };

  void Run(Loop& loop);

  IoHandler on_io_;
  std::vector<Loop> loops_;
  std::atomic<bool> stopping_{false};
  mutable std::mutex mu_;  // Guards fds_.
  std::unordered_map<int, FdState> fds_;
};

// Runs one dispatch task per scheduled token at a time, on a fixed pool.
// Scheduling is idempotent-by-caller: the WireServer keeps a per-connection
// "scheduled" flag and only calls Schedule() on the false->true edge, so a
// connection is never dispatched by two workers at once (per-connection
// frame order is the protocol's bedrock).
class DispatchExecutor {
 public:
  DispatchExecutor(std::function<void(uint64_t token)> run, size_t workers);
  ~DispatchExecutor();  // Drains the queue, then joins.

  DispatchExecutor(const DispatchExecutor&) = delete;
  DispatchExecutor& operator=(const DispatchExecutor&) = delete;

  void Schedule(uint64_t token);
  size_t worker_count() const { return workers_.size(); }

  // TCLK_REACTOR_WORKERS if set, else a small constant.
  static size_t DefaultWorkerCount();

 private:
  void Run();

  std::function<void(uint64_t token)> run_;
  std::mutex mu_;
  std::condition_variable ready_;
  std::deque<uint64_t> queue_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace wire
}  // namespace xsim

#endif  // SRC_XSIM_WIRE_REACTOR_H_
