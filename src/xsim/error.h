// X protocol errors.
//
// Real Xlib reports request failures asynchronously: the server attaches the
// offending request's sequence number and resource id to an error event and
// the client's error handler sees it some time after the call returned.  The
// reproduction keeps the same shape -- every request a client issues gets a
// sequence number, invalid resource ids generate an XError delivered to the
// owning Display's error handler -- but delivery is synchronous because the
// "connection" is a function call.

#ifndef SRC_XSIM_ERROR_H_
#define SRC_XSIM_ERROR_H_

#include <string_view>

#include "src/xsim/types.h"

namespace xsim {

// Xlib-style error codes for the failures Tk can provoke.
enum class ErrorCode : uint8_t {
  kSuccess = 0,
  kBadValue,           // Parameter out of range (zero-sized window, ...).
  kBadWindow,          // Window id names no live window.
  kBadAtom,            // Atom id is None or was never interned.
  kBadColor,           // Color name/spec the server cannot resolve.
  kBadGC,              // GC id names no graphics context.
  kBadFont,            // Font name the server cannot resolve.
  kBadImplementation,  // The server failed the request (fault injection).
  kBadLength,          // Wire frame structurally damaged (truncated/oversized).
  kBadRequest,         // Wire frame named an opcode the server doesn't speak.
};

// The request categories the server distinguishes for sequence accounting,
// error reporting and fault-injection policies.
enum class RequestType : uint8_t {
  kOther = 0,
  kCreateWindow,
  kDestroyWindow,
  kMapWindow,
  kUnmapWindow,
  kConfigureWindow,
  kSelectInput,
  kChangeProperty,
  kGetProperty,
  kDeleteProperty,
  kInternAtom,
  kAllocColor,
  kLoadFont,
  kCreateCursor,
  kCreateBitmap,
  kCreateGc,
  kChangeGc,
  kDraw,
  kSetInputFocus,
  kSetSelectionOwner,
  kConvertSelection,
  kSendEvent,
  kRequestTypeCount,  // Sentinel; keep last.
};

inline constexpr size_t kRequestTypeCount =
    static_cast<size_t>(RequestType::kRequestTypeCount);

// One error event, as a client's error handler sees it.
struct XError {
  ErrorCode code = ErrorCode::kSuccess;
  uint64_t sequence = 0;     // Sequence number of the failing request.
  XId resource = kNone;      // The offending resource id, if any.
  RequestType request = RequestType::kOther;

  bool operator==(const XError&) const = default;
};

inline const char* ErrorCodeName(ErrorCode code) {
  switch (code) {
    case ErrorCode::kSuccess:
      return "Success";
    case ErrorCode::kBadValue:
      return "BadValue";
    case ErrorCode::kBadWindow:
      return "BadWindow";
    case ErrorCode::kBadAtom:
      return "BadAtom";
    case ErrorCode::kBadColor:
      return "BadColor";
    case ErrorCode::kBadGC:
      return "BadGC";
    case ErrorCode::kBadFont:
      return "BadFont";
    case ErrorCode::kBadImplementation:
      return "BadImplementation";
    case ErrorCode::kBadLength:
      return "BadLength";
    case ErrorCode::kBadRequest:
      return "BadRequest";
  }
  return "?";
}

inline const char* RequestTypeName(RequestType type) {
  switch (type) {
    case RequestType::kOther:
      return "other";
    case RequestType::kCreateWindow:
      return "create-window";
    case RequestType::kDestroyWindow:
      return "destroy-window";
    case RequestType::kMapWindow:
      return "map-window";
    case RequestType::kUnmapWindow:
      return "unmap-window";
    case RequestType::kConfigureWindow:
      return "configure-window";
    case RequestType::kSelectInput:
      return "select-input";
    case RequestType::kChangeProperty:
      return "change-property";
    case RequestType::kGetProperty:
      return "get-property";
    case RequestType::kDeleteProperty:
      return "delete-property";
    case RequestType::kInternAtom:
      return "intern-atom";
    case RequestType::kAllocColor:
      return "alloc-color";
    case RequestType::kLoadFont:
      return "load-font";
    case RequestType::kCreateCursor:
      return "create-cursor";
    case RequestType::kCreateBitmap:
      return "create-bitmap";
    case RequestType::kCreateGc:
      return "create-gc";
    case RequestType::kChangeGc:
      return "change-gc";
    case RequestType::kDraw:
      return "draw";
    case RequestType::kSetInputFocus:
      return "set-input-focus";
    case RequestType::kSetSelectionOwner:
      return "set-selection-owner";
    case RequestType::kConvertSelection:
      return "convert-selection";
    case RequestType::kSendEvent:
      return "send-event";
    case RequestType::kRequestTypeCount:
      break;
  }
  return "?";
}

// Reverse of RequestTypeName; returns kRequestTypeCount for unknown names
// (used by the Tcl-visible fault-injection controls in tests).
RequestType RequestTypeFromName(std::string_view name);

}  // namespace xsim

#endif  // SRC_XSIM_ERROR_H_
