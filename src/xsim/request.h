// The wire format of the simulated X connection: one encoded Request record
// per one-way Server entry point.  Display buffers these in an output queue
// (Xlib-style) and ships them to Server::ApplyBatch on flush; reply-bearing
// queries bypass the queue (after forcing a flush) and are the only requests
// that count as round trips.

#ifndef SRC_XSIM_REQUEST_H_
#define SRC_XSIM_REQUEST_H_

#include <cstdint>
#include <string>

#include "src/xsim/event.h"
#include "src/xsim/types.h"

namespace xsim {

// Graphics-context attributes (XGCValues).  Lives here rather than inside
// Server so an encoded ChangeGc request can carry it by value.
struct GcValues {
  Pixel foreground = 0x000000;
  Pixel background = 0xffffff;
  FontId font = kNone;
  int line_width = 1;

  bool operator==(const GcValues&) const = default;
};

// One opcode per buffered (one-way) Server entry point.  Queries such as
// InternAtom or GetProperty have no opcode: they need a reply, so the client
// flushes and calls the Server directly instead of encoding a record.
enum class RequestOpcode : uint8_t {
  kCreateWindow,
  kDestroyWindow,
  kMapWindow,
  kUnmapWindow,
  kConfigureWindow,
  kRaiseWindow,
  kSelectInput,
  kSetWindowBackground,
  kChangeProperty,
  kDeleteProperty,
  kCreateGc,
  kFreeGc,
  kChangeGc,
  kClearWindow,
  kClearArea,
  kFillRectangle,
  kDrawRectangle,
  kDrawLine,
  kDrawString,
  kSetInputFocus,
  kSetSelectionOwner,
  kConvertSelection,
  kSendSelectionNotify,
  kSendEvent,
  // Connection lifecycle (PR 7).  kSetCloseDownMode carries the mode in
  // `mask`; kReplayMark brackets a session-journal replay (mask 1 = begin,
  // 0 = end) so resource re-creation is treated as an idempotent upsert.
  kSetCloseDownMode,
  kReplayMark,
  // XReparentWindow: moves `window` under the window named by `resource` at
  // position (x, y).  Appended last so earlier opcodes keep their wire
  // values.  This is the canonical cross-shard operation: a batch carrying
  // it locks both the source and destination subtree shards.
  kReparentWindow,
};

// What happens to a client's resources when its connection goes away (the
// X11 SetCloseDownMode triple).  DestroyAll tears everything down at once;
// the Retain modes keep the session (windows, GCs, properties, selections)
// for a kResume reattach -- Temporary until a grace-period reap, Permanent
// until an explicit KillClient.
enum class CloseDownMode : uint8_t {
  kDestroyAll = 0,
  kRetainTemporary = 1,
  kRetainPermanent = 2,
};

inline const char* CloseDownModeName(CloseDownMode mode) {
  switch (mode) {
    case CloseDownMode::kDestroyAll:
      return "destroy-all";
    case CloseDownMode::kRetainTemporary:
      return "retain-temporary";
    case CloseDownMode::kRetainPermanent:
      return "retain-permanent";
  }
  return "?";
}

// A fat encoded request.  Only the fields the opcode's dispatch reads are
// meaningful; the rest stay at their defaults.
struct Request {
  RequestOpcode op = RequestOpcode::kClearWindow;
  // Client-assigned sequence number; deferred errors are tagged with it.
  uint64_t sequence = 0;

  WindowId window = kNone;    // Primary window operand (parent for Create).
  XId resource = kNone;       // Client-allocated id for CreateWindow/CreateGc.
  GcId gc = kNone;
  Atom atom = kAtomNone;      // Property / selection atom.
  Atom target = kAtomNone;
  Atom property = kAtomNone;
  WindowId requestor = kNone;
  Pixel pixel = 0;
  uint32_t mask = 0;

  int x = 0;
  int y = 0;
  int width = 0;
  int height = 0;
  int border_width = 0;
  int x1 = 0;                 // Second endpoint for DrawLine.
  int y1 = 0;
  Rect rect;                  // Fill/Draw/Clear rectangle.

  std::string text;           // DrawString text or ChangeProperty value.
  GcValues gc_values;         // ChangeGc payload.
  Event event;                // SendEvent payload.

  // Field-wise equality; the wire codec serializes every field, so an
  // encode->decode round trip must reproduce the request exactly.
  bool operator==(const Request&) const = default;
};

}  // namespace xsim

#endif  // SRC_XSIM_REQUEST_H_
