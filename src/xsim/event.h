// X event structures delivered by the xsim server to its clients.

#ifndef SRC_XSIM_EVENT_H_
#define SRC_XSIM_EVENT_H_

#include <string>

#include "src/xsim/types.h"

namespace xsim {

enum class EventType {
  kNone = 0,
  kKeyPress,
  kKeyRelease,
  kButtonPress,
  kButtonRelease,
  kMotionNotify,
  kEnterNotify,
  kLeaveNotify,
  kFocusIn,
  kFocusOut,
  kExpose,
  kConfigureNotify,
  kMapNotify,
  kUnmapNotify,
  kDestroyNotify,
  kCreateNotify,
  kPropertyNotify,
  kSelectionClear,
  kSelectionRequest,
  kSelectionNotify,
  kClientMessage,
};

// Human-readable event type name ("KeyPress", "Expose", ...).
const char* EventTypeName(EventType type);

// A single event.  This is a "fat struct" rather than a union: only the
// fields relevant to `type` are meaningful, as in XEvent.
struct Event {
  EventType type = EventType::kNone;
  WindowId window = kNone;  // The window the event is reported relative to.
  Timestamp time = 0;

  // Key/button/motion/crossing fields.
  int x = 0;        // Pointer position relative to `window`.
  int y = 0;
  int x_root = 0;   // Pointer position relative to the root window.
  int y_root = 0;
  uint32_t state = 0;   // Modifier and button mask in effect.
  uint32_t detail = 0;  // Keysym for key events, button number for buttons.

  // Expose / configure fields.
  Rect area;            // Exposed region, or new geometry for configure.
  int border_width = 0;
  int count = 0;        // Remaining exposes in this batch.

  // Property / selection fields.
  Atom atom = kAtomNone;       // Property atom, or selection atom.
  Atom target = kAtomNone;     // Conversion target for selection events.
  Atom property = kAtomNone;   // Reply property for selection events.
  WindowId requestor = kNone;  // Requesting window for SelectionRequest.

  // ClientMessage payload.
  Atom message_type = kAtomNone;
  std::string data;

  // Field-wise equality; the wire codec serializes every field, so an
  // encode->decode round trip must reproduce the event exactly.
  bool operator==(const Event&) const = default;
};

}  // namespace xsim

#endif  // SRC_XSIM_EVENT_H_
