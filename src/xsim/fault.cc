#include "src/xsim/fault.h"

#include <string>

namespace xsim {

RequestType RequestTypeFromName(std::string_view name) {
  for (size_t i = 0; i < kRequestTypeCount; ++i) {
    RequestType type = static_cast<RequestType>(i);
    if (name == RequestTypeName(type)) {
      return type;
    }
  }
  return RequestType::kRequestTypeCount;
}

void FaultInjector::SetPolicy(RequestType type, const Policy& policy) {
  size_t index = static_cast<size_t>(type);
  if (index >= kRequestTypeCount) {
    return;
  }
  policies_[index] = policy;
  RecomputeActive();
}

void FaultInjector::SetPolicyAll(const Policy& policy) {
  catch_all_ = policy;
  RecomputeActive();
}

void FaultInjector::Clear() {
  for (Policy& policy : policies_) {
    policy = Policy();
  }
  catch_all_ = Policy();
  active_ = false;
}

void FaultInjector::RecomputeActive() {
  active_ = !catch_all_.empty();
  for (const Policy& policy : policies_) {
    active_ = active_ || !policy.empty();
  }
}

double FaultInjector::NextUniform() {
  // xorshift64*: deterministic, cheap, good enough for fault scheduling.
  uint64_t x = state_;
  x ^= x >> 12;
  x ^= x << 25;
  x ^= x >> 27;
  state_ = x;
  return static_cast<double>((x * 0x2545f4914f6cdd1dull) >> 11) /
         static_cast<double>(1ull << 53);
}

void FaultInjector::Apply(Policy& policy, Decision* decision) {
  if (policy.fail_next > 0) {
    --policy.fail_next;
    decision->fail = true;
  } else if (policy.fail_probability > 0.0 && NextUniform() < policy.fail_probability) {
    decision->fail = true;
  }
  if (policy.drop_next > 0) {
    --policy.drop_next;
    decision->drop = true;
  } else if (policy.drop_probability > 0.0 && NextUniform() < policy.drop_probability) {
    decision->drop = true;
  }
  decision->delay_ns += policy.delay_ns;
}

FaultInjector::Decision FaultInjector::Decide(RequestType type) {
  Decision decision;
  if (!active_) {
    return decision;
  }
  size_t index = static_cast<size_t>(type);
  if (index < kRequestTypeCount) {
    Apply(policies_[index], &decision);
  }
  Apply(catch_all_, &decision);
  // One-shot counters may have drained: keep active() accurate so the next
  // request takes the fast path again.
  RecomputeActive();
  return decision;
}

}  // namespace xsim
