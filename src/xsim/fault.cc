#include "src/xsim/fault.h"

#include <string>

namespace xsim {

RequestType RequestTypeFromName(std::string_view name) {
  for (size_t i = 0; i < kRequestTypeCount; ++i) {
    RequestType type = static_cast<RequestType>(i);
    if (name == RequestTypeName(type)) {
      return type;
    }
  }
  return RequestType::kRequestTypeCount;
}

void FaultInjector::set_seed(uint64_t seed) {
  std::lock_guard<std::mutex> lock(mu_);
  state_ = seed != 0 ? seed : kDefaultSeed;
}

void FaultInjector::SetPolicy(RequestType type, const Policy& policy) {
  size_t index = static_cast<size_t>(type);
  if (index >= kRequestTypeCount) {
    return;
  }
  std::lock_guard<std::mutex> lock(mu_);
  policies_[index] = policy;
  RecomputeActive();
}

void FaultInjector::SetPolicyAll(const Policy& policy) {
  std::lock_guard<std::mutex> lock(mu_);
  catch_all_ = policy;
  RecomputeActive();
}

void FaultInjector::SetFramePolicy(const Policy& policy) {
  std::lock_guard<std::mutex> lock(mu_);
  frame_policy_ = policy;
  frame_active_.store(!policy.empty(), std::memory_order_relaxed);
}

void FaultInjector::ClearFramePolicy() {
  std::lock_guard<std::mutex> lock(mu_);
  frame_policy_ = Policy();
  frame_active_.store(false, std::memory_order_relaxed);
}

FaultInjector::Policy FaultInjector::frame_policy() const {
  std::lock_guard<std::mutex> lock(mu_);
  return frame_policy_;
}

void FaultInjector::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  for (Policy& policy : policies_) {
    policy = Policy();
  }
  catch_all_ = Policy();
  frame_policy_ = Policy();
  active_.store(false, std::memory_order_relaxed);
  frame_active_.store(false, std::memory_order_relaxed);
}

// Caller holds mu_.
void FaultInjector::RecomputeActive() {
  bool active = !catch_all_.empty();
  for (const Policy& policy : policies_) {
    active = active || !policy.empty();
  }
  active_.store(active, std::memory_order_relaxed);
}

double FaultInjector::NextUniform() {
  // xorshift64*: deterministic, cheap, good enough for fault scheduling.
  uint64_t x = state_;
  x ^= x >> 12;
  x ^= x << 25;
  x ^= x >> 27;
  state_ = x;
  return static_cast<double>((x * 0x2545f4914f6cdd1dull) >> 11) /
         static_cast<double>(1ull << 53);
}

void FaultInjector::Apply(Policy& policy, Decision* decision) {
  if (policy.fail_next > 0) {
    --policy.fail_next;
    decision->fail = true;
  } else if (policy.fail_probability > 0.0 && NextUniform() < policy.fail_probability) {
    decision->fail = true;
  }
  if (policy.drop_next > 0) {
    --policy.drop_next;
    decision->drop = true;
  } else if (policy.drop_probability > 0.0 && NextUniform() < policy.drop_probability) {
    decision->drop = true;
  }
  decision->delay_ns += policy.delay_ns;
}

FaultInjector::Decision FaultInjector::Decide(RequestType type) {
  Decision decision;
  if (!active()) {
    return decision;
  }
  std::lock_guard<std::mutex> lock(mu_);
  size_t index = static_cast<size_t>(type);
  if (index < kRequestTypeCount) {
    Apply(policies_[index], &decision);
  }
  Apply(catch_all_, &decision);
  // One-shot counters may have drained: keep active() accurate so the next
  // request takes the fast path again.
  RecomputeActive();
  return decision;
}

FaultInjector::Decision FaultInjector::DecideFrame() {
  Decision decision;
  if (!frame_active()) {
    return decision;
  }
  std::lock_guard<std::mutex> lock(mu_);
  Apply(frame_policy_, &decision);
  frame_active_.store(!frame_policy_.empty(), std::memory_order_relaxed);
  return decision;
}

}  // namespace xsim
