#include "src/xsim/trace.h"

#include <charconv>
#include <sstream>

namespace xsim {

const char* TraceOutcomeName(TraceOutcome outcome) {
  switch (outcome) {
    case TraceOutcome::kOk:
      return "ok";
    case TraceOutcome::kDelayed:
      return "delayed";
    case TraceOutcome::kDropped:
      return "dropped";
    case TraceOutcome::kFailed:
      return "failed";
    case TraceOutcome::kError:
      return "error";
  }
  return "?";
}

const char* DisconnectReasonName(DisconnectReason reason) {
  switch (reason) {
    case DisconnectReason::kBye:
      return "bye";
    case DisconnectReason::kBackpressure:
      return "backpressure";
    case DisconnectReason::kMalformed:
      return "malformed";
    case DisconnectReason::kIoError:
      return "io";
    case DisconnectReason::kDisconnectReasonCount:
      break;
  }
  return "?";
}

namespace {

constexpr EventType kLastEventType = EventType::kClientMessage;

std::optional<DisconnectReason> DisconnectReasonFromName(std::string_view name) {
  for (size_t i = 0; i < kDisconnectReasonCount; ++i) {
    DisconnectReason reason = static_cast<DisconnectReason>(i);
    if (name == DisconnectReasonName(reason)) {
      return reason;
    }
  }
  return std::nullopt;
}

std::optional<TraceOutcome> TraceOutcomeFromName(std::string_view name) {
  for (uint8_t i = 0; i <= static_cast<uint8_t>(TraceOutcome::kError); ++i) {
    TraceOutcome outcome = static_cast<TraceOutcome>(i);
    if (name == TraceOutcomeName(outcome)) {
      return outcome;
    }
  }
  return std::nullopt;
}

std::optional<EventType> EventTypeFromName(std::string_view name) {
  for (int i = 0; i <= static_cast<int>(kLastEventType); ++i) {
    EventType type = static_cast<EventType>(i);
    if (name == EventTypeName(type)) {
      return type;
    }
  }
  return std::nullopt;
}

}  // namespace

TraceBuffer::TraceBuffer(size_t capacity) : capacity_(capacity == 0 ? 1 : capacity) {
  ring_.resize(capacity_);
}

void TraceBuffer::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  head_ = 0;
  size_ = 0;
  last_request_serial_ = 0;
  for (auto& count : request_counts_) {
    count.store(0, std::memory_order_relaxed);
  }
  total_requests_.store(0, std::memory_order_relaxed);
  total_events_.store(0, std::memory_order_relaxed);
  round_trips_.store(0, std::memory_order_relaxed);
  total_flushes_.store(0, std::memory_order_relaxed);
  total_wire_frames_.store(0, std::memory_order_relaxed);
  total_wire_bytes_.store(0, std::memory_order_relaxed);
  total_recorded_.store(0, std::memory_order_relaxed);
  for (auto& count : disconnect_counts_) {
    count.store(0, std::memory_order_relaxed);
  }
  total_disconnects_.store(0, std::memory_order_relaxed);
}

size_t TraceBuffer::capacity() const {
  std::lock_guard<std::mutex> lock(mu_);
  return capacity_;
}

size_t TraceBuffer::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return size_;
}

void TraceBuffer::set_capacity(size_t capacity) {
  std::lock_guard<std::mutex> lock(mu_);
  capacity_ = capacity == 0 ? 1 : capacity;
  ring_.assign(capacity_, TraceRecord());
  head_ = 0;
  size_ = 0;
  last_request_serial_ = 0;
}

void TraceBuffer::SetRequestFilter(const std::vector<RequestType>& types) {
  uint32_t mask = 0;
  for (RequestType type : types) {
    if (type != RequestType::kRequestTypeCount) {
      mask |= 1u << static_cast<size_t>(type);
    }
  }
  filter_mask_.store(mask, std::memory_order_relaxed);
}

std::vector<RequestType> TraceBuffer::RequestFilter() const {
  uint32_t mask = filter_mask_.load(std::memory_order_relaxed);
  std::vector<RequestType> types;
  for (size_t i = 0; i < kRequestTypeCount; ++i) {
    if ((mask & (1u << i)) != 0) {
      types.push_back(static_cast<RequestType>(i));
    }
  }
  return types;
}

// Caller holds mu_.
void TraceBuffer::Append(const TraceRecord& record, bool is_request) {
  ring_[head_] = record;
  if (is_request) {
    last_request_slot_ = head_;
    last_request_serial_ = record.serial;
  }
  head_ = (head_ + 1) % capacity_;
  if (size_ < capacity_) {
    ++size_;
  }
  total_recorded_.fetch_add(1, std::memory_order_relaxed);
}

void TraceBuffer::RecordRequest(ClientId client, RequestType type, XId resource,
                                uint64_t duration_ns, TraceOutcome outcome) {
  if (!active()) {
    return;
  }
  request_counts_[static_cast<size_t>(type)].fetch_add(1, std::memory_order_relaxed);
  total_requests_.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(mu_);
  TraceRecord record;
  record.serial = next_serial_++;
  record.client = client;
  record.request = type;
  record.resource = resource;
  record.duration_ns = duration_ns;
  record.outcome = outcome;
  if (!FilterAccepts(type)) {
    // Counted above but not retained; invalidate MarkLastRequest* targets so
    // they cannot touch an older record.
    last_request_serial_ = 0;
    return;
  }
  Append(record, /*is_request=*/true);
}

void TraceBuffer::RecordEvent(ClientId client, EventType type, WindowId window) {
  if (!active()) {
    return;
  }
  total_events_.fetch_add(1, std::memory_order_relaxed);
  if (!record_events() || HasRequestFilter()) {
    return;  // A request filter implies a request-only trace.
  }
  std::lock_guard<std::mutex> lock(mu_);
  TraceRecord record;
  record.serial = next_serial_++;
  record.client = client;
  record.is_event = true;
  record.event = type;
  record.resource = window;
  Append(record, /*is_request=*/false);
}

void TraceBuffer::RecordFlush(ClientId client, size_t batch_size, uint64_t duration_ns) {
  if (!active()) {
    return;
  }
  total_flushes_.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(mu_);
  TraceRecord record;
  record.serial = next_serial_++;
  record.client = client;
  record.is_flush = true;
  record.batch_size = static_cast<uint32_t>(batch_size);
  record.duration_ns = duration_ns;
  Append(record, /*is_request=*/false);
}

void TraceBuffer::RecordWireTraffic(uint64_t frames, uint64_t bytes) {
  if (!active()) {
    return;
  }
  total_wire_frames_.fetch_add(frames, std::memory_order_relaxed);
  total_wire_bytes_.fetch_add(bytes, std::memory_order_relaxed);
}

void TraceBuffer::RecordDisconnect(ClientId client, DisconnectReason reason) {
  // Cumulative counts are unconditional (see header): summaries must see
  // every disconnect, recorded or not.
  disconnect_counts_[static_cast<size_t>(reason)].fetch_add(1, std::memory_order_relaxed);
  total_disconnects_.fetch_add(1, std::memory_order_relaxed);
  if (!active()) {
    return;
  }
  std::lock_guard<std::mutex> lock(mu_);
  TraceRecord record;
  record.serial = next_serial_++;
  record.client = client;
  record.is_disconnect = true;
  record.disconnect = reason;
  Append(record, /*is_request=*/false);
}

void TraceBuffer::MarkLastRequestRoundTrip(uint64_t extra_ns) {
  if (!active()) {
    return;
  }
  round_trips_.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(mu_);
  if (last_request_serial_ != 0 && ring_[last_request_slot_].serial == last_request_serial_) {
    ring_[last_request_slot_].round_trip = true;
    ring_[last_request_slot_].duration_ns += extra_ns;
  }
}

void TraceBuffer::MarkLastRequestError() {
  if (!active()) {
    return;
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (last_request_serial_ != 0 && ring_[last_request_slot_].serial == last_request_serial_) {
    ring_[last_request_slot_].outcome = TraceOutcome::kError;
  }
}

std::vector<TraceRecord> TraceBuffer::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<TraceRecord> out;
  out.reserve(size_);
  size_t start = (head_ + capacity_ - size_) % capacity_;
  for (size_t i = 0; i < size_; ++i) {
    out.push_back(ring_[(start + i) % capacity_]);
  }
  return out;
}

std::string TraceBuffer::ToJsonl() const {
  std::ostringstream out;
  for (const TraceRecord& record : Snapshot()) {
    const char* kind = record.is_disconnect
                           ? "disconnect"
                           : record.is_flush ? "flush"
                                             : record.is_event ? "event" : "request";
    const char* type = record.is_disconnect
                           ? DisconnectReasonName(record.disconnect)
                           : record.is_flush
                                 ? "flush"
                                 : record.is_event ? EventTypeName(record.event)
                                                   : RequestTypeName(record.request);
    out << "{\"serial\":" << record.serial << ",\"kind\":\"" << kind
        << "\",\"client\":" << record.client << ",\"type\":\"" << type
        << "\",\"resource\":" << record.resource << ",\"duration_ns\":" << record.duration_ns
        << ",\"round_trip\":" << (record.round_trip ? "true" : "false");
    if (record.is_flush) {
      out << ",\"batch_size\":" << record.batch_size;
    }
    out << ",\"outcome\":\"" << TraceOutcomeName(record.outcome) << "\"}\n";
  }
  return out.str();
}

namespace {

// Minimal field extraction for the flat, known-key objects ToJsonl writes.
// Returns the raw value text after `"key":` up to the next ',' or '}'
// (quotes stripped for string values).
std::optional<std::string> JsonField(const std::string& line, const std::string& key) {
  std::string needle = "\"" + key + "\":";
  size_t at = line.find(needle);
  if (at == std::string::npos) {
    return std::nullopt;
  }
  size_t start = at + needle.size();
  if (start < line.size() && line[start] == '"') {
    size_t end = line.find('"', start + 1);
    if (end == std::string::npos) {
      return std::nullopt;
    }
    return line.substr(start + 1, end - start - 1);
  }
  size_t end = start;
  while (end < line.size() && line[end] != ',' && line[end] != '}') {
    ++end;
  }
  return line.substr(start, end - start);
}

std::optional<uint64_t> JsonUint(const std::string& line, const std::string& key) {
  std::optional<std::string> raw = JsonField(line, key);
  if (!raw) {
    return std::nullopt;
  }
  uint64_t value = 0;
  auto [ptr, ec] = std::from_chars(raw->data(), raw->data() + raw->size(), value);
  if (ec != std::errc() || ptr != raw->data() + raw->size()) {
    return std::nullopt;
  }
  return value;
}

}  // namespace

std::optional<std::vector<TraceRecord>> TraceBuffer::FromJsonl(const std::string& text,
                                                               std::string* error) {
  std::vector<TraceRecord> records;
  std::istringstream in(text);
  std::string line;
  int line_number = 0;
  auto fail = [error, &line_number](const std::string& what) {
    if (error != nullptr) {
      *error = "line " + std::to_string(line_number) + ": " + what;
    }
    return std::nullopt;
  };
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty()) {
      continue;
    }
    TraceRecord record;
    std::optional<uint64_t> serial = JsonUint(line, "serial");
    std::optional<std::string> kind = JsonField(line, "kind");
    std::optional<uint64_t> client = JsonUint(line, "client");
    std::optional<std::string> type = JsonField(line, "type");
    std::optional<uint64_t> resource = JsonUint(line, "resource");
    std::optional<uint64_t> duration = JsonUint(line, "duration_ns");
    std::optional<std::string> round_trip = JsonField(line, "round_trip");
    std::optional<std::string> outcome_name = JsonField(line, "outcome");
    if (!serial || !kind || !client || !type || !resource || !duration || !round_trip ||
        !outcome_name) {
      return fail("missing or malformed field");
    }
    record.serial = *serial;
    record.client = static_cast<ClientId>(*client);
    record.resource = static_cast<XId>(*resource);
    record.duration_ns = *duration;
    record.round_trip = *round_trip == "true";
    if (*kind == "disconnect") {
      record.is_disconnect = true;
      std::optional<DisconnectReason> reason = DisconnectReasonFromName(*type);
      if (!reason) {
        return fail("unknown disconnect reason \"" + *type + "\"");
      }
      record.disconnect = *reason;
    } else if (*kind == "event") {
      record.is_event = true;
      std::optional<EventType> event = EventTypeFromName(*type);
      if (!event) {
        return fail("unknown event type \"" + *type + "\"");
      }
      record.event = *event;
    } else if (*kind == "flush") {
      record.is_flush = true;
      std::optional<uint64_t> batch = JsonUint(line, "batch_size");
      if (!batch) {
        return fail("flush record missing batch_size");
      }
      record.batch_size = static_cast<uint32_t>(*batch);
    } else if (*kind == "request") {
      RequestType request = RequestTypeFromName(*type);
      if (request == RequestType::kRequestTypeCount) {
        return fail("unknown request type \"" + *type + "\"");
      }
      record.request = request;
    } else {
      return fail("unknown kind \"" + *kind + "\"");
    }
    std::optional<TraceOutcome> outcome = TraceOutcomeFromName(*outcome_name);
    if (!outcome) {
      return fail("unknown outcome \"" + *outcome_name + "\"");
    }
    record.outcome = *outcome;
    records.push_back(record);
  }
  return records;
}

}  // namespace xsim
