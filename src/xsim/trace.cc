#include "src/xsim/trace.h"

#include <charconv>
#include <sstream>

namespace xsim {

const char* TraceOutcomeName(TraceOutcome outcome) {
  switch (outcome) {
    case TraceOutcome::kOk:
      return "ok";
    case TraceOutcome::kDelayed:
      return "delayed";
    case TraceOutcome::kDropped:
      return "dropped";
    case TraceOutcome::kFailed:
      return "failed";
    case TraceOutcome::kError:
      return "error";
  }
  return "?";
}

namespace {

constexpr EventType kLastEventType = EventType::kClientMessage;

std::optional<TraceOutcome> TraceOutcomeFromName(std::string_view name) {
  for (uint8_t i = 0; i <= static_cast<uint8_t>(TraceOutcome::kError); ++i) {
    TraceOutcome outcome = static_cast<TraceOutcome>(i);
    if (name == TraceOutcomeName(outcome)) {
      return outcome;
    }
  }
  return std::nullopt;
}

std::optional<EventType> EventTypeFromName(std::string_view name) {
  for (int i = 0; i <= static_cast<int>(kLastEventType); ++i) {
    EventType type = static_cast<EventType>(i);
    if (name == EventTypeName(type)) {
      return type;
    }
  }
  return std::nullopt;
}

}  // namespace

TraceBuffer::TraceBuffer(size_t capacity) : capacity_(capacity == 0 ? 1 : capacity) {
  ring_.resize(capacity_);
}

void TraceBuffer::Clear() {
  head_ = 0;
  size_ = 0;
  last_request_serial_ = 0;
  request_counts_.fill(0);
  total_requests_ = 0;
  total_events_ = 0;
  round_trips_ = 0;
  total_flushes_ = 0;
  total_recorded_ = 0;
}

void TraceBuffer::set_capacity(size_t capacity) {
  capacity_ = capacity == 0 ? 1 : capacity;
  ring_.assign(capacity_, TraceRecord());
  head_ = 0;
  size_ = 0;
  last_request_serial_ = 0;
}

void TraceBuffer::SetRequestFilter(const std::vector<RequestType>& types) {
  filter_mask_ = 0;
  for (RequestType type : types) {
    if (type != RequestType::kRequestTypeCount) {
      filter_mask_ |= 1u << static_cast<size_t>(type);
    }
  }
}

std::vector<RequestType> TraceBuffer::RequestFilter() const {
  std::vector<RequestType> types;
  for (size_t i = 0; i < kRequestTypeCount; ++i) {
    if ((filter_mask_ & (1u << i)) != 0) {
      types.push_back(static_cast<RequestType>(i));
    }
  }
  return types;
}

void TraceBuffer::Append(const TraceRecord& record, bool is_request) {
  ring_[head_] = record;
  if (is_request) {
    last_request_slot_ = head_;
    last_request_serial_ = record.serial;
  }
  head_ = (head_ + 1) % capacity_;
  if (size_ < capacity_) {
    ++size_;
  }
  ++total_recorded_;
}

void TraceBuffer::RecordRequest(ClientId client, RequestType type, XId resource,
                                uint64_t duration_ns, TraceOutcome outcome) {
  if (!active_) {
    return;
  }
  ++request_counts_[static_cast<size_t>(type)];
  ++total_requests_;
  TraceRecord record;
  record.serial = next_serial_++;
  record.client = client;
  record.request = type;
  record.resource = resource;
  record.duration_ns = duration_ns;
  record.outcome = outcome;
  if (!FilterAccepts(type)) {
    // Counted above but not retained; invalidate MarkLastRequest* targets so
    // they cannot touch an older record.
    last_request_serial_ = 0;
    return;
  }
  Append(record, /*is_request=*/true);
}

void TraceBuffer::RecordEvent(ClientId client, EventType type, WindowId window) {
  if (!active_) {
    return;
  }
  ++total_events_;
  if (!record_events_ || HasRequestFilter()) {
    return;  // A request filter implies a request-only trace.
  }
  TraceRecord record;
  record.serial = next_serial_++;
  record.client = client;
  record.is_event = true;
  record.event = type;
  record.resource = window;
  Append(record, /*is_request=*/false);
}

void TraceBuffer::RecordFlush(ClientId client, size_t batch_size) {
  if (!active_) {
    return;
  }
  ++total_flushes_;
  TraceRecord record;
  record.serial = next_serial_++;
  record.client = client;
  record.is_flush = true;
  record.batch_size = static_cast<uint32_t>(batch_size);
  Append(record, /*is_request=*/false);
}

void TraceBuffer::MarkLastRequestRoundTrip(uint64_t extra_ns) {
  if (!active_) {
    return;
  }
  ++round_trips_;
  if (last_request_serial_ != 0 && ring_[last_request_slot_].serial == last_request_serial_) {
    ring_[last_request_slot_].round_trip = true;
    ring_[last_request_slot_].duration_ns += extra_ns;
  }
}

void TraceBuffer::MarkLastRequestError() {
  if (!active_) {
    return;
  }
  if (last_request_serial_ != 0 && ring_[last_request_slot_].serial == last_request_serial_) {
    ring_[last_request_slot_].outcome = TraceOutcome::kError;
  }
}

std::vector<TraceRecord> TraceBuffer::Snapshot() const {
  std::vector<TraceRecord> out;
  out.reserve(size_);
  size_t start = (head_ + capacity_ - size_) % capacity_;
  for (size_t i = 0; i < size_; ++i) {
    out.push_back(ring_[(start + i) % capacity_]);
  }
  return out;
}

std::string TraceBuffer::ToJsonl() const {
  std::ostringstream out;
  for (const TraceRecord& record : Snapshot()) {
    const char* kind = record.is_flush ? "flush" : record.is_event ? "event" : "request";
    const char* type = record.is_flush
                           ? "flush"
                           : record.is_event ? EventTypeName(record.event)
                                             : RequestTypeName(record.request);
    out << "{\"serial\":" << record.serial << ",\"kind\":\"" << kind
        << "\",\"client\":" << record.client << ",\"type\":\"" << type
        << "\",\"resource\":" << record.resource << ",\"duration_ns\":" << record.duration_ns
        << ",\"round_trip\":" << (record.round_trip ? "true" : "false");
    if (record.is_flush) {
      out << ",\"batch_size\":" << record.batch_size;
    }
    out << ",\"outcome\":\"" << TraceOutcomeName(record.outcome) << "\"}\n";
  }
  return out.str();
}

namespace {

// Minimal field extraction for the flat, known-key objects ToJsonl writes.
// Returns the raw value text after `"key":` up to the next ',' or '}'
// (quotes stripped for string values).
std::optional<std::string> JsonField(const std::string& line, const std::string& key) {
  std::string needle = "\"" + key + "\":";
  size_t at = line.find(needle);
  if (at == std::string::npos) {
    return std::nullopt;
  }
  size_t start = at + needle.size();
  if (start < line.size() && line[start] == '"') {
    size_t end = line.find('"', start + 1);
    if (end == std::string::npos) {
      return std::nullopt;
    }
    return line.substr(start + 1, end - start - 1);
  }
  size_t end = start;
  while (end < line.size() && line[end] != ',' && line[end] != '}') {
    ++end;
  }
  return line.substr(start, end - start);
}

std::optional<uint64_t> JsonUint(const std::string& line, const std::string& key) {
  std::optional<std::string> raw = JsonField(line, key);
  if (!raw) {
    return std::nullopt;
  }
  uint64_t value = 0;
  auto [ptr, ec] = std::from_chars(raw->data(), raw->data() + raw->size(), value);
  if (ec != std::errc() || ptr != raw->data() + raw->size()) {
    return std::nullopt;
  }
  return value;
}

}  // namespace

std::optional<std::vector<TraceRecord>> TraceBuffer::FromJsonl(const std::string& text,
                                                               std::string* error) {
  std::vector<TraceRecord> records;
  std::istringstream in(text);
  std::string line;
  int line_number = 0;
  auto fail = [error, &line_number](const std::string& what) {
    if (error != nullptr) {
      *error = "line " + std::to_string(line_number) + ": " + what;
    }
    return std::nullopt;
  };
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty()) {
      continue;
    }
    TraceRecord record;
    std::optional<uint64_t> serial = JsonUint(line, "serial");
    std::optional<std::string> kind = JsonField(line, "kind");
    std::optional<uint64_t> client = JsonUint(line, "client");
    std::optional<std::string> type = JsonField(line, "type");
    std::optional<uint64_t> resource = JsonUint(line, "resource");
    std::optional<uint64_t> duration = JsonUint(line, "duration_ns");
    std::optional<std::string> round_trip = JsonField(line, "round_trip");
    std::optional<std::string> outcome_name = JsonField(line, "outcome");
    if (!serial || !kind || !client || !type || !resource || !duration || !round_trip ||
        !outcome_name) {
      return fail("missing or malformed field");
    }
    record.serial = *serial;
    record.client = static_cast<ClientId>(*client);
    record.resource = static_cast<XId>(*resource);
    record.duration_ns = *duration;
    record.round_trip = *round_trip == "true";
    if (*kind == "event") {
      record.is_event = true;
      std::optional<EventType> event = EventTypeFromName(*type);
      if (!event) {
        return fail("unknown event type \"" + *type + "\"");
      }
      record.event = *event;
    } else if (*kind == "flush") {
      record.is_flush = true;
      std::optional<uint64_t> batch = JsonUint(line, "batch_size");
      if (!batch) {
        return fail("flush record missing batch_size");
      }
      record.batch_size = static_cast<uint32_t>(*batch);
    } else if (*kind == "request") {
      RequestType request = RequestTypeFromName(*type);
      if (request == RequestType::kRequestTypeCount) {
        return fail("unknown request type \"" + *type + "\"");
      }
      record.request = request;
    } else {
      return fail("unknown kind \"" + *kind + "\"");
    }
    std::optional<TraceOutcome> outcome = TraceOutcomeFromName(*outcome_name);
    if (!outcome) {
      return fail("unknown outcome \"" + *outcome_name + "\"");
    }
    record.outcome = *outcome;
    records.push_back(record);
  }
  return records;
}

}  // namespace xsim
