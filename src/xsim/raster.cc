#include "src/xsim/raster.h"

#include <cmath>
#include <cstdlib>

namespace xsim {

Raster::Raster(int width, int height, Pixel fill)
    : width_(width), height_(height), pixels_(static_cast<size_t>(width) * height, fill) {}

Pixel Raster::At(int x, int y) const {
  if (x < 0 || y < 0 || x >= width_ || y >= height_) {
    return 0;
  }
  return pixels_[static_cast<size_t>(y) * width_ + x];
}

void Raster::Set(int x, int y, Pixel pixel, const Rect& clip) {
  if (x < 0 || y < 0 || x >= width_ || y >= height_ || !clip.Contains(x, y)) {
    return;
  }
  pixels_[static_cast<size_t>(y) * width_ + x] = pixel;
}

void Raster::FillRect(const Rect& rect, Pixel pixel, const Rect& clip) {
  Rect bounded;
  bounded.x = 0;
  bounded.y = 0;
  bounded.width = width_;
  bounded.height = height_;
  Rect target = rect.Intersection(clip).Intersection(bounded);
  for (int y = target.y; y < target.y + target.height; ++y) {
    size_t row = static_cast<size_t>(y) * width_;
    for (int x = target.x; x < target.x + target.width; ++x) {
      pixels_[row + x] = pixel;
    }
  }
}

void Raster::DrawRectOutline(const Rect& rect, Pixel pixel, const Rect& clip) {
  for (int x = rect.x; x < rect.x + rect.width; ++x) {
    Set(x, rect.y, pixel, clip);
    Set(x, rect.y + rect.height - 1, pixel, clip);
  }
  for (int y = rect.y; y < rect.y + rect.height; ++y) {
    Set(rect.x, y, pixel, clip);
    Set(rect.x + rect.width - 1, y, pixel, clip);
  }
}

void Raster::DrawLine(int x0, int y0, int x1, int y1, Pixel pixel, const Rect& clip) {
  int dx = std::abs(x1 - x0);
  int dy = -std::abs(y1 - y0);
  int sx = x0 < x1 ? 1 : -1;
  int sy = y0 < y1 ? 1 : -1;
  int err = dx + dy;
  while (true) {
    Set(x0, y0, pixel, clip);
    if (x0 == x1 && y0 == y1) {
      break;
    }
    int e2 = 2 * err;
    if (e2 >= dy) {
      err += dy;
      x0 += sx;
    }
    if (e2 <= dx) {
      err += dx;
      y0 += sy;
    }
  }
}

void Raster::DrawTextBlock(int x, int baseline_y, int char_width, int ascent, int descent,
                           int char_count, Pixel pixel, const Rect& clip) {
  // Leave a 1-pixel gap between character cells so adjacent glyph blocks are
  // distinguishable in dumps.
  for (int i = 0; i < char_count; ++i) {
    Rect cell;
    cell.x = x + i * char_width;
    cell.y = baseline_y - ascent + 1;
    cell.width = char_width > 1 ? char_width - 1 : 1;
    cell.height = ascent + descent - 2;
    if (cell.height < 1) {
      cell.height = 1;
    }
    FillRect(cell, pixel, clip);
  }
}

std::string Raster::ToPpm() const {
  std::string out = "P6\n" + std::to_string(width_) + " " + std::to_string(height_) + "\n255\n";
  out.reserve(out.size() + pixels_.size() * 3);
  for (Pixel p : pixels_) {
    out.push_back(static_cast<char>((p >> 16) & 0xff));
    out.push_back(static_cast<char>((p >> 8) & 0xff));
    out.push_back(static_cast<char>(p & 0xff));
  }
  return out;
}

}  // namespace xsim
