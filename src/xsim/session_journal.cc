#include "src/xsim/session_journal.h"

#include <algorithm>

namespace xsim {

void SessionJournal::Note(const Request& request) {
  ++noted_;
  switch (request.op) {
    case RequestOpcode::kCreateWindow: {
      WindowState state;
      state.parent = request.window;
      state.x = request.x;
      state.y = request.y;
      state.width = request.width;
      state.height = request.height;
      state.border_width = request.border_width;
      if (windows_.emplace(request.resource, state).second) {
        window_order_.push_back(request.resource);
      }
      break;
    }
    case RequestOpcode::kDestroyWindow:
      EraseWindowTree(request.window);
      break;
    case RequestOpcode::kMapWindow:
      if (auto it = windows_.find(request.window); it != windows_.end()) {
        it->second.mapped = true;
      }
      break;
    case RequestOpcode::kUnmapWindow:
      if (auto it = windows_.find(request.window); it != windows_.end()) {
        it->second.mapped = false;
      }
      break;
    case RequestOpcode::kConfigureWindow:
      if (auto it = windows_.find(request.window); it != windows_.end()) {
        // The -1 convention mirrors Display::ResizeWindow: negative fields
        // mean "leave alone".
        if (request.x >= 0) {
          it->second.x = request.x;
        }
        if (request.y >= 0) {
          it->second.y = request.y;
        }
        if (request.width >= 0) {
          it->second.width = request.width;
        }
        if (request.height >= 0) {
          it->second.height = request.height;
        }
        if (request.border_width >= 0) {
          it->second.border_width = request.border_width;
        }
      }
      break;
    case RequestOpcode::kRaiseWindow:
      if (Knows(request.window)) {
        raise_order_.erase(
            std::remove(raise_order_.begin(), raise_order_.end(), request.window),
            raise_order_.end());
        raise_order_.push_back(request.window);
      }
      break;
    case RequestOpcode::kSelectInput:
      if (auto it = windows_.find(request.window); it != windows_.end()) {
        it->second.has_mask = true;
        it->second.mask = request.mask;
      }
      break;
    case RequestOpcode::kSetWindowBackground:
      if (auto it = windows_.find(request.window); it != windows_.end()) {
        it->second.has_background = true;
        it->second.background = request.pixel;
      }
      break;
    case RequestOpcode::kCreateGc:
      if (gcs_.emplace(request.resource, GcState()).second) {
        gc_order_.push_back(request.resource);
      }
      break;
    case RequestOpcode::kFreeGc:
      if (gcs_.erase(request.gc) != 0) {
        gc_order_.erase(std::remove(gc_order_.begin(), gc_order_.end(), request.gc),
                        gc_order_.end());
      }
      break;
    case RequestOpcode::kChangeGc:
      if (auto it = gcs_.find(request.gc); it != gcs_.end()) {
        it->second.changed = true;
        it->second.values = request.gc_values;
      }
      break;
    case RequestOpcode::kChangeProperty:
      properties_[{request.window, request.atom}] = request.text;
      break;
    case RequestOpcode::kDeleteProperty:
      properties_.erase({request.window, request.atom});
      break;
    case RequestOpcode::kSetSelectionOwner:
      if (request.window == kNone) {
        selections_.erase(request.atom);
      } else {
        selections_[request.atom] = request.window;
      }
      break;
    case RequestOpcode::kSetInputFocus:
      has_focus_ = true;
      focus_ = request.window;
      break;
    case RequestOpcode::kSetCloseDownMode:
      has_close_down_ = true;
      close_down_ = request.mask;
      break;
    case RequestOpcode::kReparentWindow:
      if (auto it = windows_.find(request.window); it != windows_.end()) {
        it->second.parent = request.resource;
        it->second.x = request.x;
        it->second.y = request.y;
        // A reparent can point at a window created *after* this one, which
        // would break window_order_'s parents-before-children guarantee at
        // replay time; restore it topologically (stable, so unrelated
        // windows keep creation order).
        RestoreTopologicalOrder();
      }
      break;
    // Pixels and transient traffic: regenerated or irrelevant after replay.
    case RequestOpcode::kClearWindow:
    case RequestOpcode::kClearArea:
    case RequestOpcode::kFillRectangle:
    case RequestOpcode::kDrawRectangle:
    case RequestOpcode::kDrawLine:
    case RequestOpcode::kDrawString:
    case RequestOpcode::kConvertSelection:
    case RequestOpcode::kSendSelectionNotify:
    case RequestOpcode::kSendEvent:
    case RequestOpcode::kReplayMark:
      break;
  }
}

void SessionJournal::RestoreTopologicalOrder() {
  // Stable Kahn pass: keep appending (in current order) every window whose
  // parent is either foreign to the journal or already placed.  A cycle is
  // impossible server-side (reparent rejects it), but if a malformed journal
  // ever produced one the remainder is appended as-is rather than looping.
  std::vector<WindowId> ordered;
  ordered.reserve(window_order_.size());
  std::map<WindowId, bool> placed;
  std::vector<WindowId> pending = window_order_;
  while (!pending.empty()) {
    size_t before = ordered.size();
    std::vector<WindowId> next;
    for (WindowId id : pending) {
      auto it = windows_.find(id);
      WindowId parent = it == windows_.end() ? kNone : it->second.parent;
      if (!Knows(parent) || placed[parent]) {
        ordered.push_back(id);
        placed[id] = true;
      } else {
        next.push_back(id);
      }
    }
    if (ordered.size() == before) {
      ordered.insert(ordered.end(), next.begin(), next.end());
      break;
    }
    pending = std::move(next);
  }
  window_order_ = std::move(ordered);
}

void SessionJournal::EraseWindowTree(WindowId window) {
  if (!Knows(window)) {
    return;
  }
  // Children first (the server destroys subtrees; keep the journal's view in
  // step).  window_order_ guarantees parents precede children, so one reverse
  // sweep collecting descendants terminates.
  std::vector<WindowId> doomed{window};
  for (size_t i = 0; i < doomed.size(); ++i) {
    for (const auto& [id, state] : windows_) {
      if (state.parent == doomed[i] && std::find(doomed.begin(), doomed.end(), id) == doomed.end()) {
        doomed.push_back(id);
      }
    }
  }
  for (WindowId id : doomed) {
    windows_.erase(id);
    window_order_.erase(std::remove(window_order_.begin(), window_order_.end(), id),
                        window_order_.end());
    raise_order_.erase(std::remove(raise_order_.begin(), raise_order_.end(), id),
                       raise_order_.end());
    for (auto it = properties_.begin(); it != properties_.end();) {
      it = it->first.first == id ? properties_.erase(it) : std::next(it);
    }
    for (auto it = selections_.begin(); it != selections_.end();) {
      it = it->second == id ? selections_.erase(it) : std::next(it);
    }
    if (has_focus_ && focus_ == id) {
      has_focus_ = false;
    }
  }
}

std::vector<Request> SessionJournal::ReplayBatch(WindowId root) const {
  std::vector<Request> batch;
  auto known_or_root = [&](WindowId w) { return w == root || Knows(w); };

  // 0. Close-down mode first: if the replay itself is interrupted by another
  //    drop, the half-rebuilt session is already retained under the right
  //    mode.
  if (has_close_down_) {
    Request mode;
    mode.op = RequestOpcode::kSetCloseDownMode;
    mode.mask = close_down_;
    batch.push_back(std::move(mode));
  }

  // 1. Windows, creation order (parents first), each followed by the
  //    attributes that must be set before the map generates an expose.
  for (WindowId id : window_order_) {
    const WindowState& state = windows_.at(id);
    Request create;
    create.op = RequestOpcode::kCreateWindow;
    create.window = state.parent;
    create.resource = id;
    create.x = state.x;
    create.y = state.y;
    create.width = state.width;
    create.height = state.height;
    create.border_width = state.border_width;
    batch.push_back(std::move(create));
    if (state.has_background) {
      Request background;
      background.op = RequestOpcode::kSetWindowBackground;
      background.window = id;
      background.pixel = state.background;
      batch.push_back(std::move(background));
    }
    if (state.has_mask) {
      Request select;
      select.op = RequestOpcode::kSelectInput;
      select.window = id;
      select.mask = state.mask;
      batch.push_back(std::move(select));
    }
  }
  // 2. Maps, creation order, then the explicit raises on top.
  for (WindowId id : window_order_) {
    if (windows_.at(id).mapped) {
      Request map;
      map.op = RequestOpcode::kMapWindow;
      map.window = id;
      batch.push_back(std::move(map));
    }
  }
  for (WindowId id : raise_order_) {
    Request raise;
    raise.op = RequestOpcode::kRaiseWindow;
    raise.window = id;
    batch.push_back(std::move(raise));
  }
  // 3. GCs and their accumulated values.
  for (GcId id : gc_order_) {
    const GcState& state = gcs_.at(id);
    Request create;
    create.op = RequestOpcode::kCreateGc;
    create.resource = id;
    batch.push_back(std::move(create));
    if (state.changed) {
      Request change;
      change.op = RequestOpcode::kChangeGc;
      change.gc = id;
      change.gc_values = state.values;
      batch.push_back(std::move(change));
    }
  }
  // 4. Properties and selection ownership (windows all exist by now).  Skip
  //    entries on windows the journal does not know (another client's window
  //    may be gone after the bounce; replaying it would just raise BadWindow).
  for (const auto& [key, value] : properties_) {
    if (!known_or_root(key.first)) {
      continue;
    }
    Request property;
    property.op = RequestOpcode::kChangeProperty;
    property.window = key.first;
    property.atom = key.second;
    property.text = value;
    batch.push_back(std::move(property));
  }
  for (const auto& [selection, owner] : selections_) {
    if (!known_or_root(owner)) {
      continue;
    }
    Request own;
    own.op = RequestOpcode::kSetSelectionOwner;
    own.atom = selection;
    own.window = owner;
    batch.push_back(std::move(own));
  }
  if (has_focus_ && known_or_root(focus_)) {
    Request focus;
    focus.op = RequestOpcode::kSetInputFocus;
    focus.window = focus_;
    batch.push_back(std::move(focus));
  }
  return batch;
}

void SessionJournal::Clear() {
  windows_.clear();
  window_order_.clear();
  raise_order_.clear();
  gcs_.clear();
  gc_order_.clear();
  properties_.clear();
  selections_.clear();
  has_focus_ = false;
  focus_ = kNone;
  has_close_down_ = false;
  close_down_ = 0;
}

}  // namespace xsim
