// Core protocol types for the xsim X11 server simulator.
//
// xsim stands in for the X11R4 server + Xlib of the paper's environment: an
// in-process server that implements the protocol-visible behaviour Tk
// depends on (window tree, properties, selections, resource allocation,
// events) so that the toolkit logic runs against the same abstractions it
// would against a real display.

#ifndef SRC_XSIM_TYPES_H_
#define SRC_XSIM_TYPES_H_

#include <cstdint>

namespace xsim {

using XId = uint32_t;
using WindowId = XId;
using FontId = XId;
using GcId = XId;
using CursorId = XId;
using BitmapId = XId;
using Atom = uint32_t;
using Pixel = uint32_t;  // Packed 0x00RRGGBB.
using ClientId = uint32_t;
using Timestamp = uint64_t;

inline constexpr XId kNone = 0;
inline constexpr Atom kAtomNone = 0;

// Event selection masks (a client receives an event on a window only if it
// selected the corresponding mask there), mirroring X11's input masks.
enum EventMask : uint32_t {
  kNoEventMask = 0,
  kKeyPressMask = 1u << 0,
  kKeyReleaseMask = 1u << 1,
  kButtonPressMask = 1u << 2,
  kButtonReleaseMask = 1u << 3,
  kEnterWindowMask = 1u << 4,
  kLeaveWindowMask = 1u << 5,
  kPointerMotionMask = 1u << 6,
  kButtonMotionMask = 1u << 7,
  kExposureMask = 1u << 8,
  kStructureNotifyMask = 1u << 9,
  kSubstructureNotifyMask = 1u << 10,
  kFocusChangeMask = 1u << 11,
  kPropertyChangeMask = 1u << 12,
  kAllEventsMask = 0xffffffffu,
};

// Keyboard/button modifier state bits (the `state` field of key/button
// events).
enum ModMask : uint32_t {
  kShiftMask = 1u << 0,
  kLockMask = 1u << 1,
  kControlMask = 1u << 2,
  kMod1Mask = 1u << 3,  // Alt/Meta.
  kButton1Mask = 1u << 8,
  kButton2Mask = 1u << 9,
  kButton3Mask = 1u << 10,
  kButton4Mask = 1u << 11,
  kButton5Mask = 1u << 12,
};

struct Point {
  int x = 0;
  int y = 0;

  bool operator==(const Point&) const = default;
};

struct Rect {
  int x = 0;
  int y = 0;
  int width = 0;
  int height = 0;

  bool operator==(const Rect&) const = default;

  bool Contains(int px, int py) const {
    return px >= x && py >= y && px < x + width && py < y + height;
  }
  bool Intersects(const Rect& other) const {
    return x < other.x + other.width && other.x < x + width && y < other.y + other.height &&
           other.y < y + height;
  }
  bool Empty() const { return width <= 0 || height <= 0; }
  // Bounding box of the two rects (damage coalescing); an empty rect is the
  // identity element.
  Rect Union(const Rect& other) const {
    if (Empty()) {
      return other;
    }
    if (other.Empty()) {
      return *this;
    }
    int nx = x < other.x ? x : other.x;
    int ny = y < other.y ? y : other.y;
    int nr = (x + width > other.x + other.width) ? x + width : other.x + other.width;
    int nb = (y + height > other.y + other.height) ? y + height : other.y + other.height;
    Rect out;
    out.x = nx;
    out.y = ny;
    out.width = nr - nx;
    out.height = nb - ny;
    return out;
  }
  Rect Intersection(const Rect& other) const {
    int nx = x > other.x ? x : other.x;
    int ny = y > other.y ? y : other.y;
    int nr = (x + width < other.x + other.width) ? x + width : other.x + other.width;
    int nb = (y + height < other.y + other.height) ? y + height : other.y + other.height;
    Rect out;
    out.x = nx;
    out.y = ny;
    out.width = nr > nx ? nr - nx : 0;
    out.height = nb > ny ? nb - ny : 0;
    return out;
  }
};

}  // namespace xsim

#endif  // SRC_XSIM_TYPES_H_
