#include "src/xsim/font.h"

#include <cctype>
#include <cstdlib>
#include <vector>

namespace xsim {
namespace {

// Splits an XLFD name on '-'.  "-misc-fixed-medium-r-normal--13-120-..."
std::vector<std::string> SplitDashes(std::string_view name) {
  std::vector<std::string> fields;
  std::string current;
  for (char c : name) {
    if (c == '-') {
      fields.push_back(current);
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  fields.push_back(current);
  return fields;
}

bool ParseCellName(std::string_view name, int* width, int* height) {
  size_t x = name.find('x');
  if (x == std::string_view::npos || x == 0 || x + 1 >= name.size()) {
    return false;
  }
  for (size_t i = 0; i < name.size(); ++i) {
    if (i == x) {
      continue;
    }
    if (!std::isdigit(static_cast<unsigned char>(name[i]))) {
      return false;
    }
  }
  *width = std::atoi(std::string(name.substr(0, x)).c_str());
  *height = std::atoi(std::string(name.substr(x + 1)).c_str());
  return *width > 0 && *height > 0;
}

FontMetrics MakeMetrics(std::string name, int char_width, int height) {
  FontMetrics metrics;
  metrics.name = std::move(name);
  metrics.char_width = char_width;
  metrics.ascent = height * 4 / 5;
  metrics.descent = height - metrics.ascent;
  return metrics;
}

}  // namespace

int FontMetrics::TextWidth(std::string_view text) const {
  int width = 0;
  for (char c : text) {
    width += (c == '\t') ? char_width * 8 : char_width;
  }
  return width;
}

std::optional<FontMetrics> ResolveFont(std::string_view name) {
  if (name.empty()) {
    return std::nullopt;
  }
  int cell_w = 0;
  int cell_h = 0;
  if (ParseCellName(name, &cell_w, &cell_h)) {
    return MakeMetrics(std::string(name), cell_w, cell_h);
  }
  if (name.find('-') != std::string_view::npos) {
    // XLFD: field 7 is pixel size, field 8 is point size in tenths; a '*'
    // pixel size defers to the point size.
    std::vector<std::string> fields = SplitDashes(name);
    if (fields.size() < 8) {
      return std::nullopt;
    }
    int height = 0;
    const std::string& pixel_field = fields.size() > 7 ? fields[7] : "";
    if (!pixel_field.empty() && pixel_field != "*") {
      height = std::atoi(pixel_field.c_str());
    } else if (fields.size() > 8 && !fields[8].empty() && fields[8] != "*") {
      height = std::atoi(fields[8].c_str()) / 10;
    }
    if (height <= 0) {
      height = 13;
    }
    // Bold fonts are slightly wider; the width heuristic keeps layout
    // deterministic without rasterizing glyphs.
    bool bold = fields.size() > 3 && fields[3] == "bold";
    int char_width = height / 2 + (bold ? 1 : 0);
    if (char_width < 4) {
      char_width = 4;
    }
    return MakeMetrics(std::string(name), char_width, height);
  }
  // Simple alias ("fixed", "variable", anything else): 6x13.
  return MakeMetrics(std::string(name), 6, 13);
}

}  // namespace xsim
