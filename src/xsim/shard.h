// Per-resource-class shard locks for concurrent batch dispatch.
//
// The reactor-era WireServer dispatches many clients' batches from a pool of
// worker threads.  Server state is still guarded by the server mutex, but
// that mutex used to be held for a *whole batch* (Server::ApplyBatch), so
// independent clients serialized on it.  The shard layer replaces the
// batch-wide hold: a batch is classified into the resource shards it touches
// -- one shard per top-level window subtree, one for the GC table, one for
// atoms/selections, one global catch-all -- and holds only those shard locks
// for the batch while the server mutex drops to per-request holds.
//
// Two clients building widget trees under different top-level windows
// therefore hold disjoint shard sets and interleave request-by-request; a
// cross-shard operation (reparenting a subtree under another top-level
// window) takes both subtree locks.  Deadlock freedom comes from a canonical
// acquisition order: Acquire() sorts the key set (class, then id) and locks
// ascending, so any two batches acquire their common shards in the same
// order no matter how their requests were written.
//
// The shard locks are a concurrency-*scheduling* layer, not the state guard:
// the server mutex remains the authority on every map and tree.  That keeps
// the sharding claim honest (a stale classification can at worst admit two
// batches that then interleave safely under the server mutex) while giving
// the batch-level isolation the contention tests pin down.

#ifndef SRC_XSIM_SHARD_H_
#define SRC_XSIM_SHARD_H_

#include <algorithm>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "src/xsim/types.h"

namespace xsim {

// Resource classes with independent locking domains.  Order matters: it is
// the major key of the canonical acquisition order.
enum class ShardClass : uint8_t {
  kGlobal = 0,        // Focus, input, SendEvent, lifecycle: one server-wide shard.
  kAtom,              // Atom table and selection ownership.
  kGc,                // The GC table (mutations only; draws just read).
  kWindowSubtree,     // One shard per top-level window subtree (id = subtree root).
};

inline const char* ShardClassName(ShardClass cls) {
  switch (cls) {
    case ShardClass::kGlobal:
      return "global";
    case ShardClass::kAtom:
      return "atom";
    case ShardClass::kGc:
      return "gc";
    case ShardClass::kWindowSubtree:
      return "window-subtree";
  }
  return "?";
}

struct ShardKey {
  ShardClass cls = ShardClass::kGlobal;
  XId id = 0;  // Subtree root for kWindowSubtree; 0 for the singleton classes.

  friend bool operator==(const ShardKey& a, const ShardKey& b) {
    return a.cls == b.cls && a.id == b.id;
  }
  friend bool operator<(const ShardKey& a, const ShardKey& b) {
    if (a.cls != b.cls) {
      return a.cls < b.cls;
    }
    return a.id < b.id;
  }
};

// The lock registry.  Shard mutexes are created on demand (window subtrees
// come and go) and live for the table's lifetime; the registry itself is
// guarded by its own mutex, held only during lookup, never across a shard
// acquisition.
class ShardTable {
 public:
  ShardTable() = default;
  ShardTable(const ShardTable&) = delete;
  ShardTable& operator=(const ShardTable&) = delete;

  // RAII hold on a set of shards; unlocks in reverse acquisition order.
  class Hold {
   public:
    Hold() = default;
    ~Hold() { Release(); }
    Hold(Hold&& other) noexcept : locks_(std::move(other.locks_)) {
      other.locks_.clear();
    }
    Hold& operator=(Hold&& other) noexcept {
      if (this != &other) {
        Release();
        locks_ = std::move(other.locks_);
        other.locks_.clear();
      }
      return *this;
    }
    Hold(const Hold&) = delete;
    Hold& operator=(const Hold&) = delete;

    size_t size() const { return locks_.size(); }

   private:
    friend class ShardTable;
    void Release() {
      for (auto it = locks_.rbegin(); it != locks_.rend(); ++it) {
        (*it)->unlock();
      }
      locks_.clear();
    }
    std::vector<std::mutex*> locks_;
  };

  // Locks every shard in `keys` in canonical (sorted, deduplicated) order
  // and returns the hold.  An empty key set returns an empty hold.
  Hold Acquire(std::vector<ShardKey> keys) {
    std::sort(keys.begin(), keys.end());
    keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
    Hold hold;
    hold.locks_.reserve(keys.size());
    for (const ShardKey& key : keys) {
      std::mutex* mu = Lookup(key);
      mu->lock();
      hold.locks_.push_back(mu);
    }
    return hold;
  }

  // How many distinct shards have been materialized (introspection/tests).
  size_t shard_count() const {
    std::lock_guard<std::mutex> lock(registry_mu_);
    return shards_.size();
  }

 private:
  std::mutex* Lookup(const ShardKey& key) {
    std::lock_guard<std::mutex> lock(registry_mu_);
    auto it = shards_.find(key);
    if (it == shards_.end()) {
      it = shards_.emplace(key, std::make_unique<std::mutex>()).first;
    }
    return it->second.get();
  }

  mutable std::mutex registry_mu_;
  std::map<ShardKey, std::unique_ptr<std::mutex>> shards_;
};

}  // namespace xsim

#endif  // SRC_XSIM_SHARD_H_
