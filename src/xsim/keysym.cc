#include "src/xsim/keysym.h"

#include <cctype>
#include <map>

namespace xsim {
namespace {

struct NamedKey {
  const char* name;
  KeySym keysym;
};

constexpr NamedKey kNamedKeys[] = {
    {"space", ' '},
    {"exclam", '!'},
    {"quotedbl", '"'},
    {"numbersign", '#'},
    {"dollar", '$'},
    {"percent", '%'},
    {"ampersand", '&'},
    {"apostrophe", '\''},
    {"parenleft", '('},
    {"parenright", ')'},
    {"asterisk", '*'},
    {"plus", '+'},
    {"comma", ','},
    {"minus", '-'},
    {"period", '.'},
    {"slash", '/'},
    {"colon", ':'},
    {"semicolon", ';'},
    {"less", '<'},
    {"equal", '='},
    {"greater", '>'},
    {"question", '?'},
    {"at", '@'},
    {"bracketleft", '['},
    {"backslash", '\\'},
    {"bracketright", ']'},
    {"asciicircum", '^'},
    {"underscore", '_'},
    {"grave", '`'},
    {"braceleft", '{'},
    {"bar", '|'},
    {"braceright", '}'},
    {"asciitilde", '~'},
    {"BackSpace", kKeyBackSpace},
    {"Tab", kKeyTab},
    {"Return", kKeyReturn},
    {"Enter", kKeyReturn},
    {"Escape", kKeyEscape},
    {"Delete", kKeyDelete},
    {"Home", kKeyHome},
    {"End", kKeyEnd},
    {"Left", kKeyLeft},
    {"Up", kKeyUp},
    {"Right", kKeyRight},
    {"Down", kKeyDown},
    {"Prior", kKeyPrior},
    {"Next", kKeyNext},
    {"Shift_L", kKeyShiftL},
    {"Shift_R", kKeyShiftR},
    {"Control_L", kKeyControlL},
    {"Control_R", kKeyControlR},
    {"Meta_L", kKeyMetaL},
    {"Meta_R", kKeyMetaR},
    {"Alt_L", kKeyAltL},
    {"Alt_R", kKeyAltR},
    {"F1", kKeyF1},
    {"F2", kKeyF2},
    {"F3", kKeyF3},
    {"F4", kKeyF4},
    {"F5", kKeyF5},
    {"F6", kKeyF6},
    {"F7", kKeyF7},
    {"F8", kKeyF8},
    {"F9", kKeyF9},
    {"F10", kKeyF10},
};

// Shifted forms of the US keyboard layout for %A substitution.
char ShiftedChar(char c) {
  if (std::islower(static_cast<unsigned char>(c))) {
    return static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  }
  switch (c) {
    case '1':
      return '!';
    case '2':
      return '@';
    case '3':
      return '#';
    case '4':
      return '$';
    case '5':
      return '%';
    case '6':
      return '^';
    case '7':
      return '&';
    case '8':
      return '*';
    case '9':
      return '(';
    case '0':
      return ')';
    case '-':
      return '_';
    case '=':
      return '+';
    case '[':
      return '{';
    case ']':
      return '}';
    case '\\':
      return '|';
    case ';':
      return ':';
    case '\'':
      return '"';
    case ',':
      return '<';
    case '.':
      return '>';
    case '/':
      return '?';
    case '`':
      return '~';
    default:
      return c;
  }
}

}  // namespace

std::optional<KeySym> KeySymFromName(std::string_view name) {
  if (name.size() == 1) {
    unsigned char c = static_cast<unsigned char>(name[0]);
    if (c >= 0x20 && c < 0x7f) {
      return static_cast<KeySym>(c);
    }
    return std::nullopt;
  }
  for (const NamedKey& key : kNamedKeys) {
    if (name == key.name) {
      return key.keysym;
    }
  }
  return std::nullopt;
}

std::string KeySymName(KeySym keysym) {
  if (keysym >= 0x20 && keysym < 0x7f) {
    // Prefer the multi-character names for non-alphanumerics, as X does.
    for (const NamedKey& key : kNamedKeys) {
      if (key.keysym == keysym) {
        return key.name;
      }
    }
    return std::string(1, static_cast<char>(keysym));
  }
  for (const NamedKey& key : kNamedKeys) {
    if (key.keysym == keysym) {
      return key.name;
    }
  }
  return "<keysym-" + std::to_string(keysym) + ">";
}

std::string KeySymToString(KeySym keysym, bool shift) {
  if (keysym >= 0x20 && keysym < 0x7f) {
    char c = static_cast<char>(keysym);
    return std::string(1, shift ? ShiftedChar(c) : c);
  }
  switch (keysym) {
    case kKeyReturn:
      return "\n";
    case kKeyTab:
      return "\t";
    case kKeyBackSpace:
      return "\b";
    case kKeyEscape:
      return "\x1b";
    case kKeyDelete:
      return "\x7f";
    default:
      return "";
  }
}

bool IsModifierKey(KeySym keysym) {
  switch (keysym) {
    case kKeyShiftL:
    case kKeyShiftR:
    case kKeyControlL:
    case kKeyControlR:
    case kKeyMetaL:
    case kKeyMetaR:
    case kKeyAltL:
    case kKeyAltR:
      return true;
    default:
      return false;
  }
}

}  // namespace xsim
