// The xsim X server: the authoritative window tree, resource stores, event
// router and framebuffer shared by every in-process client (Display).
//
// The server implements the protocol-visible behaviour Tk depends on:
//
//   * hierarchical windows with geometry, stacking, map state;
//   * per-(window, client) event selection and per-client event queues;
//   * properties on any window, including the root window (this is where
//     Tk's `send` keeps its interpreter registry);
//   * atoms, named colors, synthetic fonts, cursors, bitmaps, GCs;
//   * ICCCM-shaped selections (ownership, SelectionClear/Request/Notify);
//   * input: pointer/keyboard injection, crossing (Enter/Leave) event
//     generation, implicit pointer grab on button press, input focus;
//   * drawing into an in-memory raster plus a per-window text journal that
//     replaces Figure 10's screen dump;
//   * request counters, so the traffic-saving claims of Section 3.3 can be
//     measured rather than asserted.

#ifndef SRC_XSIM_SERVER_H_
#define SRC_XSIM_SERVER_H_

#include <atomic>
#include <chrono>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "src/xsim/color.h"
#include "src/xsim/error.h"
#include "src/xsim/event.h"
#include "src/xsim/fault.h"
#include "src/xsim/font.h"
#include "src/xsim/keysym.h"
#include "src/xsim/raster.h"
#include "src/xsim/request.h"
#include "src/xsim/shard.h"
#include "src/xsim/trace.h"
#include "src/xsim/types.h"

namespace xsim {

// A string drawn into a window; kept so tests and dumps can inspect
// rendered text without glyph recognition.
struct TextItem {
  int x = 0;
  int y = 0;  // Baseline.
  std::string text;
  Pixel pixel = 0;
  FontId font = kNone;
};

// Per-request-category traffic counters.
struct RequestCounters {
  uint64_t total = 0;
  uint64_t round_trips = 0;  // Requests that block for a server reply.
  uint64_t create_window = 0;
  uint64_t destroy_window = 0;
  uint64_t map_window = 0;
  uint64_t configure_window = 0;
  uint64_t alloc_color = 0;
  uint64_t load_font = 0;
  uint64_t change_property = 0;
  uint64_t get_property = 0;
  uint64_t draw = 0;
  uint64_t send_event = 0;
  // Batch-apply traffic (the buffered request pipeline).
  uint64_t flushes = 0;           // ApplyBatch calls (client-side flushes).
  uint64_t batched_requests = 0;  // Requests that arrived inside a batch.
  uint64_t max_batch = 0;         // Largest single batch seen.
};

// Counters for generated errors and injected faults (`info faults`).
struct FaultCounters {
  uint64_t errors_generated = 0;   // X error events raised by validation.
  uint64_t injected_failures = 0;  // Requests failed by the FaultInjector.
  uint64_t injected_drops = 0;     // Requests silently dropped.
  uint64_t injected_delays = 0;    // Requests delayed.
  uint64_t killed_clients = 0;     // KillClient calls (simulated crashes).
};

// Connection-lifecycle counters (session retention and resumption).
struct SessionCounters {
  uint64_t disconnects = 0;  // DisconnectClient calls (any reason).
  uint64_t retained = 0;     // Disconnects that retained the session.
  uint64_t resumed = 0;      // Successful ResumeSession reattaches.
  uint64_t reaped = 0;       // Retained sessions torn down by the reaper.
};

// Per-client resource census, for replay-idempotence checks: a reconnect
// that replays the session journal must land on exactly these counts.
struct ResourceCounts {
  size_t windows = 0;     // Windows owned by the client (root excluded).
  size_t gcs = 0;         // GCs created by the client.
  size_t properties = 0;  // Properties on the client's own windows.
  size_t selections = 0;  // Selections the client owns.

  bool operator==(const ResourceCounts&) const = default;
};

// Wire-transport traffic counters (always-on, like RequestCounters; reset by
// Server::ResetCounters so a measurement window starts clean across every
// counter family).
struct WireCounters {
  uint64_t connections = 0;       // Wire connections accepted.
  uint64_t frames_in = 0;         // Frames received from wire clients.
  uint64_t frames_out = 0;        // Frames sent to wire clients.
  uint64_t bytes_in = 0;          // Payload+header bytes received.
  uint64_t bytes_out = 0;         // Payload+header bytes sent.
  uint64_t batches = 0;           // kBatch frames dispatched.
  uint64_t malformed_frames = 0;  // Frames the decoder rejected.
  uint64_t dropped_frames = 0;    // Frames lost to frame-layer faults.
  uint64_t truncated_frames = 0;  // Frames truncated by frame-layer faults.
  uint64_t delayed_frames = 0;    // Frames delayed by frame-layer faults.
};

namespace wire {
class WireServer;
}  // namespace wire

class Server {
 public:
  // Creates a server with a root window of the given size.
  explicit Server(int width = 1280, int height = 1024);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  WindowId root() const { return kRootWindow; }

  // --- Clients ---------------------------------------------------------------

  ClientId RegisterClient(std::string name);
  void UnregisterClient(ClientId client);
  bool HasPendingEvents(ClientId client) const;
  // Depth of the client's event queue (event-loop observability).
  size_t PendingEventCount(ClientId client) const;
  // Pops the next queued event for `client`; false if the queue is empty.
  bool NextEvent(ClientId client, Event* out);

  // Simulates an application crash: the client's windows, selections and
  // event queue are torn down exactly as if the connection closed, and all
  // further requests from the client are silently dropped.  The ClientRec
  // itself survives (marked dead) so a Display handle held by the "crashed"
  // application stays safe to use.
  void KillClient(ClientId client);
  bool ClientAlive(ClientId client) const;

  // --- Connection lifecycle (close-down modes, sessions, resumption) ---------
  //
  // Every client gets a session token at registration (carried back in the
  // kHelloAck).  When the client's *connection* dies -- rather than the
  // client unregistering orderly with DestroyAll semantics -- the wire layer
  // calls DisconnectClient, which applies the client's close-down mode: with
  // kDestroyAll the session is torn down on the spot; with a Retain mode the
  // ClientRec and every resource survive, waiting for a ResumeSession with
  // the same token.  RetainTemporary sessions are reaped after a grace
  // period; RetainPermanent sessions persist until KillClient.

  void SetCloseDownMode(ClientId client, CloseDownMode mode);
  CloseDownMode ClientCloseDownMode(ClientId client) const;
  uint64_t ClientSessionToken(ClientId client) const;

  // Connection teardown honoring the close-down mode.  Records the
  // disconnect (with `reason`) in the trace.
  void DisconnectClient(ClientId client, DisconnectReason reason);
  // Reattaches to the session the token names -- retained, or still
  // nominally connected (a client can redial a broken wire before the
  // server's reader notices the old connection die; the token proves it is
  // the same client).  0 when the token matches nothing alive (caller falls
  // back to RegisterClient).
  ClientId ResumeSession(uint64_t token);
  bool ClientRetained(ClientId client) const;
  size_t RetainedSessionCount() const;
  // Tears down RetainTemporary sessions disconnected at least `grace_ms`
  // ago; returns how many were reaped.  RetainPermanent sessions are
  // untouched unless `include_permanent` forces a full sweep (end-of-run
  // leak accounting).
  size_t ReapRetainedSessions(uint64_t grace_ms, bool include_permanent = false);

  SessionCounters session_counters() const {
    std::lock_guard<std::recursive_mutex> lock(mu_);
    return session_counters_;
  }
  // Census of the client's live server-side resources.
  ResourceCounts ClientResources(ClientId client) const;
  // Resources whose owning client no longer has a ClientRec -- the leak the
  // no-orphan-leak soak invariant gates on.
  size_t OrphanResourceCount() const;

  // Registers the callback that receives X error events for `client`
  // (installed by Display::Open; one sink per client).
  using ErrorSink = std::function<void(const XError&)>;
  void SetErrorSink(ClientId client, ErrorSink sink);
  // Sequence number of the last request the client issued.
  uint64_t ClientSequence(ClientId client) const;

  // --- Buffered request pipeline -----------------------------------------------

  // Applies one encoded request immediately (the path behind a synchronous
  // Display, and the per-record step of ApplyBatch).  The request's
  // client-assigned sequence number is honoured, so errors raised during
  // dispatch carry it.  With `synchronous` set the request additionally
  // costs a full round trip (XSynchronize semantics: every request waits
  // for the server's reply).  Returns the entry point's success status.
  bool ApplyRequest(ClientId client, const Request& request, bool synchronous = false);
  // Applies a whole output-buffer flush: every request in order, then one
  // per-batch flush record in the trace.  Returns how many requests
  // executed successfully.  Holds the server mutex for the whole batch (the
  // direct transport's atomic-flush semantics).
  size_t ApplyBatch(ClientId client, const std::vector<Request>& requests);

  // --- Sharded batch dispatch (the reactor-era concurrency path) -------------
  //
  // Same request-level semantics as ApplyBatch, but the batch-wide exclusion
  // is per-*shard* rather than server-wide: the batch is classified into the
  // resource shards it touches (window subtrees, GC table, atoms, global)
  // and only those shard locks are held batch-wide, while the server mutex
  // drops to per-request holds.  Two clients mutating disjoint window
  // subtrees apply concurrently; a cross-shard reparent takes both subtree
  // locks in ShardTable's canonical order.  This is what the wire front-ends
  // call for every kBatch frame.

  size_t ApplyBatchSharded(ClientId client, const std::vector<Request>& requests);
  // The shard set a batch would lock, canonically ordered and deduplicated
  // (public so the contention tests can pin classification down).
  std::vector<ShardKey> ClassifyBatchShards(ClientId client,
                                            const std::vector<Request>& requests) const;
  ShardTable& shards() { return shard_table_; }
  // Test hook: ApplyBatchSharded sleeps this long while holding its shard
  // locks (before applying), so contention tests can measure whether two
  // batches' shard holds overlap in wall-clock time.
  void SetShardHoldDelayMs(uint64_t ms) {
    shard_hold_delay_ms_.store(ms, std::memory_order_relaxed);
  }

  // --- Windows -----------------------------------------------------------------

  // With `id` == kNone the server allocates the window id; otherwise the
  // client-chosen id is used (Xlib allocates ids client-side so CreateWindow
  // needs no reply).  A duplicate id raises BadValue.
  WindowId CreateWindow(ClientId client, WindowId parent, int x, int y, int width, int height,
                        int border_width, WindowId id = kNone);
  bool DestroyWindow(ClientId client, WindowId window);
  bool MapWindow(ClientId client, WindowId window);
  bool UnmapWindow(ClientId client, WindowId window);
  // Negative fields mean "leave unchanged".
  bool ConfigureWindow(ClientId client, WindowId window, int x, int y, int width, int height,
                       int border_width);
  bool RaiseWindow(ClientId client, WindowId window);
  // XReparentWindow: moves `window` (and its subtree) under `new_parent` at
  // (x, y), preserving map state.  BadWindow for unknown windows or the
  // root; BadValue when `new_parent` lies inside `window`'s own subtree.
  bool ReparentWindow(ClientId client, WindowId window, WindowId new_parent, int x, int y);
  void SelectInput(ClientId client, WindowId window, uint32_t mask);
  bool SetWindowBackground(ClientId client, WindowId window, Pixel pixel);

  bool WindowExists(WindowId window) const;
  // Geometry in parent coordinates; nullopt for unknown windows.
  std::optional<Rect> WindowGeometry(WindowId window) const;
  std::optional<WindowId> WindowParent(WindowId window) const;
  std::vector<WindowId> WindowChildren(WindowId window) const;
  bool IsMapped(WindowId window) const;
  bool IsViewable(WindowId window) const;  // Mapped, with all ancestors mapped.
  // Absolute (root-relative) position of the window's origin.
  std::optional<Point> AbsolutePosition(WindowId window) const;

  // --- Atoms and properties ------------------------------------------------------

  Atom InternAtom(ClientId client, std::string_view name);
  std::string AtomName(Atom atom) const;
  bool ChangeProperty(ClientId client, WindowId window, Atom property, std::string value);
  std::optional<std::string> GetProperty(ClientId client, WindowId window, Atom property);
  bool DeleteProperty(ClientId client, WindowId window, Atom property);

  // --- Colors, fonts, cursors, bitmaps ---------------------------------------------

  std::optional<Pixel> AllocNamedColor(ClientId client, std::string_view name);
  Pixel AllocColor(ClientId client, Rgb rgb);
  std::optional<FontId> LoadFont(ClientId client, std::string_view name);
  const FontMetrics* QueryFont(FontId font) const;
  CursorId CreateNamedCursor(ClientId client, std::string_view name);
  std::optional<std::string> CursorName(CursorId cursor) const;
  BitmapId CreateBitmap(ClientId client, std::string_view name, int width, int height);
  std::optional<Rect> BitmapSize(BitmapId bitmap) const;

  // --- Graphics contexts and drawing --------------------------------------------------

  using Gc = GcValues;  // Declared in request.h so requests can carry it.
  // As with CreateWindow, `id` lets the client allocate the GC id itself.
  GcId CreateGc(ClientId client, GcId id = kNone);
  void FreeGc(ClientId client, GcId gc);
  bool ChangeGc(ClientId client, GcId gc, const Gc& values);
  const Gc* GetGc(GcId gc) const;

  void ClearWindow(ClientId client, WindowId window);
  // Clears `area` (window coordinates) to the window background and drops
  // journal text whose baseline anchor lies inside it -- the primitive
  // behind damage-coalesced partial repaints.
  void ClearArea(ClientId client, WindowId window, const Rect& area);
  void FillRectangle(ClientId client, WindowId window, GcId gc, const Rect& rect);
  void DrawRectangle(ClientId client, WindowId window, GcId gc, const Rect& rect);
  void DrawLine(ClientId client, WindowId window, GcId gc, int x0, int y0, int x1, int y1);
  void DrawString(ClientId client, WindowId window, GcId gc, int x, int y,
                  std::string_view text);
  // The text journal of a window (most recent draws last).
  std::vector<TextItem> WindowText(WindowId window) const;

  // --- Focus and selections --------------------------------------------------------------

  void SetInputFocus(ClientId client, WindowId window);
  WindowId GetInputFocus() const {
    std::lock_guard<std::recursive_mutex> lock(mu_);
    return focus_window_;
  }

  void SetSelectionOwner(ClientId client, Atom selection, WindowId owner);
  WindowId GetSelectionOwner(ClientId client, Atom selection);
  // Asks the selection owner to convert; the reply arrives as a
  // SelectionNotify event on `requestor`.
  void ConvertSelection(ClientId client, Atom selection, Atom target, Atom property,
                        WindowId requestor);
  // Used by owners replying to a SelectionRequest.
  void SendSelectionNotify(ClientId client, WindowId requestor, Atom selection, Atom target,
                           Atom property);

  // --- Events ------------------------------------------------------------------------------

  // Sends `event` to the clients selecting `mask` on `destination`; with
  // mask 0, to the client that created the window (X11 SendEvent semantics).
  void SendEvent(ClientId client, WindowId destination, const Event& event, uint32_t mask);

  // --- Input injection (the test/benchmark stand-in for a physical user) -------------------

  void InjectPointerMove(int x, int y);
  void InjectButton(int button, bool press);
  void InjectKey(KeySym keysym, bool press);
  // Convenience: press+release.
  void InjectClick(int button) {
    InjectButton(button, true);
    InjectButton(button, false);
  }
  void InjectKeystroke(KeySym keysym) {
    InjectKey(keysym, true);
    InjectKey(keysym, false);
  }
  Point pointer_position() const {
    std::lock_guard<std::recursive_mutex> lock(mu_);
    return pointer_;
  }
  // Deepest viewable window containing the point.
  WindowId WindowAt(int x, int y) const;

  // --- Wire transport ----------------------------------------------------------------------

  // The threaded socket front-end (created on first use).  Wire clients
  // connect through it instead of calling the Server directly; see
  // src/xsim/wire/wire_server.h.
  wire::WireServer& wire();
  bool has_wire() const;

  // Traffic accounting called by the wire layer.  Frame traffic also feeds
  // the TraceBuffer's cumulative wire counters while tracing is active.
  void CountWireConnection();
  // Raises an X error against `client` for a frame-layer failure that never
  // became a request (malformed or truncated frame): BadLength/BadRequest
  // with the client's current sequence number, since the damaged frame never
  // earned one.
  void RaiseTransportError(ClientId client, ErrorCode code);
  void CountWireFrameIn(uint64_t bytes);
  void CountWireFrameOut(uint64_t bytes);
  void CountWireBatch();
  void CountWireMalformed();
  void CountWireFault(bool dropped, bool truncated, bool delayed);

  // --- Introspection -----------------------------------------------------------------------

  // Counter accessors return by-value snapshots taken under the server lock:
  // wire dispatch threads mutate these concurrently with script-side reads.
  RequestCounters counters() const {
    std::lock_guard<std::recursive_mutex> lock(mu_);
    return counters_;
  }
  WireCounters wire_counters() const {
    std::lock_guard<std::recursive_mutex> lock(mu_);
    return wire_counters_;
  }
  // Unified reset: a measurement window starts clean across *all* counter
  // families.  (Regression fix: fault counters used to survive
  // ResetCounters, so traffic measurements taken after a reset still saw
  // stale fault totals; wire counters joined the same reset in PR 5.)
  void ResetCounters() {
    std::lock_guard<std::recursive_mutex> lock(mu_);
    counters_ = RequestCounters();
    fault_counters_ = FaultCounters();
    wire_counters_ = WireCounters();
    session_counters_ = SessionCounters();
  }

  // Fault injection and failure observability.
  FaultInjector& fault_injector() { return fault_injector_; }
  FaultCounters fault_counters() const {
    std::lock_guard<std::recursive_mutex> lock(mu_);
    return fault_counters_;
  }
  void ResetFaultCounters() {
    std::lock_guard<std::recursive_mutex> lock(mu_);
    fault_counters_ = FaultCounters();
  }

  // Protocol trace (xscope-style): start/stop/filter/export via the
  // TraceBuffer itself; the server records into it on every request it
  // admits and every event it queues.
  TraceBuffer& trace() { return trace_; }
  const TraceBuffer& trace() const { return trace_; }

  // Simulated transport cost: every request costs `request_ns` and every
  // synchronous round trip an additional `round_trip_ns` of busy-waiting.
  // Models the inter-process X connection of the paper's environment (a few
  // hundred microseconds per round trip on 1990 hardware); zero by default.
  void SetSimulatedLatency(uint64_t request_ns, uint64_t round_trip_ns) {
    std::lock_guard<std::recursive_mutex> lock(mu_);
    request_latency_ns_ = request_ns;
    round_trip_latency_ns_ = round_trip_ns;
  }
  // The raster is read without locking (golden-raster hashing); callers must
  // quiesce wire clients first -- the synchronous batch acks make "my last
  // flush returned" a sufficient barrier.
  const Raster& raster() const { return raster_; }
  Timestamp now() const {
    std::lock_guard<std::recursive_mutex> lock(mu_);
    return time_;
  }

  // Multi-line dump of the window tree with geometry, map state and text
  // content -- the reproduction's version of Figure 10's screen dump.
  std::string DumpTree() const;

 private:
  static constexpr WindowId kRootWindow = 1;

  struct WindowRec {
    WindowId id = kNone;
    WindowId parent = kNone;
    ClientId owner = 0;
    Rect geometry;
    int border_width = 0;
    bool mapped = false;
    Pixel background = 0xffffff;
    std::vector<WindowId> children;  // Bottom-to-top stacking order.
    std::map<ClientId, uint32_t> event_masks;
    std::map<Atom, std::string> properties;
    std::vector<TextItem> text_items;
  };

  struct ClientRec {
    ClientId id = 0;
    std::string name;
    std::deque<Event> queue;
    uint64_t sequence = 0;  // Number of requests issued so far.
    bool dead = false;      // KillClient was called; requests are dropped.
    ErrorSink error_sink;
    // Connection lifecycle (PR 7).
    uint64_t session_token = 0;
    CloseDownMode close_down = CloseDownMode::kDestroyAll;
    bool retained = false;  // Disconnected with a Retain mode; resumable.
    std::chrono::steady_clock::time_point retained_at{};
    bool replaying = false;  // Inside a kReplayMark bracket: creates upsert.
  };

  WindowRec* FindWindow(WindowId id);
  const WindowRec* FindWindow(WindowId id) const;
  // Top-level ancestor (direct child of the root) of `window`; kNone for the
  // root itself or unknown windows.  Caller holds mu_.
  WindowId SubtreeRootLocked(WindowId window) const;
  ClientRec* FindClient(ClientId id);
  const ClientRec* FindClient(ClientId id) const;
  // Shared teardown for UnregisterClient and KillClient: destroys the
  // client's windows, releases its selections, clears its queue.
  void CloseDownClient(ClientRec* rec);

  // Queues `event` on a client (skipping dead clients) and traces the
  // delivery; every path that feeds a client queue goes through here.
  void EnqueueEvent(ClientRec* rec, const Event& event);
  // Delivers `event` to every client that selected `mask` on `window`.
  void Deliver(WindowId window, const Event& event, uint32_t mask);
  // Walks from `window` towards the root, delivering to the first window
  // with a client selecting `mask` (pointer-event propagation).  Adjusts
  // coordinates to the delivery window.  Returns the delivery window.
  WindowId DeliverWithPropagation(WindowId window, Event event, uint32_t mask);

  void DestroyWindowInternal(WindowRec* rec);
  void GenerateExpose(WindowId window);
  // Ancestor chain root->window inclusive.
  std::vector<WindowId> AncestorChain(WindowId window) const;
  void UpdateCrossing(WindowId old_window, WindowId new_window);
  // The visible region of a window in root coordinates (intersection of its
  // rect with all ancestors').
  Rect VisibleRegion(const WindowRec& rec) const;
  Rect AbsoluteRect(const WindowRec& rec) const;
  // Validates the window/GC pair of a drawing request, raising BadWindow or
  // BadGC as appropriate.  True when both resources exist.
  bool CheckDrawable(ClientId client, WindowId window, const WindowRec* rec, GcId gc,
                     const Gc* context);
  void PaintBackground(WindowRec& rec);
  Timestamp Tick() { return ++time_; }
  // Per-request bookkeeping: bumps the total counter and the client's
  // sequence number, applies simulated transport latency, consults the
  // fault injector, and appends a trace record when tracing is active
  // (`resource` is the request's primary resource id, for the record).
  // Returns false when the request must not execute (the client is dead, or
  // the injector failed/dropped it); an injected failure also raises a
  // BadImplementation error on the client.
  bool BeginRequest(ClientId client, RequestType type, XId resource = kNone);
  void CountRoundTrip();
  // Generates an X error event on `client` for the request in flight.
  void RaiseError(ClientId client, ErrorCode code, XId resource, RequestType request);

  std::map<WindowId, std::unique_ptr<WindowRec>> windows_;
  std::map<ClientId, std::unique_ptr<ClientRec>> clients_;
  std::map<GcId, Gc> gcs_;
  // GC ownership, so close-down can free a client's GCs (they used to leak)
  // and the orphan census can attribute them.
  std::map<GcId, ClientId> gc_owners_;
  std::map<FontId, FontMetrics> fonts_;
  std::map<std::string, FontId, std::less<>> font_ids_;
  std::map<CursorId, std::string> cursors_;
  std::map<BitmapId, std::pair<std::string, Rect>> bitmaps_;
  std::vector<std::string> atoms_;  // atoms_[atom - 1] == name.
  std::map<Atom, std::pair<WindowId, ClientId>> selections_;

  XId next_id_ = 2;  // 1 is the root window.
  ClientId next_client_ = 1;
  Timestamp time_ = 0;

  // Input state.
  Point pointer_;
  uint32_t modifier_state_ = 0;
  uint32_t button_state_ = 0;
  WindowId pointer_window_ = kRootWindow;
  WindowId grab_window_ = kNone;  // Implicit grab while a button is down.
  WindowId focus_window_ = kNone;

  // Batch-level shard locks (see shard.h); orthogonal to mu_ and always
  // acquired before it, never while holding it.
  ShardTable shard_table_;
  std::atomic<uint64_t> shard_hold_delay_ms_{0};

  RequestCounters counters_;
  FaultCounters fault_counters_;
  WireCounters wire_counters_;
  SessionCounters session_counters_;
  FaultInjector fault_injector_;
  TraceBuffer trace_;
  // True while BeginRequest is running: an injected failure's RaiseError
  // must not re-mark the previous request's trace record.
  bool in_begin_request_ = false;
  uint64_t request_latency_ns_ = 0;
  uint64_t round_trip_latency_ns_ = 0;
  Raster raster_;

  // Serializes all server state against concurrent wire dispatch threads.
  // Recursive because public methods compose (ApplyRequest -> CreateWindow,
  // DumpTree -> WindowGeometry) and error sinks may re-enter.
  mutable std::recursive_mutex mu_;
  // Declared last so ~Server tears the wire front-end down (joining its
  // threads, which may still call public methods) while the rest of the
  // server is intact.
  std::unique_ptr<wire::WireServer> wire_server_;
};

}  // namespace xsim

#endif  // SRC_XSIM_SERVER_H_
