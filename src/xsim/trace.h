// Protocol-level tracing (the xscope/xmon of the reproduction).
//
// Section 3.3's efficiency argument is a *traffic* argument: resource caching
// and idle-time batching are justified by how few requests actually reach the
// server.  The aggregate RequestCounters can say "N requests happened" but
// not *which* requests a given script issued, so the paper's per-operation
// traffic numbers were asserted rather than observed.  TraceBuffer closes
// that gap: while active, every request the server executes and every event
// it delivers is appended to a fixed-capacity ring as a structured record
// (monotonic serial, client, request/event type, resource id, transport
// duration, fault-injection outcome).  Traces are inspected programmatically
// (per-type counts for `xtrace expect` assertions), dumped as JSONL for CI
// archiving, and parsed back for round-trip tests.
//
// `duration_ns` is the time the request spent in the simulated transport:
// per-request latency, injected fault delays, and (via MarkLastRoundTrip)
// the round-trip wait of synchronous requests.  Client-side dispatch latency
// lives in tk::EventLoopStats, not here.

#ifndef SRC_XSIM_TRACE_H_
#define SRC_XSIM_TRACE_H_

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/xsim/error.h"
#include "src/xsim/event.h"
#include "src/xsim/types.h"

namespace xsim {

// What happened to a traced request after fault injection and validation.
enum class TraceOutcome : uint8_t {
  kOk = 0,
  kDelayed,  // Executed, but an injected delay stalled it first.
  kDropped,  // Silently lost by the fault injector.
  kFailed,   // Failed by the fault injector (BadImplementation).
  kError,    // Executed but validation raised an X error (BadWindow, ...).
};

const char* TraceOutcomeName(TraceOutcome outcome);

// One traced request, delivered event, or output-buffer flush.
struct TraceRecord {
  uint64_t serial = 0;       // Monotonic over the buffer's lifetime.
  ClientId client = 0;       // Issuing client (requests) / receiver (events).
  bool is_event = false;
  bool is_flush = false;     // Per-batch flush marker (Server::ApplyBatch).
  RequestType request = RequestType::kOther;  // Valid when !is_event/!is_flush.
  EventType event = EventType::kNone;         // Valid when is_event.
  XId resource = kNone;      // Primary resource id of the request/event.
  uint64_t duration_ns = 0;  // Simulated transport time (see file comment).
  bool round_trip = false;   // Request blocked for a server reply.
  uint32_t batch_size = 0;   // Requests in the flushed batch (is_flush only).
  TraceOutcome outcome = TraceOutcome::kOk;

  bool operator==(const TraceRecord&) const = default;
};

class TraceBuffer {
 public:
  static constexpr size_t kDefaultCapacity = 4096;

  explicit TraceBuffer(size_t capacity = kDefaultCapacity);

  // Start/stop recording.  Stopping keeps the buffer contents (so a trace
  // can be dumped after the workload finished); Clear drops them.
  void Start() { active_ = true; }
  void Stop() { active_ = false; }
  bool active() const { return active_; }

  // Drops all records and zeroes the cumulative counters.  Serial numbers
  // keep counting up so records never repeat a serial across a Clear.
  void Clear();

  size_t capacity() const { return capacity_; }
  // Resizing drops current records (the ring is re-laid-out).
  void set_capacity(size_t capacity);
  size_t size() const { return size_; }

  // --- Filtering -----------------------------------------------------------
  //
  // With a request filter installed, only the named request types are stored
  // in the ring; cumulative counters still count every request so that
  // `xtrace expect` and summaries stay exact regardless of the filter.
  void SetRequestFilter(const std::vector<RequestType>& types);
  void ClearRequestFilter() { filter_mask_ = 0; }
  bool HasRequestFilter() const { return filter_mask_ != 0; }
  bool FilterAccepts(RequestType type) const {
    return filter_mask_ == 0 || (filter_mask_ & (1u << static_cast<size_t>(type))) != 0;
  }
  std::vector<RequestType> RequestFilter() const;

  // Event records can be suppressed wholesale (request-only traces).
  void set_record_events(bool enabled) { record_events_ = enabled; }
  bool record_events() const { return record_events_; }

  // --- Recording (called by the Server; no-ops while inactive) -------------

  void RecordRequest(ClientId client, RequestType type, XId resource, uint64_t duration_ns,
                     TraceOutcome outcome);
  void RecordEvent(ClientId client, EventType type, WindowId window);
  // One output-buffer flush of `batch_size` requests reached the server.
  // Recorded after the batch's request records (wire order); retained even
  // under a request filter so batching stays observable in filtered dumps.
  void RecordFlush(ClientId client, size_t batch_size);
  // Flags the most recent request record as a synchronous round trip and
  // adds the round-trip wait to its duration.
  void MarkLastRequestRoundTrip(uint64_t extra_ns);
  // Rewrites the most recent request record's outcome to kError (validation
  // failure discovered after the request was admitted).
  void MarkLastRequestError();

  // --- Cumulative counters (survive ring wraparound) -----------------------

  uint64_t RequestCount(RequestType type) const {
    return request_counts_[static_cast<size_t>(type)];
  }
  uint64_t total_requests() const { return total_requests_; }
  uint64_t total_events() const { return total_events_; }
  uint64_t round_trips() const { return round_trips_; }
  uint64_t total_flushes() const { return total_flushes_; }
  // Records appended over the buffer's lifetime, including overwritten ones.
  uint64_t total_recorded() const { return total_recorded_; }

  // --- Export --------------------------------------------------------------

  // Records oldest-first.
  std::vector<TraceRecord> Snapshot() const;
  // One JSON object per line, oldest-first.
  std::string ToJsonl() const;
  // Parses the exact subset of JSON that ToJsonl emits; nullopt (with a
  // message in *error) on malformed input.
  static std::optional<std::vector<TraceRecord>> FromJsonl(const std::string& text,
                                                           std::string* error);

 private:
  void Append(const TraceRecord& record, bool is_request);

  std::vector<TraceRecord> ring_;
  size_t capacity_;
  size_t head_ = 0;  // Next write slot.
  size_t size_ = 0;
  bool active_ = false;
  bool record_events_ = true;
  uint32_t filter_mask_ = 0;  // Bit per RequestType; 0 = accept everything.
  static_assert(kRequestTypeCount <= 32, "filter mask is a uint32_t");

  uint64_t next_serial_ = 1;
  // Slot/serial of the most recent *request* record, for MarkLastRequest*.
  // The serial double-check guards against the slot having been overwritten
  // by later records after a wraparound.
  size_t last_request_slot_ = 0;
  uint64_t last_request_serial_ = 0;

  std::array<uint64_t, kRequestTypeCount> request_counts_{};
  uint64_t total_requests_ = 0;
  uint64_t total_events_ = 0;
  uint64_t round_trips_ = 0;
  uint64_t total_flushes_ = 0;
  uint64_t total_recorded_ = 0;
};

}  // namespace xsim

#endif  // SRC_XSIM_TRACE_H_
