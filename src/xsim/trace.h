// Protocol-level tracing (the xscope/xmon of the reproduction).
//
// Section 3.3's efficiency argument is a *traffic* argument: resource caching
// and idle-time batching are justified by how few requests actually reach the
// server.  The aggregate RequestCounters can say "N requests happened" but
// not *which* requests a given script issued, so the paper's per-operation
// traffic numbers were asserted rather than observed.  TraceBuffer closes
// that gap: while active, every request the server executes and every event
// it delivers is appended to a fixed-capacity ring as a structured record
// (monotonic serial, client, request/event type, resource id, transport
// duration, fault-injection outcome).  Traces are inspected programmatically
// (per-type counts for `xtrace expect` assertions), dumped as JSONL for CI
// archiving, and parsed back for round-trip tests.
//
// `duration_ns` is the time the request spent in the simulated transport:
// per-request latency, injected fault delays, and (via MarkLastRoundTrip)
// the round-trip wait of synchronous requests.  Client-side dispatch latency
// lives in tk::EventLoopStats, not here.
//
// Thread safety: the wire transport records traffic from per-connection
// server threads while scripts read summaries from the interpreter thread,
// so every entry point is safe to call concurrently.  Flags and cumulative
// counters are relaxed atomics (hot-path reads stay lock-free); the record
// ring is guarded by an internal mutex.

#ifndef SRC_XSIM_TRACE_H_
#define SRC_XSIM_TRACE_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "src/xsim/error.h"
#include "src/xsim/event.h"
#include "src/xsim/types.h"

namespace xsim {

// What happened to a traced request after fault injection and validation.
enum class TraceOutcome : uint8_t {
  kOk = 0,
  kDelayed,  // Executed, but an injected delay stalled it first.
  kDropped,  // Silently lost by the fault injector.
  kFailed,   // Failed by the fault injector (BadImplementation).
  kError,    // Executed but validation raised an X error (BadWindow, ...).
};

const char* TraceOutcomeName(TraceOutcome outcome);

// Why a wire connection went away.  Backpressure kills used to vanish
// without a trace; every disconnect now lands in the buffer with its reason.
enum class DisconnectReason : uint8_t {
  kBye = 0,          // Orderly kBye handshake.
  kBackpressure,     // Outbound queue stayed full past the timeout.
  kMalformed,        // Unsynchronized byte stream (bad header/frame kind).
  kIoError,          // EOF or socket error (crash, half-close, bounce).
  kDisconnectReasonCount,
};

const char* DisconnectReasonName(DisconnectReason reason);
inline constexpr size_t kDisconnectReasonCount =
    static_cast<size_t>(DisconnectReason::kDisconnectReasonCount);

// One traced request, delivered event, output-buffer flush, or disconnect.
struct TraceRecord {
  uint64_t serial = 0;       // Monotonic over the buffer's lifetime.
  ClientId client = 0;       // Issuing client (requests) / receiver (events).
  bool is_event = false;
  bool is_flush = false;     // Per-batch flush marker (Server::ApplyBatch).
  bool is_disconnect = false;  // Wire connection teardown record.
  DisconnectReason disconnect = DisconnectReason::kBye;  // Valid when is_disconnect.
  RequestType request = RequestType::kOther;  // Valid when !is_event/!is_flush.
  EventType event = EventType::kNone;         // Valid when is_event.
  XId resource = kNone;      // Primary resource id of the request/event.
  uint64_t duration_ns = 0;  // Simulated transport time (see file comment).
  bool round_trip = false;   // Request blocked for a server reply.
  uint32_t batch_size = 0;   // Requests in the flushed batch (is_flush only).
  TraceOutcome outcome = TraceOutcome::kOk;

  bool operator==(const TraceRecord&) const = default;
};

class TraceBuffer {
 public:
  static constexpr size_t kDefaultCapacity = 4096;

  explicit TraceBuffer(size_t capacity = kDefaultCapacity);

  // Start/stop recording.  Stopping keeps the buffer contents (so a trace
  // can be dumped after the workload finished); Clear drops them.
  void Start() { active_.store(true, std::memory_order_relaxed); }
  void Stop() { active_.store(false, std::memory_order_relaxed); }
  bool active() const { return active_.load(std::memory_order_relaxed); }

  // Drops all records and zeroes the cumulative counters (wire traffic
  // included).  Serial numbers keep counting up so records never repeat a
  // serial across a Clear.
  void Clear();

  size_t capacity() const;
  // Resizing drops current records (the ring is re-laid-out).
  void set_capacity(size_t capacity);
  size_t size() const;

  // --- Filtering -----------------------------------------------------------
  //
  // With a request filter installed, only the named request types are stored
  // in the ring; cumulative counters still count every request so that
  // `xtrace expect` and summaries stay exact regardless of the filter.
  void SetRequestFilter(const std::vector<RequestType>& types);
  void ClearRequestFilter() { filter_mask_.store(0, std::memory_order_relaxed); }
  bool HasRequestFilter() const {
    return filter_mask_.load(std::memory_order_relaxed) != 0;
  }
  bool FilterAccepts(RequestType type) const {
    uint32_t mask = filter_mask_.load(std::memory_order_relaxed);
    return mask == 0 || (mask & (1u << static_cast<size_t>(type))) != 0;
  }
  std::vector<RequestType> RequestFilter() const;

  // Event records can be suppressed wholesale (request-only traces).
  void set_record_events(bool enabled) {
    record_events_.store(enabled, std::memory_order_relaxed);
  }
  bool record_events() const {
    return record_events_.load(std::memory_order_relaxed);
  }

  // --- Recording (called by the Server; no-ops while inactive) -------------

  void RecordRequest(ClientId client, RequestType type, XId resource, uint64_t duration_ns,
                     TraceOutcome outcome);
  void RecordEvent(ClientId client, EventType type, WindowId window);
  // One output-buffer flush of `batch_size` requests reached the server.
  // Recorded after the batch's request records (wire order); retained even
  // under a request filter so batching stays observable in filtered dumps.
  // `duration_ns`, when nonzero, is the wall-clock the batch spent applying
  // (shard-lock hold included) -- the signal the shard-contention tests
  // read back out of the ring.
  void RecordFlush(ClientId client, size_t batch_size, uint64_t duration_ns = 0);
  // `frames` wire frames totalling `bytes` crossed the transport (either
  // direction).  Counted while active, like every other cumulative counter;
  // no ring record (frame traffic would drown the request trace).
  void RecordWireTraffic(uint64_t frames, uint64_t bytes);
  // A wire connection for `client` went away.  Unlike the other Record*
  // entry points this counts even while the trace is inactive: disconnect
  // reasons are rare, load-bearing facts (`xtrace summary`, soak invariants)
  // that must not depend on whether the ring happened to be recording.
  void RecordDisconnect(ClientId client, DisconnectReason reason);
  // Flags the most recent request record as a synchronous round trip and
  // adds the round-trip wait to its duration.
  void MarkLastRequestRoundTrip(uint64_t extra_ns);
  // Rewrites the most recent request record's outcome to kError (validation
  // failure discovered after the request was admitted).
  void MarkLastRequestError();

  // --- Cumulative counters (survive ring wraparound) -----------------------

  uint64_t RequestCount(RequestType type) const {
    return request_counts_[static_cast<size_t>(type)].load(std::memory_order_relaxed);
  }
  uint64_t total_requests() const {
    return total_requests_.load(std::memory_order_relaxed);
  }
  uint64_t total_events() const {
    return total_events_.load(std::memory_order_relaxed);
  }
  uint64_t round_trips() const {
    return round_trips_.load(std::memory_order_relaxed);
  }
  uint64_t total_flushes() const {
    return total_flushes_.load(std::memory_order_relaxed);
  }
  uint64_t total_wire_frames() const {
    return total_wire_frames_.load(std::memory_order_relaxed);
  }
  uint64_t total_wire_bytes() const {
    return total_wire_bytes_.load(std::memory_order_relaxed);
  }
  // Records appended over the buffer's lifetime, including overwritten ones.
  uint64_t total_recorded() const {
    return total_recorded_.load(std::memory_order_relaxed);
  }
  uint64_t DisconnectCount(DisconnectReason reason) const {
    return disconnect_counts_[static_cast<size_t>(reason)].load(std::memory_order_relaxed);
  }
  uint64_t total_disconnects() const {
    return total_disconnects_.load(std::memory_order_relaxed);
  }

  // --- Export --------------------------------------------------------------

  // Records oldest-first.
  std::vector<TraceRecord> Snapshot() const;
  // One JSON object per line, oldest-first.
  std::string ToJsonl() const;
  // Parses the exact subset of JSON that ToJsonl emits; nullopt (with a
  // message in *error) on malformed input.
  static std::optional<std::vector<TraceRecord>> FromJsonl(const std::string& text,
                                                           std::string* error);

 private:
  void Append(const TraceRecord& record, bool is_request);

  mutable std::mutex mu_;  // Guards the ring and its bookkeeping below.
  std::vector<TraceRecord> ring_;
  size_t capacity_;
  size_t head_ = 0;  // Next write slot.
  size_t size_ = 0;
  std::atomic<bool> active_{false};
  std::atomic<bool> record_events_{true};
  // Bit per RequestType; 0 = accept everything.
  std::atomic<uint32_t> filter_mask_{0};
  static_assert(kRequestTypeCount <= 32, "filter mask is a uint32_t");

  uint64_t next_serial_ = 1;
  // Slot/serial of the most recent *request* record, for MarkLastRequest*.
  // The serial double-check guards against the slot having been overwritten
  // by later records after a wraparound.
  size_t last_request_slot_ = 0;
  uint64_t last_request_serial_ = 0;

  std::array<std::atomic<uint64_t>, kRequestTypeCount> request_counts_{};
  std::atomic<uint64_t> total_requests_{0};
  std::atomic<uint64_t> total_events_{0};
  std::atomic<uint64_t> round_trips_{0};
  std::atomic<uint64_t> total_flushes_{0};
  std::atomic<uint64_t> total_wire_frames_{0};
  std::atomic<uint64_t> total_wire_bytes_{0};
  std::atomic<uint64_t> total_recorded_{0};
  std::array<std::atomic<uint64_t>, kDisconnectReasonCount> disconnect_counts_{};
  std::atomic<uint64_t> total_disconnects_{0};
};

}  // namespace xsim

#endif  // SRC_XSIM_TRACE_H_
