// Keysym table: symbolic key names <-> keysym codes, as used by key events
// and Tk's bind command (<Escape>, <Return>, plain letters, ...).

#ifndef SRC_XSIM_KEYSYM_H_
#define SRC_XSIM_KEYSYM_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace xsim {

using KeySym = uint32_t;

inline constexpr KeySym kNoSymbol = 0;

// Printable ASCII characters are their own keysyms (as in real X11, where
// XK_a == 'a').  Named function keys live above 0xff00.
enum : KeySym {
  kKeyBackSpace = 0xff08,
  kKeyTab = 0xff09,
  kKeyReturn = 0xff0d,
  kKeyEscape = 0xff1b,
  kKeyDelete = 0xffff,
  kKeyHome = 0xff50,
  kKeyLeft = 0xff51,
  kKeyUp = 0xff52,
  kKeyRight = 0xff53,
  kKeyDown = 0xff54,
  kKeyPrior = 0xff55,  // Page Up.
  kKeyNext = 0xff56,   // Page Down.
  kKeyEnd = 0xff57,
  kKeyShiftL = 0xffe1,
  kKeyShiftR = 0xffe2,
  kKeyControlL = 0xffe3,
  kKeyControlR = 0xffe4,
  kKeyMetaL = 0xffe7,
  kKeyMetaR = 0xffe8,
  kKeyAltL = 0xffe9,
  kKeyAltR = 0xffea,
  kKeyF1 = 0xffbe,
  kKeyF2 = 0xffbf,
  kKeyF3 = 0xffc0,
  kKeyF4 = 0xffc1,
  kKeyF5 = 0xffc2,
  kKeyF6 = 0xffc3,
  kKeyF7 = 0xffc4,
  kKeyF8 = 0xffc5,
  kKeyF9 = 0xffc6,
  kKeyF10 = 0xffc7,
};

// Parses a keysym name: single characters name themselves ("a", "%"), and
// multi-character names use the X names ("space", "Escape", "Return",
// "comma", "F1", ...).  Returns std::nullopt for unknown names.
std::optional<KeySym> KeySymFromName(std::string_view name);

// Inverse of KeySymFromName.  Unknown keysyms format as "<keysym-N>".
std::string KeySymName(KeySym keysym);

// The ASCII string a key event produces (bind's %A substitution): the
// character for printable keysyms (shift-adjusted), "\n" for Return, "\t"
// for Tab, etc.; empty for pure modifiers and function keys.
std::string KeySymToString(KeySym keysym, bool shift);

// True for modifier keys (Shift, Control, Meta, Alt).
bool IsModifierKey(KeySym keysym);

}  // namespace xsim

#endif  // SRC_XSIM_KEYSYM_H_
