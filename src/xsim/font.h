// Synthetic font provider.
//
// A real X server rasterizes fonts; xsim instead provides deterministic
// metrics derived from the font name, so that text layout (button sizing,
// listbox rows, entry cursor positions) is exercised exactly as it would be
// with server-supplied metrics.  Supported name forms:
//
//   "fixed"                          -> 6x13 cell font
//   "8x13", "9x15", ...              -> cell fonts of that size
//   "*-helvetica-bold-r-*-120-*"     -> XLFD-ish: point size / 10 = pixel
//                                       height; width derived from height.

#ifndef SRC_XSIM_FONT_H_
#define SRC_XSIM_FONT_H_

#include <optional>
#include <string>
#include <string_view>

namespace xsim {

struct FontMetrics {
  std::string name;
  int char_width = 6;  // Fixed-pitch advance per character.
  int ascent = 10;
  int descent = 3;

  int line_height() const { return ascent + descent; }
  // Width of a string in pixels (fixed pitch; tabs count as 8 chars).
  int TextWidth(std::string_view text) const;
};

// Parses a font name into metrics; std::nullopt if the name is malformed
// (unparseable XLFD).  Unknown simple names fall back to "fixed" metrics,
// mirroring a server's aliasing behaviour.
std::optional<FontMetrics> ResolveFont(std::string_view name);

}  // namespace xsim

#endif  // SRC_XSIM_FONT_H_
