#include "src/xsim/color.h"

#include <algorithm>
#include <cctype>

namespace xsim {
namespace {

struct NamedColor {
  const char* name;  // Stored lowercase without spaces.
  uint8_t r;
  uint8_t g;
  uint8_t b;
};

// A representative slice of the X11 rgb.txt database (every color the paper,
// the Tk defaults, and the examples mention, plus the common families).
constexpr NamedColor kColors[] = {
    {"black", 0, 0, 0},
    {"white", 255, 255, 255},
    {"red", 255, 0, 0},
    {"green", 0, 255, 0},
    {"blue", 0, 0, 255},
    {"yellow", 255, 255, 0},
    {"cyan", 0, 255, 255},
    {"magenta", 255, 0, 255},
    {"gray", 190, 190, 190},
    {"grey", 190, 190, 190},
    {"lightgray", 211, 211, 211},
    {"lightgrey", 211, 211, 211},
    {"darkgray", 169, 169, 169},
    {"darkgrey", 169, 169, 169},
    {"dimgray", 105, 105, 105},
    {"gray25", 64, 64, 64},
    {"gray50", 127, 127, 127},
    {"gray75", 191, 191, 191},
    {"gray90", 229, 229, 229},
    {"lightblue", 173, 216, 230},
    {"lightyellow", 255, 255, 224},
    {"lightpink", 255, 182, 193},
    {"palepink1", 255, 204, 204},  // Used in Section 4's configure example.
    {"pink", 255, 192, 203},
    {"orange", 255, 165, 0},
    {"purple", 160, 32, 240},
    {"brown", 165, 42, 42},
    {"maroon", 176, 48, 96},
    {"navy", 0, 0, 128},
    {"navyblue", 0, 0, 128},
    {"skyblue", 135, 206, 235},
    {"steelblue", 70, 130, 180},
    {"royalblue", 65, 105, 225},
    {"cornflowerblue", 100, 149, 237},
    {"cadetblue", 95, 158, 160},
    {"aquamarine", 127, 255, 212},
    {"seagreen", 46, 139, 87},
    {"mediumseagreen", 60, 179, 113},  // The paper's Section 3.3 example.
    {"darkseagreen", 143, 188, 143},
    {"lightseagreen", 32, 178, 170},
    {"forestgreen", 34, 139, 34},
    {"darkgreen", 0, 100, 0},
    {"limegreen", 50, 205, 50},
    {"palegreen", 152, 251, 152},
    {"springgreen", 0, 255, 127},
    {"olivedrab", 107, 142, 35},
    {"khaki", 240, 230, 140},
    {"gold", 255, 215, 0},
    {"goldenrod", 218, 165, 32},
    {"salmon", 250, 128, 114},
    {"coral", 255, 127, 80},
    {"tomato", 255, 99, 71},
    {"orangered", 255, 69, 0},
    {"firebrick", 178, 34, 34},
    {"indianred", 205, 92, 92},
    {"violetred", 208, 32, 144},
    {"hotpink", 255, 105, 180},
    {"deeppink", 255, 20, 147},
    {"orchid", 218, 112, 214},
    {"plum", 221, 160, 221},
    {"violet", 238, 130, 238},
    {"blueviolet", 138, 43, 226},
    {"slateblue", 106, 90, 205},
    {"mediumblue", 0, 0, 205},
    {"dodgerblue", 30, 144, 255},
    {"deepskyblue", 0, 191, 255},
    {"turquoise", 64, 224, 208},
    {"wheat", 245, 222, 179},
    {"tan", 210, 180, 140},
    {"chocolate", 210, 105, 30},
    {"sienna", 160, 82, 45},
    {"peru", 205, 133, 63},
    {"beige", 245, 245, 220},
    {"ivory", 255, 255, 240},
    {"snow", 255, 250, 250},
    {"seashell", 255, 245, 238},
    {"bisque", 255, 228, 196},
    {"antiquewhite", 250, 235, 215},
    {"lavender", 230, 230, 250},
    {"thistle", 216, 191, 216},
    {"ghostwhite", 248, 248, 255},
    {"whitesmoke", 245, 245, 245},
};

std::string NormalizeName(std::string_view name) {
  std::string out;
  out.reserve(name.size());
  for (char c : name) {
    if (c == ' ') {
      continue;
    }
    out.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  }
  return out;
}

std::optional<int> HexDigit(char c) {
  if (c >= '0' && c <= '9') {
    return c - '0';
  }
  if (c >= 'a' && c <= 'f') {
    return c - 'a' + 10;
  }
  if (c >= 'A' && c <= 'F') {
    return c - 'A' + 10;
  }
  return std::nullopt;
}

}  // namespace

std::optional<Rgb> LookupColor(std::string_view name) {
  if (name.empty()) {
    return std::nullopt;
  }
  if (name[0] == '#') {
    std::string_view digits = name.substr(1);
    if (digits.size() != 3 && digits.size() != 6 && digits.size() != 12) {
      return std::nullopt;
    }
    size_t per = digits.size() / 3;
    uint32_t components[3];
    for (int i = 0; i < 3; ++i) {
      uint32_t value = 0;
      for (size_t j = 0; j < per; ++j) {
        std::optional<int> digit = HexDigit(digits[i * per + j]);
        if (!digit) {
          return std::nullopt;
        }
        value = value * 16 + static_cast<uint32_t>(*digit);
      }
      // Scale to 8 bits.
      if (per == 1) {
        value = value * 17;
      } else if (per == 4) {
        value = value >> 8;
      }
      components[i] = value;
    }
    Rgb rgb;
    rgb.r = static_cast<uint8_t>(components[0]);
    rgb.g = static_cast<uint8_t>(components[1]);
    rgb.b = static_cast<uint8_t>(components[2]);
    return rgb;
  }
  std::string normalized = NormalizeName(name);
  for (const NamedColor& color : kColors) {
    if (normalized == color.name) {
      Rgb rgb;
      rgb.r = color.r;
      rgb.g = color.g;
      rgb.b = color.b;
      return rgb;
    }
  }
  return std::nullopt;
}

std::optional<std::string> ColorName(Rgb rgb) {
  for (const NamedColor& color : kColors) {
    if (color.r == rgb.r && color.g == rgb.g && color.b == rgb.b) {
      return std::string(color.name);
    }
  }
  return std::nullopt;
}

Rgb LightShade(Rgb base) {
  Rgb out;
  out.r = static_cast<uint8_t>(std::min(255, base.r + (255 - base.r) * 4 / 10 + 25));
  out.g = static_cast<uint8_t>(std::min(255, base.g + (255 - base.g) * 4 / 10 + 25));
  out.b = static_cast<uint8_t>(std::min(255, base.b + (255 - base.b) * 4 / 10 + 25));
  return out;
}

Rgb DarkShade(Rgb base) {
  Rgb out;
  out.r = static_cast<uint8_t>(base.r * 6 / 10);
  out.g = static_cast<uint8_t>(base.g * 6 / 10);
  out.b = static_cast<uint8_t>(base.b * 6 / 10);
  return out;
}

}  // namespace xsim
