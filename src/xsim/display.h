// Display: the client-side connection handle, shaped like Xlib's Display*.
//
// Each Tk application opens its own Display on a shared Server, which is how
// multiple "applications" coexist on one display for the `send` command and
// the ICCCM selection protocol, exactly as in the paper's environment.

#ifndef SRC_XSIM_DISPLAY_H_
#define SRC_XSIM_DISPLAY_H_

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <utility>

#include "src/xsim/error.h"
#include "src/xsim/event.h"
#include "src/xsim/server.h"
#include "src/xsim/types.h"

namespace xsim {

class Display {
 public:
  // Opens a connection to `server`.  The server must outlive the Display.
  static std::unique_ptr<Display> Open(Server& server, std::string client_name);
  ~Display();

  Display(const Display&) = delete;
  Display& operator=(const Display&) = delete;

  Server& server() { return server_; }
  ClientId client_id() const { return client_; }
  WindowId root() const { return server_.root(); }

  // --- Error handling ---
  //
  // The server delivers X errors for this connection here (the Display
  // installs itself as the client's error sink on Open).  Without a handler
  // the Display just records the error, mirroring Xlib's default of not
  // crashing the client for non-fatal errors.
  using ErrorHandler = std::function<void(const XError&)>;
  void set_error_handler(ErrorHandler handler) { error_handler_ = std::move(handler); }
  const XError& last_error() const { return last_error_; }
  uint64_t error_count() const { return error_count_; }
  void reset_error_count() { error_count_ = 0; }
  // Sequence number of the most recent request on this connection.
  uint64_t request_sequence() const { return server_.ClientSequence(client_); }

  // Windows.
  WindowId CreateWindow(WindowId parent, int x, int y, int width, int height,
                        int border_width = 0) {
    return server_.CreateWindow(client_, parent, x, y, width, height, border_width);
  }
  bool DestroyWindow(WindowId w) { return server_.DestroyWindow(client_, w); }
  bool MapWindow(WindowId w) { return server_.MapWindow(client_, w); }
  bool UnmapWindow(WindowId w) { return server_.UnmapWindow(client_, w); }
  bool MoveResizeWindow(WindowId w, int x, int y, int width, int height) {
    return server_.ConfigureWindow(client_, w, x, y, width, height, -1);
  }
  bool ResizeWindow(WindowId w, int width, int height) {
    return server_.ConfigureWindow(client_, w, -1, -1, width, height, -1);
  }
  bool RaiseWindow(WindowId w) { return server_.RaiseWindow(client_, w); }
  void SelectInput(WindowId w, uint32_t mask) { server_.SelectInput(client_, w, mask); }
  bool SetWindowBackground(WindowId w, Pixel p) {
    return server_.SetWindowBackground(client_, w, p);
  }

  // Atoms and properties.
  Atom InternAtom(std::string_view name) { return server_.InternAtom(client_, name); }
  std::string AtomName(Atom atom) { return server_.AtomName(atom); }
  bool ChangeProperty(WindowId w, Atom property, std::string value) {
    return server_.ChangeProperty(client_, w, property, std::move(value));
  }
  std::optional<std::string> GetProperty(WindowId w, Atom property) {
    return server_.GetProperty(client_, w, property);
  }
  bool DeleteProperty(WindowId w, Atom property) {
    return server_.DeleteProperty(client_, w, property);
  }

  // Resources.
  std::optional<Pixel> AllocNamedColor(std::string_view name) {
    return server_.AllocNamedColor(client_, name);
  }
  Pixel AllocColor(Rgb rgb) { return server_.AllocColor(client_, rgb); }
  std::optional<FontId> LoadFont(std::string_view name) {
    return server_.LoadFont(client_, name);
  }
  const FontMetrics* QueryFont(FontId font) { return server_.QueryFont(font); }
  CursorId CreateNamedCursor(std::string_view name) {
    return server_.CreateNamedCursor(client_, name);
  }
  BitmapId CreateBitmap(std::string_view name, int width, int height) {
    return server_.CreateBitmap(client_, name, width, height);
  }

  // GCs and drawing.
  GcId CreateGc() { return server_.CreateGc(client_); }
  void FreeGc(GcId gc) { server_.FreeGc(client_, gc); }
  bool ChangeGc(GcId gc, const Server::Gc& values) {
    return server_.ChangeGc(client_, gc, values);
  }
  void ClearWindow(WindowId w) { server_.ClearWindow(client_, w); }
  void FillRectangle(WindowId w, GcId gc, const Rect& rect) {
    server_.FillRectangle(client_, w, gc, rect);
  }
  void DrawRectangle(WindowId w, GcId gc, const Rect& rect) {
    server_.DrawRectangle(client_, w, gc, rect);
  }
  void DrawLine(WindowId w, GcId gc, int x0, int y0, int x1, int y1) {
    server_.DrawLine(client_, w, gc, x0, y0, x1, y1);
  }
  void DrawString(WindowId w, GcId gc, int x, int y, std::string_view text) {
    server_.DrawString(client_, w, gc, x, y, text);
  }

  // Focus and selections.
  void SetInputFocus(WindowId w) { server_.SetInputFocus(client_, w); }
  void SetSelectionOwner(Atom selection, WindowId owner) {
    server_.SetSelectionOwner(client_, selection, owner);
  }
  WindowId GetSelectionOwner(Atom selection) {
    return server_.GetSelectionOwner(client_, selection);
  }
  void ConvertSelection(Atom selection, Atom target, Atom property, WindowId requestor) {
    server_.ConvertSelection(client_, selection, target, property, requestor);
  }
  void SendSelectionNotify(WindowId requestor, Atom selection, Atom target, Atom property) {
    server_.SendSelectionNotify(client_, requestor, selection, target, property);
  }
  void SendEvent(WindowId destination, const Event& event, uint32_t mask = 0) {
    server_.SendEvent(client_, destination, event, mask);
  }

  // Events.
  bool Pending() const { return server_.HasPendingEvents(client_); }
  size_t PendingCount() const { return server_.PendingEventCount(client_); }
  bool PollEvent(Event* out) { return server_.NextEvent(client_, out); }

 private:
  Display(Server& server, ClientId client) : server_(server), client_(client) {}

  void HandleError(const XError& error);

  Server& server_;
  ClientId client_;
  ErrorHandler error_handler_;
  XError last_error_;
  uint64_t error_count_ = 0;
};

}  // namespace xsim

#endif  // SRC_XSIM_DISPLAY_H_
