// Display: the client-side connection handle, shaped like Xlib's Display*.
//
// Each Tk application opens its own Display on a shared Server, which is how
// multiple "applications" coexist on one display for the `send` command and
// the ICCCM selection protocol, exactly as in the paper's environment.
//
// Like Xlib, the Display buffers one-way requests in an output queue instead
// of delivering them to the server immediately.  The queue drains into
// the transport when:
//   * Flush() or Sync() is called explicitly,
//   * the queue reaches its capacity (automatic flush),
//   * a reply-bearing query is issued (InternAtom, GetProperty, ...), or
//   * the client asks for events (Pending/PollEvent -- XPending semantics).
// Only queries block for a reply, so only queries (and Sync) count as round
// trips.  Errors raised by buffered requests surface at the next flush, each
// tagged with the sequence number the client assigned at enqueue time --
// Xlib's deferred asynchronous error model.  SetSynchronous(true) restores
// the old call-through behaviour (XSynchronize): every request applies
// immediately, returns its real status, and costs a full round trip.
//
// Since PR 5 the delivery step itself is a wire::Transport: either the
// in-process direct path or a real byte stream of encoded frames to the
// threaded wire server (TCLK_TRANSPORT=wire).  The Display's observable
// behaviour is identical on both.

#ifndef SRC_XSIM_DISPLAY_H_
#define SRC_XSIM_DISPLAY_H_

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "src/xsim/error.h"
#include "src/xsim/event.h"
#include "src/xsim/request.h"
#include "src/xsim/server.h"
#include "src/xsim/session_journal.h"
#include "src/xsim/types.h"
#include "src/xsim/wire/transport.h"

namespace xsim {

class Display {
 public:
  // Default output-queue capacity before an automatic flush.
  static constexpr size_t kDefaultOutputCapacity = 64;

  // Opens a connection to `server`.  The server must outlive the Display.
  // The two-argument form picks the transport from TCLK_TRANSPORT.
  static std::unique_ptr<Display> Open(Server& server, std::string client_name);
  static std::unique_ptr<Display> Open(Server& server, std::string client_name,
                                       wire::TransportKind transport);
  ~Display();

  Display(const Display&) = delete;
  Display& operator=(const Display&) = delete;

  // The shared server object.  Tests and the Tk test harness use this for
  // input injection and raster inspection; protocol traffic goes through the
  // transport.
  Server& server() { return server_; }
  ClientId client_id() const { return client_; }
  WindowId root() const { return root_; }
  wire::TransportKind transport_kind() const { return transport_->kind(); }
  const char* transport_name() const { return wire::TransportKindName(transport_->kind()); }

  // --- Output buffer (XFlush / XSync / XSynchronize) ---

  // Ships every queued request to the server as one batch.
  void Flush();
  // Flush, then one no-op round trip so the client has seen the server
  // process (and report errors for) everything it sent.
  void Sync();
  // XSynchronize: apply each request immediately with a per-request round
  // trip; buffered methods then return real statuses instead of optimism.
  void SetSynchronous(bool on);
  bool synchronous() const { return synchronous_; }
  size_t pending_requests() const { return queue_.size(); }
  size_t output_capacity() const { return output_capacity_; }
  void set_output_capacity(size_t capacity) {
    output_capacity_ = capacity == 0 ? 1 : capacity;
    MaybeAutoFlush();
  }
  uint64_t flush_count() const { return flush_count_; }
  uint64_t auto_flush_count() const { return auto_flush_count_; }

  // --- Error handling ---
  //
  // The server delivers X errors for this connection here (the Display
  // installs itself as the connection's error sink on Open).  With
  // buffering, delivery happens while a flush or query drains the queue; the
  // error's `sequence` identifies the offending request.  Without a handler
  // the Display just records the error, mirroring Xlib's default of not
  // crashing the client for non-fatal errors.
  using ErrorHandler = std::function<void(const XError&)>;
  void set_error_handler(ErrorHandler handler) { error_handler_ = std::move(handler); }
  const XError& last_error() const { return last_error_; }
  uint64_t error_count() const { return error_count_; }
  void reset_error_count() { error_count_ = 0; }
  // Sequence number of the most recent request on this connection
  // (including requests still sitting in the output queue).
  uint64_t request_sequence() const { return next_sequence_; }

  // --- Connection lifecycle (PR 7) ---
  //
  // The XSetIOErrorHandler analogue -- except the handler may recover.  When
  // the transport dies without an orderly Disconnect (EOF, server bounce,
  // missed heartbeat), the Display invokes the handler; without one it
  // attempts Reconnect() itself.  A handler returning false leaves the
  // Display closed, Xlib's fatal behaviour.
  using IOErrorHandler = std::function<bool(Display&)>;
  void set_io_error_handler(IOErrorHandler handler) {
    io_error_handler_ = std::move(handler);
  }
  // Invoked after every successful reconnect + journal replay; the toolkit
  // hangs a full-redraw here (replay restores structure, not pixels).
  void set_reconnect_handler(std::function<void()> handler) {
    reconnect_handler_ = std::move(handler);
  }

  // Orderly close: drains the output queue to exhaustion (error handlers
  // may enqueue fresh requests mid-flush, so one Flush is not enough), then
  // sends the farewell.  Idempotent; the destructor calls it too.
  void Disconnect();
  // Re-dials the server with exponential backoff + deterministic jitter,
  // resumes the retained session when the token still names one, and
  // replays the session journal.  False when every attempt failed, the
  // Display is closing, or the transport is direct (nothing to re-dial).
  bool Reconnect();
  // Heartbeat: pings the server and waits up to `timeout_ms` for the pong.
  // On a missed deadline the connection is declared dead and the io-error
  // path (reconnect by default) runs; returns the final liveness.
  bool CheckLiveness(uint64_t timeout_ms = 1000);
  // X11 SetCloseDownMode: what the server does with this client's resources
  // when the connection drops.
  bool SetCloseDownMode(CloseDownMode mode);

  // Lifecycle introspection (surfaced by Tk's `info connection`).
  bool io_error() const { return transport_->io_error(); }
  uint64_t session_token() const { return transport_->session_token(); }
  bool resumed() const { return transport_->resumed(); }
  uint64_t heartbeats_sent() const { return heartbeats_sent_; }
  uint64_t reconnect_attempts() const { return reconnect_attempts_; }
  uint64_t reconnects() const { return reconnects_; }
  uint64_t resumes() const { return resumes_; }
  uint64_t replayed_requests() const { return replayed_requests_; }
  const char* last_disconnect_reason() const { return last_disconnect_reason_; }
  const SessionJournal& journal() const { return journal_; }

  // Backoff tuning (tests dial these down; the jitter is a deterministic
  // hash of (client, attempt), so reconnect storms stay reproducible).
  void set_max_reconnect_attempts(int attempts) {
    max_reconnect_attempts_ = attempts < 1 ? 1 : attempts;
  }
  void set_backoff_base_ms(uint64_t ms) { backoff_base_ms_ = ms; }
  uint64_t BackoffDelayMs(int attempt) const;

  // Windows.
  WindowId CreateWindow(WindowId parent, int x, int y, int width, int height,
                        int border_width = 0);
  bool DestroyWindow(WindowId w);
  bool MapWindow(WindowId w);
  bool UnmapWindow(WindowId w);
  bool MoveResizeWindow(WindowId w, int x, int y, int width, int height);
  bool ResizeWindow(WindowId w, int width, int height);
  bool RaiseWindow(WindowId w);
  // XReparentWindow: moves `w` (with its subtree) under `parent` at (x, y).
  bool ReparentWindow(WindowId w, WindowId parent, int x, int y);
  void SelectInput(WindowId w, uint32_t mask);
  bool SetWindowBackground(WindowId w, Pixel p);

  // Atoms and properties.  InternAtom and GetProperty need replies: they
  // flush and block for the reply (one round trip each).
  Atom InternAtom(std::string_view name);
  std::string AtomName(Atom atom);
  bool ChangeProperty(WindowId w, Atom property, std::string value);
  std::optional<std::string> GetProperty(WindowId w, Atom property);
  bool DeleteProperty(WindowId w, Atom property);

  // Resources (reply-bearing queries: flush + round trip).
  std::optional<Pixel> AllocNamedColor(std::string_view name);
  Pixel AllocColor(Rgb rgb);
  std::optional<FontId> LoadFont(std::string_view name);
  // Metrics live in a per-connection cache (over the wire the reply is
  // copied into it), so the pointer stays valid for the Display's lifetime.
  const FontMetrics* QueryFont(FontId font);
  CursorId CreateNamedCursor(std::string_view name);
  BitmapId CreateBitmap(std::string_view name, int width, int height);

  // GCs and drawing (one-way: buffered).  CreateGc allocates the id
  // client-side, so it needs no reply -- as in Xlib.
  GcId CreateGc();
  void FreeGc(GcId gc);
  bool ChangeGc(GcId gc, const Server::Gc& values);
  void ClearWindow(WindowId w);
  void ClearArea(WindowId w, const Rect& area);
  void FillRectangle(WindowId w, GcId gc, const Rect& rect);
  void DrawRectangle(WindowId w, GcId gc, const Rect& rect);
  void DrawLine(WindowId w, GcId gc, int x0, int y0, int x1, int y1);
  void DrawString(WindowId w, GcId gc, int x, int y, std::string_view text);

  // Focus and selections.
  void SetInputFocus(WindowId w);
  WindowId GetInputFocus();  // Query: flush + round trip.
  void SetSelectionOwner(Atom selection, WindowId owner);
  WindowId GetSelectionOwner(Atom selection);  // Query: flush + round trip.
  void ConvertSelection(Atom selection, Atom target, Atom property, WindowId requestor);
  void SendSelectionNotify(WindowId requestor, Atom selection, Atom target, Atom property);
  void SendEvent(WindowId destination, const Event& event, uint32_t mask = 0);

  // Events.  Asking for events flushes the output queue first (XPending /
  // XNextEvent semantics: the request buffer never starves the server while
  // the client waits for a response to work it hasn't sent).
  bool Pending();
  size_t PendingCount();
  bool PollEvent(Event* out);

 private:
  Display(Server& server, std::string client_name, wire::TransportKind kind);

  void HandleError(const XError& error);
  // Transport died outside an orderly Disconnect: run the io-error handler
  // (default: Reconnect).  Returns true when the connection is usable again.
  bool HandleIOError();
  // Ships the session journal through the fresh transport, bracketed by
  // kReplayMark so re-creates upsert instead of BadValue.
  void ReplayJournal();
  // Assigns the next sequence number and either queues the request or (in
  // synchronous mode) applies it immediately.  Returns the request's status
  // in synchronous mode; true (optimistically, like Xlib) when buffered.
  bool Enqueue(Request&& request);
  void MaybeAutoFlush();
  // Flush + query + resync: the shape of every reply-bearing call.
  wire::WireReply RoundTrip(const wire::WireQuery& query);
  // After a query the server-side sequence counter has advanced past the
  // client's; adopt it.
  void Resync() { next_sequence_ = transport_->SequenceSync(); }
  XId AllocResourceId() { return resource_id_base_ + next_resource_offset_++; }

  Server& server_;
  std::unique_ptr<wire::Transport> transport_;
  ClientId client_ = 0;
  WindowId root_ = kNone;
  ErrorHandler error_handler_;
  XError last_error_;
  uint64_t error_count_ = 0;

  // Connection lifecycle.
  std::string client_name_;  // Kept for the reconnect re-handshake.
  wire::TransportKind kind_ = wire::TransportKind::kDirect;
  SessionJournal journal_;
  IOErrorHandler io_error_handler_;
  std::function<void()> reconnect_handler_;
  bool closing_ = false;        // Orderly Disconnect in progress / done.
  bool reconnecting_ = false;   // Re-entrancy guard for Reconnect.
  bool handling_io_error_ = false;
  int max_reconnect_attempts_ = 8;
  uint64_t backoff_base_ms_ = 1;
  uint64_t ping_nonce_ = 0;
  uint64_t heartbeats_sent_ = 0;
  uint64_t reconnect_attempts_ = 0;
  uint64_t reconnects_ = 0;
  uint64_t resumes_ = 0;
  uint64_t replayed_requests_ = 0;
  const char* last_disconnect_reason_ = "none";

  std::vector<Request> queue_;
  size_t output_capacity_ = kDefaultOutputCapacity;
  bool synchronous_ = false;
  bool flushing_ = false;  // Re-entrancy guard (error handlers may issue requests).
  uint64_t next_sequence_ = 0;
  uint64_t flush_count_ = 0;
  uint64_t auto_flush_count_ = 0;
  std::map<FontId, FontMetrics> font_cache_;
  // Client-side resource-id allocation (Xlib's XAllocID): each connection
  // owns a disjoint id range, so CreateWindow/CreateGc need no reply.
  XId resource_id_base_ = 0;
  XId next_resource_offset_ = 0;
};

}  // namespace xsim

#endif  // SRC_XSIM_DISPLAY_H_
