#include "src/xsim/display.h"

namespace xsim {

std::unique_ptr<Display> Display::Open(Server& server, std::string client_name) {
  ClientId id = server.RegisterClient(std::move(client_name));
  auto display = std::unique_ptr<Display>(new Display(server, id));
  server.SetErrorSink(id, [raw = display.get()](const XError& error) {
    raw->HandleError(error);
  });
  return display;
}

Display::~Display() { server_.UnregisterClient(client_); }

void Display::HandleError(const XError& error) {
  last_error_ = error;
  ++error_count_;
  if (error_handler_) {
    error_handler_(error);
  }
}

}  // namespace xsim
