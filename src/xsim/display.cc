#include "src/xsim/display.h"

#include <chrono>
#include <thread>

#include "src/xsim/color.h"

namespace xsim {

namespace {
// Each connection owns a disjoint client-side resource-id range, like the
// resource-id-base/mask the real server hands Xlib at connection setup.
constexpr XId kResourceIdRange = 0x00100000;

// splitmix64: the deterministic jitter source for reconnect backoff.  Keyed
// by (client, attempt) so a storm of reconnecting clients de-synchronizes
// reproducibly -- same seed, same schedule, run after run.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}
}  // namespace

std::unique_ptr<Display> Display::Open(Server& server, std::string client_name) {
  return Open(server, std::move(client_name), wire::TransportKindFromEnv());
}

std::unique_ptr<Display> Display::Open(Server& server, std::string client_name,
                                       wire::TransportKind transport) {
  return std::unique_ptr<Display>(
      new Display(server, std::move(client_name), transport));
}

Display::Display(Server& server, std::string client_name, wire::TransportKind kind)
    : server_(server), client_name_(std::move(client_name)), kind_(kind) {
  transport_ = wire::Connect(server, kind, client_name_,
                             [this](const XError& error) { HandleError(error); });
  client_ = transport_->client_id();
  root_ = transport_->root();
  next_sequence_ = transport_->SequenceSync();
  resource_id_base_ = client_ * kResourceIdRange;
}

Display::~Display() { Disconnect(); }

void Display::Disconnect() {
  if (closing_) {
    return;
  }
  // Drain to exhaustion, not just once: a deferred error delivered by the
  // flush may run a handler that enqueues fresh requests (the re-entrancy
  // guard parks them in the queue), and the farewell must not strand them.
  // Bounded so a pathological handler that enqueues forever still ends.
  for (int round = 0; round < 16 && !queue_.empty(); ++round) {
    if (!transport_->Alive() || transport_->io_error()) {
      break;
    }
    Flush();
  }
  closing_ = true;
  last_disconnect_reason_ = "bye";
  transport_->Close();
}

void Display::HandleError(const XError& error) {
  last_error_ = error;
  ++error_count_;
  if (error_handler_) {
    error_handler_(error);
  }
}

// ---------------------------------------------------------------------------
// Connection lifecycle.

bool Display::HandleIOError() {
  if (closing_ || reconnecting_ || handling_io_error_) {
    return false;
  }
  if (!transport_->io_error()) {
    // Dead-but-connected (KillClient) is not an IO error; the connection
    // stays down on purpose.
    return false;
  }
  last_disconnect_reason_ = "io";
  handling_io_error_ = true;
  bool recovered = io_error_handler_ ? io_error_handler_(*this) : Reconnect();
  handling_io_error_ = false;
  return recovered;
}

uint64_t Display::BackoffDelayMs(int attempt) const {
  // Exponential with a cap: base, 2*base, 4*base, ... up to 64*base.
  int shift = attempt < 6 ? attempt : 6;
  uint64_t base = backoff_base_ms_ << shift;
  uint64_t jitter = Mix64((static_cast<uint64_t>(client_) << 16) |
                          static_cast<uint64_t>(attempt));
  return base + jitter % (base + 1);
}

bool Display::Reconnect() {
  if (closing_ || reconnecting_ || kind_ == wire::TransportKind::kDirect) {
    return false;
  }
  reconnecting_ = true;
  uint64_t token = transport_->session_token();
  bool dialed = false;
  for (int attempt = 0; attempt < max_reconnect_attempts_; ++attempt) {
    ++reconnect_attempts_;
    if (attempt > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(BackoffDelayMs(attempt - 1)));
    }
    auto fresh = wire::Connect(server_, kind_, client_name_,
                               [this](const XError& error) { HandleError(error); }, token);
    if (fresh->client_id() != 0 && !fresh->io_error()) {
      transport_ = std::move(fresh);
      dialed = true;
      break;
    }
  }
  if (!dialed) {
    reconnecting_ = false;
    return false;
  }
  ++reconnects_;
  if (transport_->resumed()) {
    ++resumes_;
  }
  // A non-resumed handshake registered a fresh ClientId; adopt it, but keep
  // the original resource-id range: every id in the journal (and in the
  // toolkit's widgets) lives there, and the server accepts any client-chosen
  // id that is free -- which they all are after a DestroyAll teardown.
  client_ = transport_->client_id();
  if (resource_id_base_ == 0) {
    // The display never dialed successfully (opened while the server was
    // bouncing): this is its first real client id, so adopt its range.
    resource_id_base_ = client_ * kResourceIdRange;
  }
  root_ = transport_->root();
  next_sequence_ = transport_->SequenceSync();
  ReplayJournal();
  // Requests queued before the drop were never delivered (their batch died
  // with the old socket) but are already folded into the journal the replay
  // just shipped; drop them rather than double-applying the non-idempotent
  // ones.
  queue_.clear();
  reconnecting_ = false;
  if (reconnect_handler_) {
    reconnect_handler_();
  }
  return true;
}

void Display::ReplayJournal() {
  std::vector<Request> batch = journal_.ReplayBatch(root_);
  Request begin;
  begin.op = RequestOpcode::kReplayMark;
  begin.mask = 1;
  batch.insert(batch.begin(), std::move(begin));
  Request end;
  end.op = RequestOpcode::kReplayMark;
  end.mask = 0;
  batch.push_back(std::move(end));
  for (Request& request : batch) {
    request.sequence = ++next_sequence_;
  }
  // Straight through the transport, not Enqueue: replay must not be
  // re-journaled, re-counted, or batched behind anything else.
  transport_->SendBatch(batch);
  replayed_requests_ += batch.size() - 2;  // The marks are framing, not state.
  Resync();
}

bool Display::CheckLiveness(uint64_t timeout_ms) {
  if (closing_) {
    return false;
  }
  if (transport_->io_error()) {
    return HandleIOError();
  }
  ++heartbeats_sent_;
  if (transport_->Ping(++ping_nonce_, timeout_ms)) {
    return true;
  }
  return HandleIOError();
}

bool Display::SetCloseDownMode(CloseDownMode mode) {
  Request request;
  request.op = RequestOpcode::kSetCloseDownMode;
  request.mask = static_cast<uint32_t>(mode);
  return Enqueue(std::move(request));
}

// ---------------------------------------------------------------------------
// Output buffer.

void Display::Flush() {
  if (queue_.empty() || flushing_) {
    return;
  }
  flushing_ = true;
  // Swap out the queue first: the batch may deliver errors whose handlers
  // issue fresh requests, which then land in a clean queue.
  std::vector<Request> batch;
  batch.swap(queue_);
  transport_->SendBatch(batch);
  ++flush_count_;
  flushing_ = false;
  if (transport_->io_error()) {
    // The connection died under the batch (server bounce, half-close).  The
    // requests are already folded into the session journal, so the default
    // reconnect handler re-asserts them via replay.
    HandleIOError();
  }
}

void Display::Sync() {
  Flush();
  // The no-op query is the round trip: once it returns, every request ahead
  // of it has been processed and its errors delivered (XSync semantics; real
  // Xlib uses GetInputFocus as the throwaway request).
  wire::WireQuery query;
  query.op = wire::QueryOpcode::kNoOpRoundTrip;
  transport_->Query(query);
  if (transport_->io_error()) {
    HandleIOError();
  }
  Resync();
}

void Display::SetSynchronous(bool on) {
  if (on) {
    Flush();  // Preserve ordering across the mode switch.
  }
  synchronous_ = on;
}

bool Display::Enqueue(Request&& request) {
  if (!transport_->Alive()) {
    // Distinguish a broken wire (recoverable: reconnect and carry on) from a
    // KillClient'ed connection (dead on purpose: swallow requests).
    if (!(transport_->io_error() && HandleIOError() && transport_->Alive())) {
      return false;
    }
  }
  request.sequence = ++next_sequence_;
  journal_.Note(request);
  if (synchronous_) {
    bool ok = transport_->SendRequestSync(request);
    if (!ok && transport_->io_error() && HandleIOError()) {
      // The reconnect replayed the journal (this request included); one
      // retry delivers its synchronous status.
      request.sequence = ++next_sequence_;
      ok = transport_->SendRequestSync(request);
    }
    return ok;
  }
  queue_.push_back(std::move(request));
  MaybeAutoFlush();
  return true;
}

void Display::MaybeAutoFlush() {
  if (!flushing_ && queue_.size() >= output_capacity_) {
    ++auto_flush_count_;
    Flush();
  }
}

wire::WireReply Display::RoundTrip(const wire::WireQuery& query) {
  Flush();
  wire::WireReply reply = transport_->Query(query);
  if (transport_->io_error() && HandleIOError()) {
    reply = transport_->Query(query);  // Retry once on the fresh connection.
  }
  Resync();
  return reply;
}

// ---------------------------------------------------------------------------
// Windows (one-way: buffered).

WindowId Display::CreateWindow(WindowId parent, int x, int y, int width, int height,
                               int border_width) {
  WindowId id = AllocResourceId();
  Request request;
  request.op = RequestOpcode::kCreateWindow;
  request.window = parent;
  request.resource = id;
  request.x = x;
  request.y = y;
  request.width = width;
  request.height = height;
  request.border_width = border_width;
  return Enqueue(std::move(request)) ? id : kNone;
}

bool Display::DestroyWindow(WindowId w) {
  Request request;
  request.op = RequestOpcode::kDestroyWindow;
  request.window = w;
  return Enqueue(std::move(request));
}

bool Display::MapWindow(WindowId w) {
  Request request;
  request.op = RequestOpcode::kMapWindow;
  request.window = w;
  return Enqueue(std::move(request));
}

bool Display::UnmapWindow(WindowId w) {
  Request request;
  request.op = RequestOpcode::kUnmapWindow;
  request.window = w;
  return Enqueue(std::move(request));
}

bool Display::MoveResizeWindow(WindowId w, int x, int y, int width, int height) {
  Request request;
  request.op = RequestOpcode::kConfigureWindow;
  request.window = w;
  request.x = x;
  request.y = y;
  request.width = width;
  request.height = height;
  request.border_width = -1;
  return Enqueue(std::move(request));
}

bool Display::ResizeWindow(WindowId w, int width, int height) {
  Request request;
  request.op = RequestOpcode::kConfigureWindow;
  request.window = w;
  request.x = -1;
  request.y = -1;
  request.width = width;
  request.height = height;
  request.border_width = -1;
  return Enqueue(std::move(request));
}

bool Display::RaiseWindow(WindowId w) {
  Request request;
  request.op = RequestOpcode::kRaiseWindow;
  request.window = w;
  return Enqueue(std::move(request));
}

bool Display::ReparentWindow(WindowId w, WindowId parent, int x, int y) {
  Request request;
  request.op = RequestOpcode::kReparentWindow;
  request.window = w;
  request.resource = parent;
  request.x = x;
  request.y = y;
  return Enqueue(std::move(request));
}

void Display::SelectInput(WindowId w, uint32_t mask) {
  Request request;
  request.op = RequestOpcode::kSelectInput;
  request.window = w;
  request.mask = mask;
  Enqueue(std::move(request));
}

bool Display::SetWindowBackground(WindowId w, Pixel p) {
  Request request;
  request.op = RequestOpcode::kSetWindowBackground;
  request.window = w;
  request.pixel = p;
  return Enqueue(std::move(request));
}

// ---------------------------------------------------------------------------
// Atoms and properties.

Atom Display::InternAtom(std::string_view name) {
  wire::WireQuery query;
  query.op = wire::QueryOpcode::kInternAtom;
  query.text = std::string(name);
  return static_cast<Atom>(RoundTrip(query).value);
}

std::string Display::AtomName(Atom atom) {
  // Free introspection in the direct path, so no flush and no round-trip
  // accounting; the wire path pays a frame exchange that only the wire
  // counters see.
  wire::WireQuery query;
  query.op = wire::QueryOpcode::kAtomName;
  query.a = atom;
  return transport_->Query(query).text;
}

bool Display::ChangeProperty(WindowId w, Atom property, std::string value) {
  Request request;
  request.op = RequestOpcode::kChangeProperty;
  request.window = w;
  request.atom = property;
  request.text = std::move(value);
  return Enqueue(std::move(request));
}

std::optional<std::string> Display::GetProperty(WindowId w, Atom property) {
  wire::WireQuery query;
  query.op = wire::QueryOpcode::kGetProperty;
  query.a = w;
  query.b = property;
  wire::WireReply reply = RoundTrip(query);
  if (!reply.ok) {
    return std::nullopt;
  }
  return std::move(reply.text);
}

bool Display::DeleteProperty(WindowId w, Atom property) {
  Request request;
  request.op = RequestOpcode::kDeleteProperty;
  request.window = w;
  request.atom = property;
  return Enqueue(std::move(request));
}

// ---------------------------------------------------------------------------
// Resources (queries).

std::optional<Pixel> Display::AllocNamedColor(std::string_view name) {
  wire::WireQuery query;
  query.op = wire::QueryOpcode::kAllocNamedColor;
  query.text = std::string(name);
  wire::WireReply reply = RoundTrip(query);
  if (!reply.ok) {
    return std::nullopt;
  }
  return static_cast<Pixel>(reply.value);
}

Pixel Display::AllocColor(Rgb rgb) {
  wire::WireQuery query;
  query.op = wire::QueryOpcode::kAllocColor;
  query.a = PackPixel(rgb);
  return static_cast<Pixel>(RoundTrip(query).value);
}

std::optional<FontId> Display::LoadFont(std::string_view name) {
  wire::WireQuery query;
  query.op = wire::QueryOpcode::kLoadFont;
  query.text = std::string(name);
  wire::WireReply reply = RoundTrip(query);
  if (!reply.ok) {
    return std::nullopt;
  }
  return static_cast<FontId>(reply.value);
}

const FontMetrics* Display::QueryFont(FontId font) {
  auto it = font_cache_.find(font);
  if (it != font_cache_.end()) {
    return &it->second;
  }
  // Like AtomName: free introspection, no flush, no round-trip accounting.
  wire::WireQuery query;
  query.op = wire::QueryOpcode::kQueryFont;
  query.a = font;
  wire::WireReply reply = transport_->Query(query);
  if (!reply.ok) {
    return nullptr;
  }
  FontMetrics metrics;
  metrics.name = std::move(reply.text);
  metrics.char_width = static_cast<int>(reply.value);
  metrics.ascent = reply.c;
  metrics.descent = reply.d;
  return &font_cache_.emplace(font, std::move(metrics)).first->second;
}

CursorId Display::CreateNamedCursor(std::string_view name) {
  wire::WireQuery query;
  query.op = wire::QueryOpcode::kCreateCursor;
  query.text = std::string(name);
  return static_cast<CursorId>(RoundTrip(query).value);
}

BitmapId Display::CreateBitmap(std::string_view name, int width, int height) {
  wire::WireQuery query;
  query.op = wire::QueryOpcode::kCreateBitmap;
  query.text = std::string(name);
  query.c = width;
  query.d = height;
  return static_cast<BitmapId>(RoundTrip(query).value);
}

// ---------------------------------------------------------------------------
// GCs and drawing (one-way: buffered).

GcId Display::CreateGc() {
  GcId id = AllocResourceId();
  Request request;
  request.op = RequestOpcode::kCreateGc;
  request.resource = id;
  return Enqueue(std::move(request)) ? id : kNone;
}

void Display::FreeGc(GcId gc) {
  Request request;
  request.op = RequestOpcode::kFreeGc;
  request.gc = gc;
  Enqueue(std::move(request));
}

bool Display::ChangeGc(GcId gc, const Server::Gc& values) {
  Request request;
  request.op = RequestOpcode::kChangeGc;
  request.gc = gc;
  request.gc_values = values;
  return Enqueue(std::move(request));
}

void Display::ClearWindow(WindowId w) {
  Request request;
  request.op = RequestOpcode::kClearWindow;
  request.window = w;
  Enqueue(std::move(request));
}

void Display::ClearArea(WindowId w, const Rect& area) {
  Request request;
  request.op = RequestOpcode::kClearArea;
  request.window = w;
  request.rect = area;
  Enqueue(std::move(request));
}

void Display::FillRectangle(WindowId w, GcId gc, const Rect& rect) {
  Request request;
  request.op = RequestOpcode::kFillRectangle;
  request.window = w;
  request.gc = gc;
  request.rect = rect;
  Enqueue(std::move(request));
}

void Display::DrawRectangle(WindowId w, GcId gc, const Rect& rect) {
  Request request;
  request.op = RequestOpcode::kDrawRectangle;
  request.window = w;
  request.gc = gc;
  request.rect = rect;
  Enqueue(std::move(request));
}

void Display::DrawLine(WindowId w, GcId gc, int x0, int y0, int x1, int y1) {
  Request request;
  request.op = RequestOpcode::kDrawLine;
  request.window = w;
  request.gc = gc;
  request.x = x0;
  request.y = y0;
  request.x1 = x1;
  request.y1 = y1;
  Enqueue(std::move(request));
}

void Display::DrawString(WindowId w, GcId gc, int x, int y, std::string_view text) {
  Request request;
  request.op = RequestOpcode::kDrawString;
  request.window = w;
  request.gc = gc;
  request.x = x;
  request.y = y;
  request.text = std::string(text);
  Enqueue(std::move(request));
}

// ---------------------------------------------------------------------------
// Focus, selections, events.

void Display::SetInputFocus(WindowId w) {
  Request request;
  request.op = RequestOpcode::kSetInputFocus;
  request.window = w;
  Enqueue(std::move(request));
}

WindowId Display::GetInputFocus() {
  Flush();
  // Focus introspection has never counted a round trip (no Resync either);
  // keep that shape on both transports.
  wire::WireQuery query;
  query.op = wire::QueryOpcode::kGetInputFocus;
  return static_cast<WindowId>(transport_->Query(query).value);
}

void Display::SetSelectionOwner(Atom selection, WindowId owner) {
  Request request;
  request.op = RequestOpcode::kSetSelectionOwner;
  request.atom = selection;
  request.window = owner;
  Enqueue(std::move(request));
}

WindowId Display::GetSelectionOwner(Atom selection) {
  wire::WireQuery query;
  query.op = wire::QueryOpcode::kGetSelectionOwner;
  query.a = selection;
  return static_cast<WindowId>(RoundTrip(query).value);
}

void Display::ConvertSelection(Atom selection, Atom target, Atom property,
                               WindowId requestor) {
  Request request;
  request.op = RequestOpcode::kConvertSelection;
  request.atom = selection;
  request.target = target;
  request.property = property;
  request.requestor = requestor;
  Enqueue(std::move(request));
}

void Display::SendSelectionNotify(WindowId requestor, Atom selection, Atom target,
                                  Atom property) {
  Request request;
  request.op = RequestOpcode::kSendSelectionNotify;
  request.requestor = requestor;
  request.atom = selection;
  request.target = target;
  request.property = property;
  Enqueue(std::move(request));
}

void Display::SendEvent(WindowId destination, const Event& event, uint32_t mask) {
  Request request;
  request.op = RequestOpcode::kSendEvent;
  request.window = destination;
  request.event = event;
  request.mask = mask;
  Enqueue(std::move(request));
}

// ---------------------------------------------------------------------------
// Events.

bool Display::Pending() {
  Flush();
  bool pending = transport_->HasPendingEvents();
  if (transport_->io_error() && HandleIOError()) {
    pending = transport_->HasPendingEvents();
  }
  return pending;
}

size_t Display::PendingCount() {
  Flush();
  size_t count = transport_->PendingEventCount();
  if (transport_->io_error() && HandleIOError()) {
    count = transport_->PendingEventCount();
  }
  return count;
}

bool Display::PollEvent(Event* out) {
  Flush();
  bool got = transport_->NextEvent(out);
  if (!got && transport_->io_error() && HandleIOError()) {
    got = transport_->NextEvent(out);
  }
  return got;
}

}  // namespace xsim
