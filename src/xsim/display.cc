#include "src/xsim/display.h"

namespace xsim {

std::unique_ptr<Display> Display::Open(Server& server, std::string client_name) {
  ClientId id = server.RegisterClient(std::move(client_name));
  return std::unique_ptr<Display>(new Display(server, id));
}

Display::~Display() { server_.UnregisterClient(client_); }

}  // namespace xsim
