#include "src/xsim/display.h"

namespace xsim {

namespace {
// Each connection owns a disjoint client-side resource-id range, like the
// resource-id-base/mask the real server hands Xlib at connection setup.
constexpr XId kResourceIdRange = 0x00100000;
}  // namespace

std::unique_ptr<Display> Display::Open(Server& server, std::string client_name) {
  ClientId id = server.RegisterClient(std::move(client_name));
  auto display = std::unique_ptr<Display>(new Display(server, id));
  server.SetErrorSink(id, [raw = display.get()](const XError& error) {
    raw->HandleError(error);
  });
  return display;
}

Display::Display(Server& server, ClientId client)
    : server_(server),
      client_(client),
      next_sequence_(server.ClientSequence(client)),
      resource_id_base_(client * kResourceIdRange) {}

Display::~Display() {
  Flush();  // Xlib flushes the output buffer as part of XCloseDisplay.
  server_.UnregisterClient(client_);
}

void Display::HandleError(const XError& error) {
  last_error_ = error;
  ++error_count_;
  if (error_handler_) {
    error_handler_(error);
  }
}

// ---------------------------------------------------------------------------
// Output buffer.

void Display::Flush() {
  if (queue_.empty() || flushing_) {
    return;
  }
  flushing_ = true;
  // Swap out the queue first: the batch may deliver errors whose handlers
  // issue fresh requests, which then land in a clean queue.
  std::vector<Request> batch;
  batch.swap(queue_);
  server_.ApplyBatch(client_, batch);
  ++flush_count_;
  flushing_ = false;
}

void Display::Sync() {
  Flush();
  // The no-op query is the round trip: once it returns, every request ahead
  // of it has been processed and its errors delivered (XSync semantics; real
  // Xlib uses GetInputFocus as the throwaway request).
  server_.GetSelectionOwner(client_, kAtomNone);
  Resync();
}

void Display::SetSynchronous(bool on) {
  if (on) {
    Flush();  // Preserve ordering across the mode switch.
  }
  synchronous_ = on;
}

bool Display::Enqueue(Request&& request) {
  if (!server_.ClientAlive(client_)) {
    return false;  // A dead connection swallows requests (KillClient model).
  }
  request.sequence = ++next_sequence_;
  if (synchronous_) {
    return server_.ApplyRequest(client_, request, /*synchronous=*/true);
  }
  queue_.push_back(std::move(request));
  MaybeAutoFlush();
  return true;
}

void Display::MaybeAutoFlush() {
  if (!flushing_ && queue_.size() >= output_capacity_) {
    ++auto_flush_count_;
    Flush();
  }
}

// ---------------------------------------------------------------------------
// Windows (one-way: buffered).

WindowId Display::CreateWindow(WindowId parent, int x, int y, int width, int height,
                               int border_width) {
  WindowId id = AllocResourceId();
  Request request;
  request.op = RequestOpcode::kCreateWindow;
  request.window = parent;
  request.resource = id;
  request.x = x;
  request.y = y;
  request.width = width;
  request.height = height;
  request.border_width = border_width;
  return Enqueue(std::move(request)) ? id : kNone;
}

bool Display::DestroyWindow(WindowId w) {
  Request request;
  request.op = RequestOpcode::kDestroyWindow;
  request.window = w;
  return Enqueue(std::move(request));
}

bool Display::MapWindow(WindowId w) {
  Request request;
  request.op = RequestOpcode::kMapWindow;
  request.window = w;
  return Enqueue(std::move(request));
}

bool Display::UnmapWindow(WindowId w) {
  Request request;
  request.op = RequestOpcode::kUnmapWindow;
  request.window = w;
  return Enqueue(std::move(request));
}

bool Display::MoveResizeWindow(WindowId w, int x, int y, int width, int height) {
  Request request;
  request.op = RequestOpcode::kConfigureWindow;
  request.window = w;
  request.x = x;
  request.y = y;
  request.width = width;
  request.height = height;
  request.border_width = -1;
  return Enqueue(std::move(request));
}

bool Display::ResizeWindow(WindowId w, int width, int height) {
  Request request;
  request.op = RequestOpcode::kConfigureWindow;
  request.window = w;
  request.x = -1;
  request.y = -1;
  request.width = width;
  request.height = height;
  request.border_width = -1;
  return Enqueue(std::move(request));
}

bool Display::RaiseWindow(WindowId w) {
  Request request;
  request.op = RequestOpcode::kRaiseWindow;
  request.window = w;
  return Enqueue(std::move(request));
}

void Display::SelectInput(WindowId w, uint32_t mask) {
  Request request;
  request.op = RequestOpcode::kSelectInput;
  request.window = w;
  request.mask = mask;
  Enqueue(std::move(request));
}

bool Display::SetWindowBackground(WindowId w, Pixel p) {
  Request request;
  request.op = RequestOpcode::kSetWindowBackground;
  request.window = w;
  request.pixel = p;
  return Enqueue(std::move(request));
}

// ---------------------------------------------------------------------------
// Atoms and properties.

Atom Display::InternAtom(std::string_view name) {
  Flush();
  Atom atom = server_.InternAtom(client_, name);
  Resync();
  return atom;
}

bool Display::ChangeProperty(WindowId w, Atom property, std::string value) {
  Request request;
  request.op = RequestOpcode::kChangeProperty;
  request.window = w;
  request.atom = property;
  request.text = std::move(value);
  return Enqueue(std::move(request));
}

std::optional<std::string> Display::GetProperty(WindowId w, Atom property) {
  Flush();
  std::optional<std::string> value = server_.GetProperty(client_, w, property);
  Resync();
  return value;
}

bool Display::DeleteProperty(WindowId w, Atom property) {
  Request request;
  request.op = RequestOpcode::kDeleteProperty;
  request.window = w;
  request.atom = property;
  return Enqueue(std::move(request));
}

// ---------------------------------------------------------------------------
// Resources (queries).

std::optional<Pixel> Display::AllocNamedColor(std::string_view name) {
  Flush();
  std::optional<Pixel> pixel = server_.AllocNamedColor(client_, name);
  Resync();
  return pixel;
}

Pixel Display::AllocColor(Rgb rgb) {
  Flush();
  Pixel pixel = server_.AllocColor(client_, rgb);
  Resync();
  return pixel;
}

std::optional<FontId> Display::LoadFont(std::string_view name) {
  Flush();
  std::optional<FontId> font = server_.LoadFont(client_, name);
  Resync();
  return font;
}

CursorId Display::CreateNamedCursor(std::string_view name) {
  Flush();
  CursorId cursor = server_.CreateNamedCursor(client_, name);
  Resync();
  return cursor;
}

BitmapId Display::CreateBitmap(std::string_view name, int width, int height) {
  Flush();
  BitmapId bitmap = server_.CreateBitmap(client_, name, width, height);
  Resync();
  return bitmap;
}

// ---------------------------------------------------------------------------
// GCs and drawing (one-way: buffered).

GcId Display::CreateGc() {
  GcId id = AllocResourceId();
  Request request;
  request.op = RequestOpcode::kCreateGc;
  request.resource = id;
  return Enqueue(std::move(request)) ? id : kNone;
}

void Display::FreeGc(GcId gc) {
  Request request;
  request.op = RequestOpcode::kFreeGc;
  request.gc = gc;
  Enqueue(std::move(request));
}

bool Display::ChangeGc(GcId gc, const Server::Gc& values) {
  Request request;
  request.op = RequestOpcode::kChangeGc;
  request.gc = gc;
  request.gc_values = values;
  return Enqueue(std::move(request));
}

void Display::ClearWindow(WindowId w) {
  Request request;
  request.op = RequestOpcode::kClearWindow;
  request.window = w;
  Enqueue(std::move(request));
}

void Display::ClearArea(WindowId w, const Rect& area) {
  Request request;
  request.op = RequestOpcode::kClearArea;
  request.window = w;
  request.rect = area;
  Enqueue(std::move(request));
}

void Display::FillRectangle(WindowId w, GcId gc, const Rect& rect) {
  Request request;
  request.op = RequestOpcode::kFillRectangle;
  request.window = w;
  request.gc = gc;
  request.rect = rect;
  Enqueue(std::move(request));
}

void Display::DrawRectangle(WindowId w, GcId gc, const Rect& rect) {
  Request request;
  request.op = RequestOpcode::kDrawRectangle;
  request.window = w;
  request.gc = gc;
  request.rect = rect;
  Enqueue(std::move(request));
}

void Display::DrawLine(WindowId w, GcId gc, int x0, int y0, int x1, int y1) {
  Request request;
  request.op = RequestOpcode::kDrawLine;
  request.window = w;
  request.gc = gc;
  request.x = x0;
  request.y = y0;
  request.x1 = x1;
  request.y1 = y1;
  Enqueue(std::move(request));
}

void Display::DrawString(WindowId w, GcId gc, int x, int y, std::string_view text) {
  Request request;
  request.op = RequestOpcode::kDrawString;
  request.window = w;
  request.gc = gc;
  request.x = x;
  request.y = y;
  request.text = std::string(text);
  Enqueue(std::move(request));
}

// ---------------------------------------------------------------------------
// Focus, selections, events.

void Display::SetInputFocus(WindowId w) {
  Request request;
  request.op = RequestOpcode::kSetInputFocus;
  request.window = w;
  Enqueue(std::move(request));
}

WindowId Display::GetInputFocus() {
  Flush();
  return server_.GetInputFocus();
}

void Display::SetSelectionOwner(Atom selection, WindowId owner) {
  Request request;
  request.op = RequestOpcode::kSetSelectionOwner;
  request.atom = selection;
  request.window = owner;
  Enqueue(std::move(request));
}

WindowId Display::GetSelectionOwner(Atom selection) {
  Flush();
  WindowId owner = server_.GetSelectionOwner(client_, selection);
  Resync();
  return owner;
}

void Display::ConvertSelection(Atom selection, Atom target, Atom property,
                               WindowId requestor) {
  Request request;
  request.op = RequestOpcode::kConvertSelection;
  request.atom = selection;
  request.target = target;
  request.property = property;
  request.requestor = requestor;
  Enqueue(std::move(request));
}

void Display::SendSelectionNotify(WindowId requestor, Atom selection, Atom target,
                                  Atom property) {
  Request request;
  request.op = RequestOpcode::kSendSelectionNotify;
  request.requestor = requestor;
  request.atom = selection;
  request.target = target;
  request.property = property;
  Enqueue(std::move(request));
}

void Display::SendEvent(WindowId destination, const Event& event, uint32_t mask) {
  Request request;
  request.op = RequestOpcode::kSendEvent;
  request.window = destination;
  request.event = event;
  request.mask = mask;
  Enqueue(std::move(request));
}

// ---------------------------------------------------------------------------
// Events.

bool Display::Pending() {
  Flush();
  return server_.HasPendingEvents(client_);
}

size_t Display::PendingCount() {
  Flush();
  return server_.PendingEventCount(client_);
}

bool Display::PollEvent(Event* out) {
  Flush();
  return server_.NextEvent(client_, out);
}

}  // namespace xsim
