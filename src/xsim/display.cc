#include "src/xsim/display.h"

#include "src/xsim/color.h"

namespace xsim {

namespace {
// Each connection owns a disjoint client-side resource-id range, like the
// resource-id-base/mask the real server hands Xlib at connection setup.
constexpr XId kResourceIdRange = 0x00100000;
}  // namespace

std::unique_ptr<Display> Display::Open(Server& server, std::string client_name) {
  return Open(server, std::move(client_name), wire::TransportKindFromEnv());
}

std::unique_ptr<Display> Display::Open(Server& server, std::string client_name,
                                       wire::TransportKind transport) {
  return std::unique_ptr<Display>(
      new Display(server, std::move(client_name), transport));
}

Display::Display(Server& server, std::string client_name, wire::TransportKind kind)
    : server_(server) {
  transport_ = wire::Connect(server, kind, std::move(client_name),
                             [this](const XError& error) { HandleError(error); });
  client_ = transport_->client_id();
  root_ = transport_->root();
  next_sequence_ = transport_->SequenceSync();
  resource_id_base_ = client_ * kResourceIdRange;
}

Display::~Display() {
  Flush();  // Xlib flushes the output buffer as part of XCloseDisplay.
  transport_->Close();
}

void Display::HandleError(const XError& error) {
  last_error_ = error;
  ++error_count_;
  if (error_handler_) {
    error_handler_(error);
  }
}

// ---------------------------------------------------------------------------
// Output buffer.

void Display::Flush() {
  if (queue_.empty() || flushing_) {
    return;
  }
  flushing_ = true;
  // Swap out the queue first: the batch may deliver errors whose handlers
  // issue fresh requests, which then land in a clean queue.
  std::vector<Request> batch;
  batch.swap(queue_);
  transport_->SendBatch(batch);
  ++flush_count_;
  flushing_ = false;
}

void Display::Sync() {
  Flush();
  // The no-op query is the round trip: once it returns, every request ahead
  // of it has been processed and its errors delivered (XSync semantics; real
  // Xlib uses GetInputFocus as the throwaway request).
  wire::WireQuery query;
  query.op = wire::QueryOpcode::kNoOpRoundTrip;
  transport_->Query(query);
  Resync();
}

void Display::SetSynchronous(bool on) {
  if (on) {
    Flush();  // Preserve ordering across the mode switch.
  }
  synchronous_ = on;
}

bool Display::Enqueue(Request&& request) {
  if (!transport_->Alive()) {
    return false;  // A dead connection swallows requests (KillClient model).
  }
  request.sequence = ++next_sequence_;
  if (synchronous_) {
    return transport_->SendRequestSync(request);
  }
  queue_.push_back(std::move(request));
  MaybeAutoFlush();
  return true;
}

void Display::MaybeAutoFlush() {
  if (!flushing_ && queue_.size() >= output_capacity_) {
    ++auto_flush_count_;
    Flush();
  }
}

wire::WireReply Display::RoundTrip(const wire::WireQuery& query) {
  Flush();
  wire::WireReply reply = transport_->Query(query);
  Resync();
  return reply;
}

// ---------------------------------------------------------------------------
// Windows (one-way: buffered).

WindowId Display::CreateWindow(WindowId parent, int x, int y, int width, int height,
                               int border_width) {
  WindowId id = AllocResourceId();
  Request request;
  request.op = RequestOpcode::kCreateWindow;
  request.window = parent;
  request.resource = id;
  request.x = x;
  request.y = y;
  request.width = width;
  request.height = height;
  request.border_width = border_width;
  return Enqueue(std::move(request)) ? id : kNone;
}

bool Display::DestroyWindow(WindowId w) {
  Request request;
  request.op = RequestOpcode::kDestroyWindow;
  request.window = w;
  return Enqueue(std::move(request));
}

bool Display::MapWindow(WindowId w) {
  Request request;
  request.op = RequestOpcode::kMapWindow;
  request.window = w;
  return Enqueue(std::move(request));
}

bool Display::UnmapWindow(WindowId w) {
  Request request;
  request.op = RequestOpcode::kUnmapWindow;
  request.window = w;
  return Enqueue(std::move(request));
}

bool Display::MoveResizeWindow(WindowId w, int x, int y, int width, int height) {
  Request request;
  request.op = RequestOpcode::kConfigureWindow;
  request.window = w;
  request.x = x;
  request.y = y;
  request.width = width;
  request.height = height;
  request.border_width = -1;
  return Enqueue(std::move(request));
}

bool Display::ResizeWindow(WindowId w, int width, int height) {
  Request request;
  request.op = RequestOpcode::kConfigureWindow;
  request.window = w;
  request.x = -1;
  request.y = -1;
  request.width = width;
  request.height = height;
  request.border_width = -1;
  return Enqueue(std::move(request));
}

bool Display::RaiseWindow(WindowId w) {
  Request request;
  request.op = RequestOpcode::kRaiseWindow;
  request.window = w;
  return Enqueue(std::move(request));
}

void Display::SelectInput(WindowId w, uint32_t mask) {
  Request request;
  request.op = RequestOpcode::kSelectInput;
  request.window = w;
  request.mask = mask;
  Enqueue(std::move(request));
}

bool Display::SetWindowBackground(WindowId w, Pixel p) {
  Request request;
  request.op = RequestOpcode::kSetWindowBackground;
  request.window = w;
  request.pixel = p;
  return Enqueue(std::move(request));
}

// ---------------------------------------------------------------------------
// Atoms and properties.

Atom Display::InternAtom(std::string_view name) {
  wire::WireQuery query;
  query.op = wire::QueryOpcode::kInternAtom;
  query.text = std::string(name);
  return static_cast<Atom>(RoundTrip(query).value);
}

std::string Display::AtomName(Atom atom) {
  // Free introspection in the direct path, so no flush and no round-trip
  // accounting; the wire path pays a frame exchange that only the wire
  // counters see.
  wire::WireQuery query;
  query.op = wire::QueryOpcode::kAtomName;
  query.a = atom;
  return transport_->Query(query).text;
}

bool Display::ChangeProperty(WindowId w, Atom property, std::string value) {
  Request request;
  request.op = RequestOpcode::kChangeProperty;
  request.window = w;
  request.atom = property;
  request.text = std::move(value);
  return Enqueue(std::move(request));
}

std::optional<std::string> Display::GetProperty(WindowId w, Atom property) {
  wire::WireQuery query;
  query.op = wire::QueryOpcode::kGetProperty;
  query.a = w;
  query.b = property;
  wire::WireReply reply = RoundTrip(query);
  if (!reply.ok) {
    return std::nullopt;
  }
  return std::move(reply.text);
}

bool Display::DeleteProperty(WindowId w, Atom property) {
  Request request;
  request.op = RequestOpcode::kDeleteProperty;
  request.window = w;
  request.atom = property;
  return Enqueue(std::move(request));
}

// ---------------------------------------------------------------------------
// Resources (queries).

std::optional<Pixel> Display::AllocNamedColor(std::string_view name) {
  wire::WireQuery query;
  query.op = wire::QueryOpcode::kAllocNamedColor;
  query.text = std::string(name);
  wire::WireReply reply = RoundTrip(query);
  if (!reply.ok) {
    return std::nullopt;
  }
  return static_cast<Pixel>(reply.value);
}

Pixel Display::AllocColor(Rgb rgb) {
  wire::WireQuery query;
  query.op = wire::QueryOpcode::kAllocColor;
  query.a = PackPixel(rgb);
  return static_cast<Pixel>(RoundTrip(query).value);
}

std::optional<FontId> Display::LoadFont(std::string_view name) {
  wire::WireQuery query;
  query.op = wire::QueryOpcode::kLoadFont;
  query.text = std::string(name);
  wire::WireReply reply = RoundTrip(query);
  if (!reply.ok) {
    return std::nullopt;
  }
  return static_cast<FontId>(reply.value);
}

const FontMetrics* Display::QueryFont(FontId font) {
  auto it = font_cache_.find(font);
  if (it != font_cache_.end()) {
    return &it->second;
  }
  // Like AtomName: free introspection, no flush, no round-trip accounting.
  wire::WireQuery query;
  query.op = wire::QueryOpcode::kQueryFont;
  query.a = font;
  wire::WireReply reply = transport_->Query(query);
  if (!reply.ok) {
    return nullptr;
  }
  FontMetrics metrics;
  metrics.name = std::move(reply.text);
  metrics.char_width = static_cast<int>(reply.value);
  metrics.ascent = reply.c;
  metrics.descent = reply.d;
  return &font_cache_.emplace(font, std::move(metrics)).first->second;
}

CursorId Display::CreateNamedCursor(std::string_view name) {
  wire::WireQuery query;
  query.op = wire::QueryOpcode::kCreateCursor;
  query.text = std::string(name);
  return static_cast<CursorId>(RoundTrip(query).value);
}

BitmapId Display::CreateBitmap(std::string_view name, int width, int height) {
  wire::WireQuery query;
  query.op = wire::QueryOpcode::kCreateBitmap;
  query.text = std::string(name);
  query.c = width;
  query.d = height;
  return static_cast<BitmapId>(RoundTrip(query).value);
}

// ---------------------------------------------------------------------------
// GCs and drawing (one-way: buffered).

GcId Display::CreateGc() {
  GcId id = AllocResourceId();
  Request request;
  request.op = RequestOpcode::kCreateGc;
  request.resource = id;
  return Enqueue(std::move(request)) ? id : kNone;
}

void Display::FreeGc(GcId gc) {
  Request request;
  request.op = RequestOpcode::kFreeGc;
  request.gc = gc;
  Enqueue(std::move(request));
}

bool Display::ChangeGc(GcId gc, const Server::Gc& values) {
  Request request;
  request.op = RequestOpcode::kChangeGc;
  request.gc = gc;
  request.gc_values = values;
  return Enqueue(std::move(request));
}

void Display::ClearWindow(WindowId w) {
  Request request;
  request.op = RequestOpcode::kClearWindow;
  request.window = w;
  Enqueue(std::move(request));
}

void Display::ClearArea(WindowId w, const Rect& area) {
  Request request;
  request.op = RequestOpcode::kClearArea;
  request.window = w;
  request.rect = area;
  Enqueue(std::move(request));
}

void Display::FillRectangle(WindowId w, GcId gc, const Rect& rect) {
  Request request;
  request.op = RequestOpcode::kFillRectangle;
  request.window = w;
  request.gc = gc;
  request.rect = rect;
  Enqueue(std::move(request));
}

void Display::DrawRectangle(WindowId w, GcId gc, const Rect& rect) {
  Request request;
  request.op = RequestOpcode::kDrawRectangle;
  request.window = w;
  request.gc = gc;
  request.rect = rect;
  Enqueue(std::move(request));
}

void Display::DrawLine(WindowId w, GcId gc, int x0, int y0, int x1, int y1) {
  Request request;
  request.op = RequestOpcode::kDrawLine;
  request.window = w;
  request.gc = gc;
  request.x = x0;
  request.y = y0;
  request.x1 = x1;
  request.y1 = y1;
  Enqueue(std::move(request));
}

void Display::DrawString(WindowId w, GcId gc, int x, int y, std::string_view text) {
  Request request;
  request.op = RequestOpcode::kDrawString;
  request.window = w;
  request.gc = gc;
  request.x = x;
  request.y = y;
  request.text = std::string(text);
  Enqueue(std::move(request));
}

// ---------------------------------------------------------------------------
// Focus, selections, events.

void Display::SetInputFocus(WindowId w) {
  Request request;
  request.op = RequestOpcode::kSetInputFocus;
  request.window = w;
  Enqueue(std::move(request));
}

WindowId Display::GetInputFocus() {
  Flush();
  // Focus introspection has never counted a round trip (no Resync either);
  // keep that shape on both transports.
  wire::WireQuery query;
  query.op = wire::QueryOpcode::kGetInputFocus;
  return static_cast<WindowId>(transport_->Query(query).value);
}

void Display::SetSelectionOwner(Atom selection, WindowId owner) {
  Request request;
  request.op = RequestOpcode::kSetSelectionOwner;
  request.atom = selection;
  request.window = owner;
  Enqueue(std::move(request));
}

WindowId Display::GetSelectionOwner(Atom selection) {
  wire::WireQuery query;
  query.op = wire::QueryOpcode::kGetSelectionOwner;
  query.a = selection;
  return static_cast<WindowId>(RoundTrip(query).value);
}

void Display::ConvertSelection(Atom selection, Atom target, Atom property,
                               WindowId requestor) {
  Request request;
  request.op = RequestOpcode::kConvertSelection;
  request.atom = selection;
  request.target = target;
  request.property = property;
  request.requestor = requestor;
  Enqueue(std::move(request));
}

void Display::SendSelectionNotify(WindowId requestor, Atom selection, Atom target,
                                  Atom property) {
  Request request;
  request.op = RequestOpcode::kSendSelectionNotify;
  request.requestor = requestor;
  request.atom = selection;
  request.target = target;
  request.property = property;
  Enqueue(std::move(request));
}

void Display::SendEvent(WindowId destination, const Event& event, uint32_t mask) {
  Request request;
  request.op = RequestOpcode::kSendEvent;
  request.window = destination;
  request.event = event;
  request.mask = mask;
  Enqueue(std::move(request));
}

// ---------------------------------------------------------------------------
// Events.

bool Display::Pending() {
  Flush();
  return transport_->HasPendingEvents();
}

size_t Display::PendingCount() {
  Flush();
  return transport_->PendingEventCount();
}

bool Display::PollEvent(Event* out) {
  Flush();
  return transport_->NextEvent(out);
}

}  // namespace xsim
