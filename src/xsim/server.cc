#include "src/xsim/server.h"

#include <algorithm>
#include <chrono>
#include <sstream>
#include <thread>

#include "src/xsim/wire/wire_server.h"

namespace xsim {

Server::Server(int width, int height) : raster_(width, height, 0x00c0c0c0) {
  auto root = std::make_unique<WindowRec>();
  root->id = kRootWindow;
  root->parent = kNone;
  root->geometry = Rect{0, 0, width, height};
  root->mapped = true;
  root->background = 0x00c0c0c0;
  windows_[kRootWindow] = std::move(root);
}


// ---------------------------------------------------------------------------
// Request accounting with optional simulated transport latency, sequence
// numbering, error generation and fault injection.

namespace {

// Short waits (sub-50us simulated wire latency) spin, because OS sleep
// granularity would distort the latency model; anything longer sleeps so
// that fault-injection delays and slow-transport tests don't burn a core.
void WaitNs(uint64_t ns) {
  if (ns == 0) {
    return;
  }
  constexpr uint64_t kSpinThresholdNs = 50000;
  if (ns >= kSpinThresholdNs) {
    std::this_thread::sleep_for(std::chrono::nanoseconds(ns));
    return;
  }
  auto deadline = std::chrono::steady_clock::now() + std::chrono::nanoseconds(ns);
  while (std::chrono::steady_clock::now() < deadline) {
  }
}

}  // namespace

bool Server::BeginRequest(ClientId client, RequestType type, XId resource) {
  ClientRec* rec = FindClient(client);
  if (rec != nullptr && rec->dead) {
    return false;  // Requests from a crashed client vanish (and go untraced).
  }
  ++counters_.total;
  if (rec != nullptr) {
    ++rec->sequence;
  }
  const bool tracing = trace_.active();
  std::chrono::steady_clock::time_point start;
  if (tracing) {
    start = std::chrono::steady_clock::now();
  }
  TraceOutcome outcome = TraceOutcome::kOk;
  bool execute = true;
  in_begin_request_ = true;
  WaitNs(request_latency_ns_);
  if (fault_injector_.active()) {
    FaultInjector::Decision decision = fault_injector_.Decide(type);
    if (decision.delay_ns != 0) {
      ++fault_counters_.injected_delays;
      WaitNs(decision.delay_ns);
      outcome = TraceOutcome::kDelayed;
    }
    if (decision.drop) {
      ++fault_counters_.injected_drops;
      outcome = TraceOutcome::kDropped;
      execute = false;
    } else if (decision.fail) {
      ++fault_counters_.injected_failures;
      RaiseError(client, ErrorCode::kBadImplementation, kNone, type);
      outcome = TraceOutcome::kFailed;
      execute = false;
    }
  }
  if (tracing) {
    uint64_t duration_ns = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(std::chrono::steady_clock::now() -
                                                             start)
            .count());
    trace_.RecordRequest(client, type, resource, duration_ns, outcome);
  }
  in_begin_request_ = false;
  return execute;
}

void Server::CountRoundTrip() {
  ++counters_.round_trips;
  WaitNs(round_trip_latency_ns_);
  trace_.MarkLastRequestRoundTrip(round_trip_latency_ns_);
}

void Server::RaiseError(ClientId client, ErrorCode code, XId resource, RequestType request) {
  ++fault_counters_.errors_generated;
  // A validation error discovered after the request was admitted rewrites
  // the in-flight trace record; an injected failure is recorded by
  // BeginRequest itself.
  if (!in_begin_request_) {
    trace_.MarkLastRequestError();
  }
  ClientRec* rec = FindClient(client);
  if (rec == nullptr || rec->dead || !rec->error_sink) {
    return;
  }
  XError error;
  error.code = code;
  error.sequence = rec->sequence;
  error.resource = resource;
  error.request = request;
  rec->error_sink(error);
}

// wire_server_ is the last-declared member, so the default destructor tears
// it down first: its connection threads join while the server they call back
// into is still whole.
Server::~Server() = default;

// ---------------------------------------------------------------------------
// Wire transport plumbing.

wire::WireServer& Server::wire() {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  if (wire_server_ == nullptr) {
    wire_server_ = std::make_unique<wire::WireServer>(*this);
  }
  return *wire_server_;
}

bool Server::has_wire() const {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  return wire_server_ != nullptr;
}

void Server::CountWireConnection() {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  ++wire_counters_.connections;
}

void Server::CountWireFrameIn(uint64_t bytes) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  ++wire_counters_.frames_in;
  wire_counters_.bytes_in += bytes;
  trace_.RecordWireTraffic(1, bytes);
}

void Server::CountWireFrameOut(uint64_t bytes) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  ++wire_counters_.frames_out;
  wire_counters_.bytes_out += bytes;
  trace_.RecordWireTraffic(1, bytes);
}

void Server::CountWireBatch() {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  ++wire_counters_.batches;
}

void Server::CountWireMalformed() {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  ++wire_counters_.malformed_frames;
}

void Server::RaiseTransportError(ClientId client, ErrorCode code) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  ClientRec* rec = FindClient(client);
  if (rec == nullptr || rec->dead || !rec->error_sink) {
    return;
  }
  ++fault_counters_.errors_generated;
  XError error;
  error.code = code;
  error.sequence = rec->sequence;
  error.resource = kNone;
  error.request = RequestType::kOther;
  rec->error_sink(error);
}

void Server::CountWireFault(bool dropped, bool truncated, bool delayed) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  if (dropped) {
    ++wire_counters_.dropped_frames;
  }
  if (truncated) {
    ++wire_counters_.truncated_frames;
  }
  if (delayed) {
    ++wire_counters_.delayed_frames;
  }
}


// ---------------------------------------------------------------------------
// Lookup helpers.

Server::WindowRec* Server::FindWindow(WindowId id) {
  auto it = windows_.find(id);
  return it == windows_.end() ? nullptr : it->second.get();
}

const Server::WindowRec* Server::FindWindow(WindowId id) const {
  auto it = windows_.find(id);
  return it == windows_.end() ? nullptr : it->second.get();
}

Server::ClientRec* Server::FindClient(ClientId id) {
  auto it = clients_.find(id);
  return it == clients_.end() ? nullptr : it->second.get();
}

const Server::ClientRec* Server::FindClient(ClientId id) const {
  auto it = clients_.find(id);
  return it == clients_.end() ? nullptr : it->second.get();
}

// ---------------------------------------------------------------------------
// Clients.

namespace {

// splitmix64: deterministic, well-mixed session tokens (same registration
// order, same tokens -- what the reconnect benches gate on).
uint64_t MixToken(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

ClientId Server::RegisterClient(std::string name) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  ClientId id = next_client_++;
  auto client = std::make_unique<ClientRec>();
  client->id = id;
  client->name = std::move(name);
  client->session_token = MixToken(id);
  clients_[id] = std::move(client);
  return id;
}

void Server::CloseDownClient(ClientRec* rec) {
  // Destroy windows owned by the client (top-level ones; descendants go with
  // them), release selections, drop the queue.
  ClientId client = rec->id;
  std::vector<WindowId> owned;
  for (const auto& [id, window] : windows_) {
    if (window->owner == client && window->parent != kNone) {
      const WindowRec* parent = FindWindow(window->parent);
      if (parent == nullptr || parent->owner != client) {
        owned.push_back(id);
      }
    }
  }
  for (WindowId id : owned) {
    if (WindowRec* window = FindWindow(id)) {
      DestroyWindowInternal(window);
    }
  }
  for (auto it = selections_.begin(); it != selections_.end();) {
    if (it->second.second == client) {
      it = selections_.erase(it);
    } else {
      ++it;
    }
  }
  // Free the client's GCs (pre-PR-7 they leaked: gcs_ had no owner map).
  for (auto it = gc_owners_.begin(); it != gc_owners_.end();) {
    if (it->second == client) {
      gcs_.erase(it->first);
      it = gc_owners_.erase(it);
    } else {
      ++it;
    }
  }
  rec->queue.clear();
  rec->error_sink = nullptr;
}

void Server::UnregisterClient(ClientId client) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  if (ClientRec* rec = FindClient(client)) {
    if (!rec->dead) {
      CloseDownClient(rec);
    }
    clients_.erase(client);
  }
}

void Server::KillClient(ClientId client) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  ClientRec* rec = FindClient(client);
  if (rec == nullptr || rec->dead) {
    return;
  }
  ++fault_counters_.killed_clients;
  CloseDownClient(rec);
  rec->dead = true;
}

bool Server::ClientAlive(ClientId client) const {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  const ClientRec* rec = FindClient(client);
  return rec != nullptr && !rec->dead;
}

// ---------------------------------------------------------------------------
// Connection lifecycle: close-down modes, session retention, resumption.

void Server::SetCloseDownMode(ClientId client, CloseDownMode mode) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  if (ClientRec* rec = FindClient(client)) {
    rec->close_down = mode;
  }
}

CloseDownMode Server::ClientCloseDownMode(ClientId client) const {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  const ClientRec* rec = FindClient(client);
  return rec == nullptr ? CloseDownMode::kDestroyAll : rec->close_down;
}

uint64_t Server::ClientSessionToken(ClientId client) const {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  const ClientRec* rec = FindClient(client);
  return rec == nullptr ? 0 : rec->session_token;
}

void Server::DisconnectClient(ClientId client, DisconnectReason reason) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  ClientRec* rec = FindClient(client);
  if (rec == nullptr) {
    return;
  }
  ++session_counters_.disconnects;
  trace_.RecordDisconnect(client, reason);
  // The connection is gone either way; the error sink captured it.
  rec->error_sink = nullptr;
  if (rec->dead || rec->close_down == CloseDownMode::kDestroyAll) {
    if (!rec->dead) {
      CloseDownClient(rec);
    }
    clients_.erase(client);
    return;
  }
  rec->retained = true;
  rec->retained_at = std::chrono::steady_clock::now();
  ++session_counters_.retained;
}

ClientId Server::ResumeSession(uint64_t token) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  if (token == 0) {
    return 0;
  }
  for (auto& [id, rec] : clients_) {
    if (rec->session_token == token && !rec->dead) {
      // The token proves identity, so a session that is still nominally
      // connected is adoptable too: the client can redial a broken wire
      // (half-open socket, blackholed pings) before the server's reader
      // notices the old connection die.  Without adoption the re-register
      // would collide with the live session's resource ids.  The wire layer
      // tracks which connection owns the client, so the stale connection's
      // eventual teardown no-ops instead of destroying the adopted session.
      rec->retained = false;
      ++session_counters_.resumed;
      return id;
    }
  }
  return 0;
}

bool Server::ClientRetained(ClientId client) const {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  const ClientRec* rec = FindClient(client);
  return rec != nullptr && rec->retained;
}

size_t Server::RetainedSessionCount() const {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  size_t count = 0;
  for (const auto& [id, rec] : clients_) {
    if (rec->retained) {
      ++count;
    }
  }
  return count;
}

size_t Server::ReapRetainedSessions(uint64_t grace_ms, bool include_permanent) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  const auto now = std::chrono::steady_clock::now();
  std::vector<ClientId> expired;
  for (const auto& [id, rec] : clients_) {
    if (!rec->retained) {
      continue;
    }
    if (rec->close_down == CloseDownMode::kRetainPermanent && !include_permanent) {
      continue;
    }
    const auto age =
        std::chrono::duration_cast<std::chrono::milliseconds>(now - rec->retained_at);
    if (static_cast<uint64_t>(age.count()) >= grace_ms) {
      expired.push_back(id);
    }
  }
  for (ClientId id : expired) {
    if (ClientRec* rec = FindClient(id)) {
      if (!rec->dead) {
        CloseDownClient(rec);
      }
      clients_.erase(id);
      ++session_counters_.reaped;
    }
  }
  return expired.size();
}

ResourceCounts Server::ClientResources(ClientId client) const {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  ResourceCounts counts;
  for (const auto& [id, window] : windows_) {
    if (window->owner == client && id != kRootWindow) {
      ++counts.windows;
      counts.properties += window->properties.size();
    }
  }
  for (const auto& [gc, owner] : gc_owners_) {
    if (owner == client) {
      ++counts.gcs;
    }
  }
  for (const auto& [atom, owner] : selections_) {
    if (owner.second == client) {
      ++counts.selections;
    }
  }
  return counts;
}

size_t Server::OrphanResourceCount() const {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  size_t orphans = 0;
  for (const auto& [id, window] : windows_) {
    if (id != kRootWindow && window->owner != 0 &&
        clients_.find(window->owner) == clients_.end()) {
      ++orphans;
    }
  }
  for (const auto& [gc, owner] : gc_owners_) {
    if (clients_.find(owner) == clients_.end()) {
      ++orphans;
    }
  }
  for (const auto& [atom, owner] : selections_) {
    if (clients_.find(owner.second) == clients_.end()) {
      ++orphans;
    }
  }
  return orphans;
}

void Server::SetErrorSink(ClientId client, ErrorSink sink) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  if (ClientRec* rec = FindClient(client)) {
    rec->error_sink = std::move(sink);
  }
}

uint64_t Server::ClientSequence(ClientId client) const {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  const ClientRec* rec = FindClient(client);
  return rec == nullptr ? 0 : rec->sequence;
}

// ---------------------------------------------------------------------------
// Buffered request pipeline: decoding the output queue a Display flushes.

bool Server::ApplyRequest(ClientId client, const Request& request, bool synchronous) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  ClientRec* rec = FindClient(client);
  if (rec == nullptr || rec->dead) {
    return false;
  }
  // The request carries the sequence number the client assigned at enqueue
  // time; BeginRequest's increment must land exactly on it so a deferred
  // error identifies the offending request.
  if (request.sequence != 0) {
    rec->sequence = request.sequence - 1;
  }
  bool ok = true;
  switch (request.op) {
    case RequestOpcode::kCreateWindow:
      ok = CreateWindow(client, request.window, request.x, request.y, request.width,
                        request.height, request.border_width, request.resource) != kNone;
      break;
    case RequestOpcode::kDestroyWindow:
      ok = DestroyWindow(client, request.window);
      break;
    case RequestOpcode::kMapWindow:
      ok = MapWindow(client, request.window);
      break;
    case RequestOpcode::kUnmapWindow:
      ok = UnmapWindow(client, request.window);
      break;
    case RequestOpcode::kConfigureWindow:
      ok = ConfigureWindow(client, request.window, request.x, request.y, request.width,
                           request.height, request.border_width);
      break;
    case RequestOpcode::kRaiseWindow:
      ok = RaiseWindow(client, request.window);
      break;
    case RequestOpcode::kSelectInput:
      SelectInput(client, request.window, request.mask);
      break;
    case RequestOpcode::kSetWindowBackground:
      ok = SetWindowBackground(client, request.window, request.pixel);
      break;
    case RequestOpcode::kChangeProperty:
      ok = ChangeProperty(client, request.window, request.atom, request.text);
      break;
    case RequestOpcode::kDeleteProperty:
      ok = DeleteProperty(client, request.window, request.atom);
      break;
    case RequestOpcode::kCreateGc:
      ok = CreateGc(client, request.resource) != kNone;
      break;
    case RequestOpcode::kFreeGc:
      FreeGc(client, request.gc);
      break;
    case RequestOpcode::kChangeGc:
      ok = ChangeGc(client, request.gc, request.gc_values);
      break;
    case RequestOpcode::kClearWindow:
      ClearWindow(client, request.window);
      break;
    case RequestOpcode::kClearArea:
      ClearArea(client, request.window, request.rect);
      break;
    case RequestOpcode::kFillRectangle:
      FillRectangle(client, request.window, request.gc, request.rect);
      break;
    case RequestOpcode::kDrawRectangle:
      DrawRectangle(client, request.window, request.gc, request.rect);
      break;
    case RequestOpcode::kDrawLine:
      DrawLine(client, request.window, request.gc, request.x, request.y, request.x1, request.y1);
      break;
    case RequestOpcode::kDrawString:
      DrawString(client, request.window, request.gc, request.x, request.y, request.text);
      break;
    case RequestOpcode::kSetInputFocus:
      SetInputFocus(client, request.window);
      break;
    case RequestOpcode::kSetSelectionOwner:
      SetSelectionOwner(client, request.atom, request.window);
      break;
    case RequestOpcode::kConvertSelection:
      ConvertSelection(client, request.atom, request.target, request.property,
                       request.requestor);
      break;
    case RequestOpcode::kSendSelectionNotify:
      SendSelectionNotify(client, request.requestor, request.atom, request.target,
                          request.property);
      break;
    case RequestOpcode::kSendEvent:
      SendEvent(client, request.window, request.event, request.mask);
      break;
    case RequestOpcode::kSetCloseDownMode:
      if (BeginRequest(client, RequestType::kOther)) {
        if (request.mask <= static_cast<uint32_t>(CloseDownMode::kRetainPermanent)) {
          rec->close_down = static_cast<CloseDownMode>(request.mask);
        } else {
          RaiseError(client, ErrorCode::kBadValue, kNone, RequestType::kOther);
          ok = false;
        }
      } else {
        ok = false;
      }
      break;
    case RequestOpcode::kReplayMark:
      if (BeginRequest(client, RequestType::kOther)) {
        rec->replaying = request.mask != 0;
      } else {
        ok = false;
      }
      break;
    case RequestOpcode::kReparentWindow:
      ok = ReparentWindow(client, request.window, request.resource, request.x, request.y);
      break;
  }
  if (synchronous) {
    // XSynchronize: the client waits out a full round trip per request to
    // learn its status immediately.
    CountRoundTrip();
  }
  return ok;
}

size_t Server::ApplyBatch(ClientId client, const std::vector<Request>& requests) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  size_t applied = 0;
  for (const Request& request : requests) {
    if (ApplyRequest(client, request)) {
      ++applied;
    }
  }
  ++counters_.flushes;
  counters_.batched_requests += requests.size();
  if (requests.size() > counters_.max_batch) {
    counters_.max_batch = requests.size();
  }
  // The flush marker lands after the batch's request records, mirroring the
  // order things hit the wire.
  trace_.RecordFlush(client, requests.size());
  return applied;
}

// ---------------------------------------------------------------------------
// Sharded batch dispatch (see shard.h for the locking model).

WindowId Server::SubtreeRootLocked(WindowId window) const {
  const WindowRec* rec = FindWindow(window);
  if (rec == nullptr || window == kRootWindow) {
    return kNone;
  }
  while (rec->parent != kRootWindow) {
    const WindowRec* parent = FindWindow(rec->parent);
    if (parent == nullptr) {
      // Detached or mid-teardown: treat the highest known ancestor as the
      // subtree root rather than escalating to the global shard.
      break;
    }
    rec = parent;
  }
  return rec->id;
}

std::vector<ShardKey> Server::ClassifyBatchShards(
    ClientId client, const std::vector<Request>& requests) const {
  (void)client;
  std::lock_guard<std::recursive_mutex> lock(mu_);
  std::vector<ShardKey> keys;
  keys.reserve(4);
  // Subtree of `window`, degrading to the global shard for the root window
  // (root properties back Tk's send registry -- serialize those) and for
  // windows the classifier cannot place.
  auto subtree_or_global = [&](WindowId window) -> ShardKey {
    WindowId root = SubtreeRootLocked(window);
    if (root == kNone) {
      return ShardKey{ShardClass::kGlobal, 0};
    }
    return ShardKey{ShardClass::kWindowSubtree, root};
  };
  for (const Request& request : requests) {
    switch (request.op) {
      case RequestOpcode::kCreateWindow:
        // `window` is the parent; a top-level create founds a new subtree
        // whose shard is the client-allocated id itself.
        if (request.window == kRootWindow) {
          keys.push_back(ShardKey{ShardClass::kWindowSubtree, request.resource});
        } else {
          keys.push_back(subtree_or_global(request.window));
        }
        break;
      case RequestOpcode::kReparentWindow:
        // The cross-shard case: source subtree plus destination subtree.
        keys.push_back(subtree_or_global(request.window));
        if (request.resource == kRootWindow) {
          // Reparenting directly under the root makes `window` a subtree
          // root of its own.
          keys.push_back(ShardKey{ShardClass::kWindowSubtree, request.window});
        } else {
          keys.push_back(subtree_or_global(request.resource));
        }
        break;
      case RequestOpcode::kDestroyWindow:
      case RequestOpcode::kMapWindow:
      case RequestOpcode::kUnmapWindow:
      case RequestOpcode::kConfigureWindow:
      case RequestOpcode::kRaiseWindow:
      case RequestOpcode::kSelectInput:
      case RequestOpcode::kSetWindowBackground:
      case RequestOpcode::kChangeProperty:
      case RequestOpcode::kDeleteProperty:
      case RequestOpcode::kClearWindow:
      case RequestOpcode::kClearArea:
      // Draw requests read their GC but only mutate the window, so they
      // stay inside the subtree shard (the server mutex guards the actual
      // GC map read).
      case RequestOpcode::kFillRectangle:
      case RequestOpcode::kDrawRectangle:
      case RequestOpcode::kDrawLine:
      case RequestOpcode::kDrawString:
        keys.push_back(subtree_or_global(request.window));
        break;
      case RequestOpcode::kCreateGc:
      case RequestOpcode::kFreeGc:
      case RequestOpcode::kChangeGc:
        keys.push_back(ShardKey{ShardClass::kGc, 0});
        break;
      case RequestOpcode::kSetSelectionOwner:
      case RequestOpcode::kConvertSelection:
      case RequestOpcode::kSendSelectionNotify:
        keys.push_back(ShardKey{ShardClass::kAtom, 0});
        break;
      case RequestOpcode::kSendEvent:
      case RequestOpcode::kSetInputFocus:
      case RequestOpcode::kSetCloseDownMode:
      case RequestOpcode::kReplayMark:
        keys.push_back(ShardKey{ShardClass::kGlobal, 0});
        break;
    }
  }
  std::sort(keys.begin(), keys.end());
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
  return keys;
}

size_t Server::ApplyBatchSharded(ClientId client, const std::vector<Request>& requests) {
  // Classification reads the tree under mu_, released before the shard
  // acquisition: shard locks are always taken with mu_ free, and mu_ is
  // re-taken per request inside -- the lock order that keeps batch
  // concurrency deadlock-free.
  ShardTable::Hold hold = shard_table_.Acquire(ClassifyBatchShards(client, requests));
  const auto start = std::chrono::steady_clock::now();
  uint64_t delay_ms = shard_hold_delay_ms_.load(std::memory_order_relaxed);
  if (delay_ms != 0) {
    // Contention-test hook: stretch the shard hold without touching mu_, so
    // overlap (or its absence) is observable in batch wall-clock.
    std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms));
  }
  size_t applied = 0;
  for (const Request& request : requests) {
    if (ApplyRequest(client, request)) {
      ++applied;
    }
  }
  uint64_t duration_ns = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(std::chrono::steady_clock::now() -
                                                           start)
          .count());
  {
    std::lock_guard<std::recursive_mutex> lock(mu_);
    ++counters_.flushes;
    counters_.batched_requests += requests.size();
    if (requests.size() > counters_.max_batch) {
      counters_.max_batch = requests.size();
    }
    trace_.RecordFlush(client, requests.size(), duration_ns);
  }
  return applied;
}

bool Server::HasPendingEvents(ClientId client) const {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  auto it = clients_.find(client);
  return it != clients_.end() && !it->second->queue.empty();
}

size_t Server::PendingEventCount(ClientId client) const {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  const ClientRec* rec = FindClient(client);
  return rec == nullptr ? 0 : rec->queue.size();
}

bool Server::NextEvent(ClientId client, Event* out) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  ClientRec* rec = FindClient(client);
  if (rec == nullptr || rec->queue.empty()) {
    return false;
  }
  *out = rec->queue.front();
  rec->queue.pop_front();
  return true;
}

// ---------------------------------------------------------------------------
// Event delivery.

void Server::EnqueueEvent(ClientRec* rec, const Event& event) {
  if (rec == nullptr || rec->dead) {
    return;
  }
  // A retained session has nobody draining its queue; keep the most recent
  // events but bound the memory a long disconnect can pin.
  constexpr size_t kRetainedQueueCap = 1024;
  if (rec->retained && rec->queue.size() >= kRetainedQueueCap) {
    rec->queue.pop_front();
  }
  rec->queue.push_back(event);
  trace_.RecordEvent(rec->id, event.type, event.window);
}

void Server::Deliver(WindowId window, const Event& event, uint32_t mask) {
  const WindowRec* rec = FindWindow(window);
  if (rec == nullptr) {
    return;
  }
  for (const auto& [client_id, selected] : rec->event_masks) {
    if ((selected & mask) == 0) {
      continue;
    }
    EnqueueEvent(FindClient(client_id), event);
  }
}

WindowId Server::DeliverWithPropagation(WindowId window, Event event, uint32_t mask) {
  WindowId current = window;
  while (current != kNone) {
    const WindowRec* rec = FindWindow(current);
    if (rec == nullptr) {
      return kNone;
    }
    bool selected = false;
    for (const auto& [client_id, selected_mask] : rec->event_masks) {
      if ((selected_mask & mask) != 0) {
        selected = true;
        break;
      }
    }
    if (selected) {
      // Re-express coordinates relative to the delivery window.
      std::optional<Point> abs = AbsolutePosition(current);
      if (abs) {
        event.x = event.x_root - abs->x;
        event.y = event.y_root - abs->y;
      }
      event.window = current;
      Deliver(current, event, mask);
      return current;
    }
    current = rec->parent;
  }
  return kNone;
}

// ---------------------------------------------------------------------------
// Windows.

WindowId Server::CreateWindow(ClientId client, WindowId parent, int x, int y, int width,
                              int height, int border_width, WindowId id) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  if (!BeginRequest(client, RequestType::kCreateWindow, parent)) {
    return kNone;
  }
  ++counters_.create_window;
  WindowRec* parent_rec = FindWindow(parent);
  if (parent_rec == nullptr) {
    RaiseError(client, ErrorCode::kBadWindow, parent, RequestType::kCreateWindow);
    return kNone;
  }
  if (id != kNone && FindWindow(id) != nullptr) {
    // During a session-journal replay, re-creating a window the retained
    // session still holds is an idempotent upsert, not an error: refresh the
    // geometry and keep the existing record (children, properties, masks).
    WindowRec* existing = FindWindow(id);
    const ClientRec* owner_rec = FindClient(client);
    if (existing->owner == client && owner_rec != nullptr && owner_rec->replaying) {
      existing->geometry = Rect{x, y, std::max(1, width), std::max(1, height)};
      existing->border_width = border_width;
      return id;
    }
    // X raises BadIDChoice for a reused client-allocated id; BadValue is the
    // closest code the simulator has.
    RaiseError(client, ErrorCode::kBadValue, id, RequestType::kCreateWindow);
    return kNone;
  }
  if (width <= 0 || height <= 0) {
    // X would refuse with BadValue; the simulator degrades to a 1x1 window
    // but still reports the error so misbehaving callers are observable.
    RaiseError(client, ErrorCode::kBadValue, parent, RequestType::kCreateWindow);
  }
  if (id == kNone) {
    id = next_id_++;
  }
  auto rec = std::make_unique<WindowRec>();
  rec->id = id;
  rec->parent = parent;
  rec->owner = client;
  rec->geometry = Rect{x, y, std::max(1, width), std::max(1, height)};
  rec->border_width = border_width;
  windows_[id] = std::move(rec);
  parent_rec->children.push_back(id);
  return id;
}

void Server::DestroyWindowInternal(WindowRec* rec) {
  // Children first, depth-first (X destroys subtrees bottom-up).
  std::vector<WindowId> children = rec->children;
  for (WindowId child : children) {
    if (WindowRec* child_rec = FindWindow(child)) {
      DestroyWindowInternal(child_rec);
    }
  }
  Event event;
  event.type = EventType::kDestroyNotify;
  event.window = rec->id;
  event.time = Tick();
  Deliver(rec->id, event, kStructureNotifyMask);
  if (WindowRec* parent = FindWindow(rec->parent)) {
    parent->children.erase(std::remove(parent->children.begin(), parent->children.end(),
                                       rec->id),
                           parent->children.end());
    Deliver(parent->id, event, kSubstructureNotifyMask);
  }
  // Release selections owned via this window.
  for (auto it = selections_.begin(); it != selections_.end();) {
    if (it->second.first == rec->id) {
      it = selections_.erase(it);
    } else {
      ++it;
    }
  }
  if (focus_window_ == rec->id) {
    focus_window_ = kNone;
  }
  if (pointer_window_ == rec->id) {
    pointer_window_ = kRootWindow;
  }
  if (grab_window_ == rec->id) {
    grab_window_ = kNone;
  }
  windows_.erase(rec->id);
}

bool Server::DestroyWindow(ClientId client, WindowId window) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  if (!BeginRequest(client, RequestType::kDestroyWindow, window)) {
    return false;
  }
  ++counters_.destroy_window;
  WindowRec* rec = FindWindow(window);
  if (rec == nullptr || window == kRootWindow) {
    RaiseError(client, ErrorCode::kBadWindow, window, RequestType::kDestroyWindow);
    return false;
  }
  DestroyWindowInternal(rec);
  return true;
}

bool Server::MapWindow(ClientId client, WindowId window) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  if (!BeginRequest(client, RequestType::kMapWindow, window)) {
    return false;
  }
  ++counters_.map_window;
  WindowRec* rec = FindWindow(window);
  if (rec == nullptr) {
    RaiseError(client, ErrorCode::kBadWindow, window, RequestType::kMapWindow);
    return false;
  }
  if (rec->mapped) {
    return true;
  }
  rec->mapped = true;
  Event event;
  event.type = EventType::kMapNotify;
  event.window = window;
  event.time = Tick();
  Deliver(window, event, kStructureNotifyMask);
  if (IsViewable(window)) {
    PaintBackground(*rec);
    GenerateExpose(window);
    // Mapping may reveal already-mapped children.
    for (WindowId child : rec->children) {
      if (IsViewable(child)) {
        GenerateExpose(child);
      }
    }
  }
  return true;
}

bool Server::UnmapWindow(ClientId client, WindowId window) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  if (!BeginRequest(client, RequestType::kUnmapWindow, window)) {
    return false;
  }
  WindowRec* rec = FindWindow(window);
  if (rec == nullptr) {
    RaiseError(client, ErrorCode::kBadWindow, window, RequestType::kUnmapWindow);
    return false;
  }
  if (!rec->mapped) {
    return false;  // Unmapping an unmapped window is not an X error.
  }
  rec->mapped = false;
  Event event;
  event.type = EventType::kUnmapNotify;
  event.window = window;
  event.time = Tick();
  Deliver(window, event, kStructureNotifyMask);
  return true;
}

bool Server::ConfigureWindow(ClientId client, WindowId window, int x, int y, int width,
                             int height, int border_width) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  if (!BeginRequest(client, RequestType::kConfigureWindow, window)) {
    return false;
  }
  ++counters_.configure_window;
  WindowRec* rec = FindWindow(window);
  if (rec == nullptr) {
    RaiseError(client, ErrorCode::kBadWindow, window, RequestType::kConfigureWindow);
    return false;
  }
  Rect old = rec->geometry;
  if (x != -1 || y != -1) {
    if (x != -1) {
      rec->geometry.x = x;
    }
    if (y != -1) {
      rec->geometry.y = y;
    }
  }
  bool resized = false;
  if (width > 0 && width != rec->geometry.width) {
    rec->geometry.width = width;
    resized = true;
  }
  if (height > 0 && height != rec->geometry.height) {
    rec->geometry.height = height;
    resized = true;
  }
  if (border_width >= 0) {
    rec->border_width = border_width;
  }
  bool moved = rec->geometry.x != old.x || rec->geometry.y != old.y;
  if (!moved && !resized && border_width < 0) {
    return true;
  }
  Event event;
  event.type = EventType::kConfigureNotify;
  event.window = window;
  event.area = rec->geometry;
  event.border_width = rec->border_width;
  event.time = Tick();
  Deliver(window, event, kStructureNotifyMask);
  if (WindowRec* parent = FindWindow(rec->parent)) {
    Deliver(parent->id, event, kSubstructureNotifyMask);
  }
  if ((resized || moved) && IsViewable(window)) {
    PaintBackground(*rec);
    GenerateExpose(window);
  }
  return true;
}

bool Server::RaiseWindow(ClientId client, WindowId window) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  if (!BeginRequest(client, RequestType::kConfigureWindow, window)) {
    return false;
  }
  WindowRec* rec = FindWindow(window);
  if (rec == nullptr) {
    RaiseError(client, ErrorCode::kBadWindow, window, RequestType::kConfigureWindow);
    return false;
  }
  WindowRec* parent = FindWindow(rec->parent);
  if (parent == nullptr) {
    return true;
  }
  auto it = std::find(parent->children.begin(), parent->children.end(), window);
  if (it != parent->children.end()) {
    parent->children.erase(it);
    parent->children.push_back(window);
  }
  if (IsViewable(window)) {
    GenerateExpose(window);
  }
  return true;
}

bool Server::ReparentWindow(ClientId client, WindowId window, WindowId new_parent, int x,
                            int y) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  if (!BeginRequest(client, RequestType::kConfigureWindow, window)) {
    return false;
  }
  WindowRec* rec = FindWindow(window);
  if (rec == nullptr || window == kRootWindow) {
    RaiseError(client, ErrorCode::kBadWindow, window, RequestType::kConfigureWindow);
    return false;
  }
  WindowRec* parent = FindWindow(new_parent);
  if (parent == nullptr) {
    RaiseError(client, ErrorCode::kBadWindow, new_parent, RequestType::kConfigureWindow);
    return false;
  }
  // X11's BadMatch: the new parent must not live inside the window's own
  // subtree (that would orphan the tree).  kBadValue is the closest code the
  // error model has.
  for (WindowId ancestor = new_parent; ancestor != kNone;) {
    if (ancestor == window) {
      RaiseError(client, ErrorCode::kBadValue, new_parent, RequestType::kConfigureWindow);
      return false;
    }
    const WindowRec* walk = FindWindow(ancestor);
    ancestor = walk == nullptr ? kNone : walk->parent;
  }
  if (WindowRec* old_parent = FindWindow(rec->parent); old_parent != nullptr) {
    auto it = std::find(old_parent->children.begin(), old_parent->children.end(), window);
    if (it != old_parent->children.end()) {
      old_parent->children.erase(it);
    }
  }
  rec->parent = new_parent;
  rec->geometry.x = x;
  rec->geometry.y = y;
  parent->children.push_back(window);  // Reparenting places the window on top.
  ++counters_.configure_window;
  if (IsViewable(window)) {
    GenerateExpose(window);
  }
  return true;
}

void Server::SelectInput(ClientId client, WindowId window, uint32_t mask) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  if (!BeginRequest(client, RequestType::kSelectInput, window)) {
    return;
  }
  WindowRec* rec = FindWindow(window);
  if (rec == nullptr) {
    RaiseError(client, ErrorCode::kBadWindow, window, RequestType::kSelectInput);
    return;
  }
  if (mask == 0) {
    rec->event_masks.erase(client);
  } else {
    rec->event_masks[client] = mask;
  }
}

bool Server::SetWindowBackground(ClientId client, WindowId window, Pixel pixel) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  if (!BeginRequest(client, RequestType::kConfigureWindow, window)) {
    return false;
  }
  WindowRec* rec = FindWindow(window);
  if (rec == nullptr) {
    RaiseError(client, ErrorCode::kBadWindow, window, RequestType::kConfigureWindow);
    return false;
  }
  rec->background = pixel;
  return true;
}

bool Server::WindowExists(WindowId window) const {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  return FindWindow(window) != nullptr;
}

std::optional<Rect> Server::WindowGeometry(WindowId window) const {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  const WindowRec* rec = FindWindow(window);
  if (rec == nullptr) {
    return std::nullopt;
  }
  return rec->geometry;
}

std::optional<WindowId> Server::WindowParent(WindowId window) const {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  const WindowRec* rec = FindWindow(window);
  if (rec == nullptr) {
    return std::nullopt;
  }
  return rec->parent;
}

std::vector<WindowId> Server::WindowChildren(WindowId window) const {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  const WindowRec* rec = FindWindow(window);
  return rec == nullptr ? std::vector<WindowId>() : rec->children;
}

bool Server::IsMapped(WindowId window) const {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  const WindowRec* rec = FindWindow(window);
  return rec != nullptr && rec->mapped;
}

bool Server::IsViewable(WindowId window) const {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  const WindowRec* rec = FindWindow(window);
  while (rec != nullptr) {
    if (!rec->mapped) {
      return false;
    }
    if (rec->parent == kNone) {
      return true;
    }
    rec = FindWindow(rec->parent);
  }
  return false;
}

std::optional<Point> Server::AbsolutePosition(WindowId window) const {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  const WindowRec* rec = FindWindow(window);
  if (rec == nullptr) {
    return std::nullopt;
  }
  Point point;
  while (rec != nullptr) {
    point.x += rec->geometry.x;
    point.y += rec->geometry.y;
    rec = FindWindow(rec->parent);
  }
  return point;
}

Rect Server::AbsoluteRect(const WindowRec& rec) const {
  std::optional<Point> abs = AbsolutePosition(rec.id);
  Rect out = rec.geometry;
  out.x = abs ? abs->x : 0;
  out.y = abs ? abs->y : 0;
  return out;
}

Rect Server::VisibleRegion(const WindowRec& rec) const {
  Rect region = AbsoluteRect(rec);
  const WindowRec* current = FindWindow(rec.parent);
  while (current != nullptr) {
    region = region.Intersection(AbsoluteRect(*current));
    current = FindWindow(current->parent);
  }
  return region;
}

void Server::GenerateExpose(WindowId window) {
  const WindowRec* rec = FindWindow(window);
  if (rec == nullptr) {
    return;
  }
  Event event;
  event.type = EventType::kExpose;
  event.window = window;
  event.area = Rect{0, 0, rec->geometry.width, rec->geometry.height};
  event.count = 0;
  event.time = Tick();
  Deliver(window, event, kExposureMask);
}

// ---------------------------------------------------------------------------
// Atoms and properties.

Atom Server::InternAtom(ClientId client, std::string_view name) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  if (!BeginRequest(client, RequestType::kInternAtom)) {
    return kAtomNone;
  }
  CountRoundTrip();
  for (size_t i = 0; i < atoms_.size(); ++i) {
    if (atoms_[i] == name) {
      return static_cast<Atom>(i + 1);
    }
  }
  atoms_.emplace_back(name);
  return static_cast<Atom>(atoms_.size());
}

std::string Server::AtomName(Atom atom) const {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  if (atom == 0 || atom > atoms_.size()) {
    return "";
  }
  return atoms_[atom - 1];
}

bool Server::ChangeProperty(ClientId client, WindowId window, Atom property,
                            std::string value) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  if (!BeginRequest(client, RequestType::kChangeProperty, window)) {
    return false;
  }
  ++counters_.change_property;
  WindowRec* rec = FindWindow(window);
  if (rec == nullptr) {
    RaiseError(client, ErrorCode::kBadWindow, window, RequestType::kChangeProperty);
    return false;
  }
  if (property == kAtomNone || property > atoms_.size()) {
    RaiseError(client, ErrorCode::kBadAtom, property, RequestType::kChangeProperty);
    return false;
  }
  rec->properties[property] = std::move(value);
  Event event;
  event.type = EventType::kPropertyNotify;
  event.window = window;
  event.atom = property;
  event.time = Tick();
  Deliver(window, event, kPropertyChangeMask);
  return true;
}

std::optional<std::string> Server::GetProperty(ClientId client, WindowId window,
                                               Atom property) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  if (!BeginRequest(client, RequestType::kGetProperty, window)) {
    return std::nullopt;
  }
  ++counters_.get_property;
  CountRoundTrip();
  const WindowRec* rec = FindWindow(window);
  if (rec == nullptr) {
    RaiseError(client, ErrorCode::kBadWindow, window, RequestType::kGetProperty);
    return std::nullopt;
  }
  auto it = rec->properties.find(property);
  if (it == rec->properties.end()) {
    return std::nullopt;
  }
  return it->second;
}

bool Server::DeleteProperty(ClientId client, WindowId window, Atom property) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  if (!BeginRequest(client, RequestType::kDeleteProperty, window)) {
    return false;
  }
  WindowRec* rec = FindWindow(window);
  if (rec == nullptr) {
    RaiseError(client, ErrorCode::kBadWindow, window, RequestType::kDeleteProperty);
    return false;
  }
  if (rec->properties.erase(property) == 0) {
    return false;
  }
  Event event;
  event.type = EventType::kPropertyNotify;
  event.window = window;
  event.atom = property;
  event.time = Tick();
  Deliver(window, event, kPropertyChangeMask);
  return true;
}

// ---------------------------------------------------------------------------
// Colors, fonts, cursors, bitmaps.

std::optional<Pixel> Server::AllocNamedColor(ClientId client, std::string_view name) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  if (!BeginRequest(client, RequestType::kAllocColor)) {
    return std::nullopt;
  }
  ++counters_.alloc_color;
  CountRoundTrip();
  std::optional<Rgb> rgb = LookupColor(name);
  if (!rgb) {
    RaiseError(client, ErrorCode::kBadColor, kNone, RequestType::kAllocColor);
    return std::nullopt;
  }
  return PackPixel(*rgb);
}

Pixel Server::AllocColor(ClientId client, Rgb rgb) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  if (!BeginRequest(client, RequestType::kAllocColor)) {
    return 0;
  }
  ++counters_.alloc_color;
  CountRoundTrip();
  return PackPixel(rgb);
}

std::optional<FontId> Server::LoadFont(ClientId client, std::string_view name) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  if (!BeginRequest(client, RequestType::kLoadFont)) {
    return std::nullopt;
  }
  ++counters_.load_font;
  CountRoundTrip();
  auto it = font_ids_.find(name);
  if (it != font_ids_.end()) {
    return it->second;
  }
  std::optional<FontMetrics> metrics = ResolveFont(name);
  if (!metrics) {
    RaiseError(client, ErrorCode::kBadFont, kNone, RequestType::kLoadFont);
    return std::nullopt;
  }
  FontId id = next_id_++;
  fonts_[id] = *metrics;
  font_ids_[std::string(name)] = id;
  return id;
}

const FontMetrics* Server::QueryFont(FontId font) const {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  auto it = fonts_.find(font);
  return it == fonts_.end() ? nullptr : &it->second;
}

CursorId Server::CreateNamedCursor(ClientId client, std::string_view name) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  if (!BeginRequest(client, RequestType::kCreateCursor)) {
    return kNone;
  }
  CountRoundTrip();
  CursorId id = next_id_++;
  cursors_[id] = std::string(name);
  return id;
}

std::optional<std::string> Server::CursorName(CursorId cursor) const {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  auto it = cursors_.find(cursor);
  if (it == cursors_.end()) {
    return std::nullopt;
  }
  return it->second;
}

BitmapId Server::CreateBitmap(ClientId client, std::string_view name, int width,
                              int height) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  if (!BeginRequest(client, RequestType::kCreateBitmap)) {
    return kNone;
  }
  CountRoundTrip();
  BitmapId id = next_id_++;
  bitmaps_[id] = {std::string(name), Rect{0, 0, width, height}};
  return id;
}

std::optional<Rect> Server::BitmapSize(BitmapId bitmap) const {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  auto it = bitmaps_.find(bitmap);
  if (it == bitmaps_.end()) {
    return std::nullopt;
  }
  return it->second.second;
}

// ---------------------------------------------------------------------------
// GCs and drawing.

GcId Server::CreateGc(ClientId client, GcId id) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  if (!BeginRequest(client, RequestType::kCreateGc)) {
    return kNone;
  }
  if (id != kNone && gcs_.count(id) != 0) {
    // Replay upsert, as in CreateWindow: the retained session still holds
    // the GC; keep it (the journal replays its values right after).
    auto owner_it = gc_owners_.find(id);
    const ClientRec* owner_rec = FindClient(client);
    if (owner_it != gc_owners_.end() && owner_it->second == client &&
        owner_rec != nullptr && owner_rec->replaying) {
      return id;
    }
    RaiseError(client, ErrorCode::kBadValue, id, RequestType::kCreateGc);
    return kNone;
  }
  if (id == kNone) {
    id = next_id_++;
  }
  gcs_[id] = Gc();
  gc_owners_[id] = client;
  return id;
}

void Server::FreeGc(ClientId client, GcId gc) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  if (!BeginRequest(client, RequestType::kChangeGc, gc)) {
    return;
  }
  if (gcs_.erase(gc) == 0) {
    RaiseError(client, ErrorCode::kBadGC, gc, RequestType::kChangeGc);
  }
  gc_owners_.erase(gc);
}

bool Server::ChangeGc(ClientId client, GcId gc, const Gc& values) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  if (!BeginRequest(client, RequestType::kChangeGc, gc)) {
    return false;
  }
  auto it = gcs_.find(gc);
  if (it == gcs_.end()) {
    RaiseError(client, ErrorCode::kBadGC, gc, RequestType::kChangeGc);
    return false;
  }
  it->second = values;
  return true;
}

const Server::Gc* Server::GetGc(GcId gc) const {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  auto it = gcs_.find(gc);
  return it == gcs_.end() ? nullptr : &it->second;
}

bool Server::CheckDrawable(ClientId client, WindowId window, const WindowRec* rec, GcId gc,
                           const Gc* context) {
  if (rec == nullptr) {
    RaiseError(client, ErrorCode::kBadWindow, window, RequestType::kDraw);
    return false;
  }
  if (context == nullptr) {
    RaiseError(client, ErrorCode::kBadGC, gc, RequestType::kDraw);
    return false;
  }
  return true;
}

void Server::PaintBackground(WindowRec& rec) {
  Rect clip = VisibleRegion(rec);
  raster_.FillRect(AbsoluteRect(rec), rec.background, clip);
}

void Server::ClearWindow(ClientId client, WindowId window) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  if (!BeginRequest(client, RequestType::kDraw, window)) {
    return;
  }
  ++counters_.draw;
  WindowRec* rec = FindWindow(window);
  if (rec == nullptr) {
    RaiseError(client, ErrorCode::kBadWindow, window, RequestType::kDraw);
    return;
  }
  rec->text_items.clear();
  if (IsViewable(window)) {
    PaintBackground(*rec);
  }
}

void Server::ClearArea(ClientId client, WindowId window, const Rect& area) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  if (!BeginRequest(client, RequestType::kDraw, window)) {
    return;
  }
  ++counters_.draw;
  WindowRec* rec = FindWindow(window);
  if (rec == nullptr) {
    RaiseError(client, ErrorCode::kBadWindow, window, RequestType::kDraw);
    return;
  }
  // The journal anchors each string at its baseline origin; strings anchored
  // inside the cleared area are erased with it.
  rec->text_items.erase(std::remove_if(rec->text_items.begin(), rec->text_items.end(),
                                       [&area](const TextItem& item) {
                                         return area.Contains(item.x, item.y);
                                       }),
                        rec->text_items.end());
  if (IsViewable(window)) {
    std::optional<Point> abs = AbsolutePosition(window);
    Rect target = area;
    target.x += abs->x;
    target.y += abs->y;
    raster_.FillRect(target, rec->background, VisibleRegion(*rec));
  }
}

void Server::FillRectangle(ClientId client, WindowId window, GcId gc, const Rect& rect) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  if (!BeginRequest(client, RequestType::kDraw, window)) {
    return;
  }
  ++counters_.draw;
  WindowRec* rec = FindWindow(window);
  const Gc* context = GetGc(gc);
  if (!CheckDrawable(client, window, rec, gc, context) || !IsViewable(window)) {
    return;
  }
  std::optional<Point> abs = AbsolutePosition(window);
  Rect target = rect;
  target.x += abs->x;
  target.y += abs->y;
  raster_.FillRect(target, context->foreground, VisibleRegion(*rec));
}

void Server::DrawRectangle(ClientId client, WindowId window, GcId gc, const Rect& rect) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  if (!BeginRequest(client, RequestType::kDraw, window)) {
    return;
  }
  ++counters_.draw;
  WindowRec* rec = FindWindow(window);
  const Gc* context = GetGc(gc);
  if (!CheckDrawable(client, window, rec, gc, context) || !IsViewable(window)) {
    return;
  }
  std::optional<Point> abs = AbsolutePosition(window);
  Rect target = rect;
  target.x += abs->x;
  target.y += abs->y;
  raster_.DrawRectOutline(target, context->foreground, VisibleRegion(*rec));
}

void Server::DrawLine(ClientId client, WindowId window, GcId gc, int x0, int y0, int x1,
                      int y1) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  if (!BeginRequest(client, RequestType::kDraw, window)) {
    return;
  }
  ++counters_.draw;
  WindowRec* rec = FindWindow(window);
  const Gc* context = GetGc(gc);
  if (!CheckDrawable(client, window, rec, gc, context) || !IsViewable(window)) {
    return;
  }
  std::optional<Point> abs = AbsolutePosition(window);
  raster_.DrawLine(x0 + abs->x, y0 + abs->y, x1 + abs->x, y1 + abs->y, context->foreground,
                   VisibleRegion(*rec));
}

void Server::DrawString(ClientId client, WindowId window, GcId gc, int x, int y,
                        std::string_view text) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  if (!BeginRequest(client, RequestType::kDraw, window)) {
    return;
  }
  ++counters_.draw;
  WindowRec* rec = FindWindow(window);
  const Gc* context = GetGc(gc);
  if (!CheckDrawable(client, window, rec, gc, context)) {
    return;
  }
  TextItem item;
  item.x = x;
  item.y = y;
  item.text = std::string(text);
  item.pixel = context->foreground;
  item.font = context->font;
  rec->text_items.push_back(item);
  if (!IsViewable(window)) {
    return;
  }
  const FontMetrics* metrics = QueryFont(context->font);
  FontMetrics fallback;
  if (metrics == nullptr) {
    metrics = &fallback;
  }
  std::optional<Point> abs = AbsolutePosition(window);
  raster_.DrawTextBlock(x + abs->x, y + abs->y, metrics->char_width, metrics->ascent,
                        metrics->descent, static_cast<int>(text.size()), context->foreground,
                        VisibleRegion(*rec));
}

std::vector<TextItem> Server::WindowText(WindowId window) const {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  const WindowRec* rec = FindWindow(window);
  return rec == nullptr ? std::vector<TextItem>() : rec->text_items;
}

// ---------------------------------------------------------------------------
// Focus.

void Server::SetInputFocus(ClientId client, WindowId window) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  if (!BeginRequest(client, RequestType::kSetInputFocus, window)) {
    return;
  }
  if (window != kNone && FindWindow(window) == nullptr) {
    RaiseError(client, ErrorCode::kBadWindow, window, RequestType::kSetInputFocus);
    return;
  }
  if (window == focus_window_) {
    return;
  }
  if (focus_window_ != kNone) {
    Event event;
    event.type = EventType::kFocusOut;
    event.window = focus_window_;
    event.time = Tick();
    Deliver(focus_window_, event, kFocusChangeMask);
  }
  focus_window_ = window;
  if (window != kNone) {
    Event event;
    event.type = EventType::kFocusIn;
    event.window = window;
    event.time = Tick();
    Deliver(window, event, kFocusChangeMask);
  }
}

// ---------------------------------------------------------------------------
// Selections (ICCCM shape).

void Server::SetSelectionOwner(ClientId client, Atom selection, WindowId owner) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  if (!BeginRequest(client, RequestType::kSetSelectionOwner, owner)) {
    return;
  }
  if (owner != kNone && FindWindow(owner) == nullptr) {
    RaiseError(client, ErrorCode::kBadWindow, owner, RequestType::kSetSelectionOwner);
    return;
  }
  auto it = selections_.find(selection);
  if (it != selections_.end() && it->second.first != owner) {
    // Notify the previous owner that it has lost the selection.
    Event event;
    event.type = EventType::kSelectionClear;
    event.window = it->second.first;
    event.atom = selection;
    event.time = Tick();
    EnqueueEvent(FindClient(it->second.second), event);
  }
  if (owner == kNone) {
    selections_.erase(selection);
  } else {
    selections_[selection] = {owner, client};
  }
}

WindowId Server::GetSelectionOwner(ClientId client, Atom selection) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  if (!BeginRequest(client, RequestType::kOther)) {
    return kNone;
  }
  CountRoundTrip();
  auto it = selections_.find(selection);
  return it == selections_.end() ? kNone : it->second.first;
}

void Server::ConvertSelection(ClientId client, Atom selection, Atom target, Atom property,
                              WindowId requestor) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  if (!BeginRequest(client, RequestType::kConvertSelection, requestor)) {
    return;
  }
  if (FindWindow(requestor) == nullptr) {
    RaiseError(client, ErrorCode::kBadWindow, requestor, RequestType::kConvertSelection);
    return;
  }
  auto it = selections_.find(selection);
  if (it == selections_.end()) {
    // No owner: refuse with property None.
    Event event;
    event.type = EventType::kSelectionNotify;
    event.window = requestor;
    event.atom = selection;
    event.target = target;
    event.property = kAtomNone;
    event.time = Tick();
    EnqueueEvent(FindClient(client), event);
    return;
  }
  Event event;
  event.type = EventType::kSelectionRequest;
  event.window = it->second.first;
  event.atom = selection;
  event.target = target;
  event.property = property;
  event.requestor = requestor;
  event.time = Tick();
  EnqueueEvent(FindClient(it->second.second), event);
}

void Server::SendSelectionNotify(ClientId client, WindowId requestor, Atom selection,
                                 Atom target, Atom property) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  if (!BeginRequest(client, RequestType::kSendEvent, requestor)) {
    return;
  }
  ++counters_.send_event;
  Event event;
  event.type = EventType::kSelectionNotify;
  event.window = requestor;
  event.atom = selection;
  event.target = target;
  event.property = property;
  event.time = Tick();
  const WindowRec* rec = FindWindow(requestor);
  if (rec != nullptr) {
    EnqueueEvent(FindClient(rec->owner), event);
  }
}

void Server::SendEvent(ClientId client, WindowId destination, const Event& event,
                       uint32_t mask) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  if (!BeginRequest(client, RequestType::kSendEvent, destination)) {
    return;
  }
  ++counters_.send_event;
  const WindowRec* rec = FindWindow(destination);
  if (rec == nullptr) {
    RaiseError(client, ErrorCode::kBadWindow, destination, RequestType::kSendEvent);
    return;
  }
  Event adjusted = event;
  adjusted.window = destination;
  adjusted.time = Tick();
  if (mask == 0) {
    // X11: mask 0 targets the window's creating client.
    EnqueueEvent(FindClient(rec->owner), adjusted);
    return;
  }
  Deliver(destination, adjusted, mask);
}

// ---------------------------------------------------------------------------
// Input injection.

WindowId Server::WindowAt(int x, int y) const {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  const WindowRec* current = FindWindow(kRootWindow);
  if (current == nullptr || !current->geometry.Contains(x, y)) {
    return kRootWindow;
  }
  // Descend into the topmost mapped child containing the point.
  while (true) {
    const WindowRec* next = nullptr;
    for (auto it = current->children.rbegin(); it != current->children.rend(); ++it) {
      const WindowRec* child = FindWindow(*it);
      if (child == nullptr || !child->mapped) {
        continue;
      }
      Rect abs = AbsoluteRect(*child);
      if (abs.Contains(x, y)) {
        next = child;
        break;
      }
    }
    if (next == nullptr) {
      return current->id;
    }
    current = next;
  }
}

std::vector<WindowId> Server::AncestorChain(WindowId window) const {
  std::vector<WindowId> chain;
  const WindowRec* rec = FindWindow(window);
  while (rec != nullptr) {
    chain.push_back(rec->id);
    rec = FindWindow(rec->parent);
  }
  std::reverse(chain.begin(), chain.end());
  return chain;
}

void Server::UpdateCrossing(WindowId old_window, WindowId new_window) {
  if (old_window == new_window) {
    return;
  }
  std::vector<WindowId> old_chain = AncestorChain(old_window);
  std::vector<WindowId> new_chain = AncestorChain(new_window);
  // Windows being left: in the old chain but not the new one, deepest first.
  for (auto it = old_chain.rbegin(); it != old_chain.rend(); ++it) {
    if (std::find(new_chain.begin(), new_chain.end(), *it) == new_chain.end()) {
      Event event;
      event.type = EventType::kLeaveNotify;
      event.window = *it;
      event.x_root = pointer_.x;
      event.y_root = pointer_.y;
      event.state = modifier_state_ | button_state_;
      event.time = Tick();
      Deliver(*it, event, kLeaveWindowMask);
    }
  }
  // Windows being entered: in the new chain but not the old one, top-down.
  for (WindowId id : new_chain) {
    if (std::find(old_chain.begin(), old_chain.end(), id) == old_chain.end()) {
      Event event;
      event.type = EventType::kEnterNotify;
      event.window = id;
      event.x_root = pointer_.x;
      event.y_root = pointer_.y;
      event.state = modifier_state_ | button_state_;
      event.time = Tick();
      std::optional<Point> abs = AbsolutePosition(id);
      if (abs) {
        event.x = pointer_.x - abs->x;
        event.y = pointer_.y - abs->y;
      }
      Deliver(id, event, kEnterWindowMask);
    }
  }
}

void Server::InjectPointerMove(int x, int y) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  pointer_.x = x;
  pointer_.y = y;
  WindowId new_window = WindowAt(x, y);
  WindowId old_window = pointer_window_;
  pointer_window_ = new_window;
  if (grab_window_ == kNone) {
    UpdateCrossing(old_window, new_window);
  }
  Event event;
  event.type = EventType::kMotionNotify;
  event.x_root = x;
  event.y_root = y;
  event.state = modifier_state_ | button_state_;
  event.time = Tick();
  uint32_t mask = kPointerMotionMask;
  if (button_state_ != 0) {
    mask |= kButtonMotionMask;
  }
  if (grab_window_ != kNone) {
    // Implicit grab: motion goes to the grab window regardless of position.
    std::optional<Point> abs = AbsolutePosition(grab_window_);
    if (abs) {
      event.x = x - abs->x;
      event.y = y - abs->y;
    }
    event.window = grab_window_;
    Deliver(grab_window_, event, mask);
    return;
  }
  event.window = new_window;
  DeliverWithPropagation(new_window, event, mask);
}

void Server::InjectButton(int button, bool press) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  uint32_t bit = kButton1Mask << (button - 1);
  Event event;
  event.type = press ? EventType::kButtonPress : EventType::kButtonRelease;
  event.x_root = pointer_.x;
  event.y_root = pointer_.y;
  event.detail = static_cast<uint32_t>(button);
  event.state = modifier_state_ | button_state_;  // State *before* the transition.
  event.time = Tick();
  if (press) {
    button_state_ |= bit;
  } else {
    button_state_ &= ~bit;
  }
  WindowId target = grab_window_ != kNone ? grab_window_ : WindowAt(pointer_.x, pointer_.y);
  if (grab_window_ != kNone) {
    std::optional<Point> abs = AbsolutePosition(grab_window_);
    if (abs) {
      event.x = pointer_.x - abs->x;
      event.y = pointer_.y - abs->y;
    }
    event.window = grab_window_;
    Deliver(grab_window_, event, press ? kButtonPressMask : kButtonReleaseMask);
  } else {
    target = DeliverWithPropagation(target, event,
                                    press ? kButtonPressMask : kButtonReleaseMask);
  }
  if (press && grab_window_ == kNone && target != kNone) {
    grab_window_ = target;  // Implicit pointer grab until all buttons release.
  }
  if (!press && button_state_ == 0 && grab_window_ != kNone) {
    WindowId grabbed = grab_window_;
    grab_window_ = kNone;
    // Releasing the grab may reveal that the pointer moved elsewhere.
    (void)grabbed;
    UpdateCrossing(pointer_window_, WindowAt(pointer_.x, pointer_.y));
    pointer_window_ = WindowAt(pointer_.x, pointer_.y);
  }
}

void Server::InjectKey(KeySym keysym, bool press) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  uint32_t bit = 0;
  switch (keysym) {
    case kKeyShiftL:
    case kKeyShiftR:
      bit = kShiftMask;
      break;
    case kKeyControlL:
    case kKeyControlR:
      bit = kControlMask;
      break;
    case kKeyMetaL:
    case kKeyMetaR:
    case kKeyAltL:
    case kKeyAltR:
      bit = kMod1Mask;
      break;
    default:
      break;
  }
  Event event;
  event.type = press ? EventType::kKeyPress : EventType::kKeyRelease;
  event.detail = keysym;
  event.state = modifier_state_ | button_state_;
  event.x_root = pointer_.x;
  event.y_root = pointer_.y;
  event.time = Tick();
  if (bit != 0) {
    if (press) {
      modifier_state_ |= bit;
    } else {
      modifier_state_ &= ~bit;
    }
  }
  WindowId target = focus_window_ != kNone ? focus_window_ : WindowAt(pointer_.x, pointer_.y);
  std::optional<Point> abs = AbsolutePosition(target);
  if (abs) {
    event.x = pointer_.x - abs->x;
    event.y = pointer_.y - abs->y;
  }
  event.window = target;
  DeliverWithPropagation(target, event, press ? kKeyPressMask : kKeyReleaseMask);
}

// ---------------------------------------------------------------------------
// Introspection.

namespace {

void DumpWindow(const Server& server, WindowId id, int depth, std::ostringstream& out) {
  std::optional<Rect> geometry = server.WindowGeometry(id);
  if (!geometry) {
    return;
  }
  for (int i = 0; i < depth; ++i) {
    out << "  ";
  }
  out << "window " << id << " [" << geometry->width << "x" << geometry->height << "+"
      << geometry->x << "+" << geometry->y << "]" << (server.IsMapped(id) ? "" : " unmapped");
  std::vector<TextItem> text = server.WindowText(id);
  if (!text.empty()) {
    out << " text={";
    for (size_t i = 0; i < text.size(); ++i) {
      if (i > 0) {
        out << ", ";
      }
      out << "\"" << text[i].text << "\"";
    }
    out << "}";
  }
  out << "\n";
  for (WindowId child : server.WindowChildren(id)) {
    DumpWindow(server, child, depth + 1, out);
  }
}

}  // namespace

std::string Server::DumpTree() const {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  std::ostringstream out;
  DumpWindow(*this, kRootWindow, 0, out);
  return out.str();
}

const char* EventTypeName(EventType type) {
  switch (type) {
    case EventType::kNone:
      return "None";
    case EventType::kKeyPress:
      return "KeyPress";
    case EventType::kKeyRelease:
      return "KeyRelease";
    case EventType::kButtonPress:
      return "ButtonPress";
    case EventType::kButtonRelease:
      return "ButtonRelease";
    case EventType::kMotionNotify:
      return "MotionNotify";
    case EventType::kEnterNotify:
      return "EnterNotify";
    case EventType::kLeaveNotify:
      return "LeaveNotify";
    case EventType::kFocusIn:
      return "FocusIn";
    case EventType::kFocusOut:
      return "FocusOut";
    case EventType::kExpose:
      return "Expose";
    case EventType::kConfigureNotify:
      return "ConfigureNotify";
    case EventType::kMapNotify:
      return "MapNotify";
    case EventType::kUnmapNotify:
      return "UnmapNotify";
    case EventType::kDestroyNotify:
      return "DestroyNotify";
    case EventType::kCreateNotify:
      return "CreateNotify";
    case EventType::kPropertyNotify:
      return "PropertyNotify";
    case EventType::kSelectionClear:
      return "SelectionClear";
    case EventType::kSelectionRequest:
      return "SelectionRequest";
    case EventType::kSelectionNotify:
      return "SelectionNotify";
    case EventType::kClientMessage:
      return "ClientMessage";
  }
  return "?";
}

}  // namespace xsim
