// The server-side color database (the rgb.txt of a real X server) and pixel
// packing.  Tk's resource cache asks the server to resolve textual color
// names like "MediumSeaGreen" (Section 3.3 of the paper); this module
// provides that lookup plus #rgb/#rrggbb parsing.

#ifndef SRC_XSIM_COLOR_H_
#define SRC_XSIM_COLOR_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "src/xsim/types.h"

namespace xsim {

struct Rgb {
  uint8_t r = 0;
  uint8_t g = 0;
  uint8_t b = 0;
};

inline Pixel PackPixel(Rgb rgb) {
  return (static_cast<Pixel>(rgb.r) << 16) | (static_cast<Pixel>(rgb.g) << 8) |
         static_cast<Pixel>(rgb.b);
}

inline Rgb UnpackPixel(Pixel pixel) {
  Rgb rgb;
  rgb.r = static_cast<uint8_t>((pixel >> 16) & 0xff);
  rgb.g = static_cast<uint8_t>((pixel >> 8) & 0xff);
  rgb.b = static_cast<uint8_t>(pixel & 0xff);
  return rgb;
}

// Resolves a color specification: a database name (case-insensitive,
// ignoring embedded spaces: "medium sea green" == "MediumSeaGreen") or a
// numeric "#rgb" / "#rrggbb" form.
std::optional<Rgb> LookupColor(std::string_view name);

// Reverse lookup: the database name for an exact RGB triple, if any
// (supports Tk's "return the textual name for a resource" feature).
std::optional<std::string> ColorName(Rgb rgb);

// Lightened/darkened shades used for 3-D borders (raised/sunken reliefs).
Rgb LightShade(Rgb base);
Rgb DarkShade(Rgb base);

}  // namespace xsim

#endif  // SRC_XSIM_COLOR_H_
