// A compact regular-expression engine for the `regexp` and `regsub`
// commands, covering the dialect of the original Tcl (Henry Spencer's
// library): literals, '.', '*', '+', '?', bracket classes with ranges and
// negation, anchors '^' and '$', capture groups '(...)' and alternation '|'.
// Matching is backtracking with leftmost-first semantics.

#ifndef SRC_TCL_REGEXP_H_
#define SRC_TCL_REGEXP_H_

#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace tcl {

// One capture: [begin, end) offsets into the subject, or (-1, -1) if the
// group did not participate in the match.
struct RegexpRange {
  int begin = -1;
  int end = -1;
};

class Regexp {
 public:
  // Compiles `pattern`; returns nullptr and sets *error on bad syntax.
  static std::unique_ptr<Regexp> Compile(std::string_view pattern, bool nocase,
                                         std::string* error);
  ~Regexp();

  Regexp(const Regexp&) = delete;
  Regexp& operator=(const Regexp&) = delete;

  // Searches `text` starting at `start`.  On a match, ranges[0] is the whole
  // match and ranges[i] is capture group i.  ranges is sized to
  // 1 + group_count().
  bool Search(std::string_view text, size_t start, std::vector<RegexpRange>* ranges) const;

  int group_count() const { return group_count_; }

  // Opaque AST node (defined in the implementation).
  struct Node;

 private:
  Regexp() = default;

  std::unique_ptr<Node> root_;
  int group_count_ = 0;
  bool nocase_ = false;
};

}  // namespace tcl

#endif  // SRC_TCL_REGEXP_H_
