// Core shared types for the Tcl interpreter library.
//
// Tcl has exactly one data type -- the string -- so the interfaces in this
// library traffic exclusively in std::string / std::string_view.  Commands
// communicate success or failure (and the non-local control flow used by
// `return`, `break` and `continue`) through the Code enumeration, mirroring
// the TCL_OK / TCL_ERROR / ... completion codes of the original C library.

#ifndef SRC_TCL_TYPES_H_
#define SRC_TCL_TYPES_H_

namespace tcl {

// Command completion codes.  kOk and kError are ordinary results; the other
// three are pseudo-errors used to unwind loops and procedure bodies.
enum class Code {
  kOk = 0,
  kError = 1,
  kReturn = 2,
  kBreak = 3,
  kContinue = 4,
};

// Human-readable name for a completion code ("ok", "error", ...).
const char* CodeName(Code code);

}  // namespace tcl

#endif  // SRC_TCL_TYPES_H_
