// The Tcl bytecode compiler (stage two of the parse -> compile -> execute
// pipeline).
//
// ParseScript (parser.h) turns a script into a ParsedScript: commands made of
// literal words and substitution parts.  CompileScript lowers that structure
// one step further into a flat instruction stream executed by the stack VM in
// vm.h:
//
//   * `set`, `incr` and `expr` with literal names compile to inline
//     instructions that read and write indexed local-variable slots instead
//     of dispatching through the command table,
//   * `if`, `while`, `for` and `foreach` with literal condition/body words
//     compile to jump-threaded control flow with their bodies inlined into
//     the same instruction stream (one compile, zero per-iteration parsing or
//     cache lookups),
//   * literal condition/argument expressions compile to a tiny RPN program
//     over int/double values with constant folding; string literals are
//     admitted just far enough to serve == / != comparisons; anything else
//     outside the numeric subset (functions, nested [commands], strings fed
//     to other operators) bails out to the canonical expr engine at runtime,
//     which reproduces classic results and error messages byte for byte,
//   * every other command becomes a kInvoke instruction that performs the
//     exact per-execution work EvalParsed would: assemble the words, dispatch
//     through Interp::EvalWords.
//
// Compilation never fails: a script that offers no inline opportunities is
// just a sequence of kInvoke instructions.  Scripts the static tokenizer
// rejects are never compiled at all (Interp::Eval keeps them on the dynamic
// EvalScript path).
//
// Parity rules are structural: the VM counts commands exactly as EvalWords
// would, reproduces the errorInfo trace chain via per-instruction TraceNodes,
// and falls back to generic dispatch whenever one of the inlined builtins has
// been redefined, renamed or deleted (Interp tracks that in builtin_epoch_).

#ifndef SRC_TCL_COMPILER_H_
#define SRC_TCL_COMPILER_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/tcl/parser.h"
#include "src/tcl/types.h"

namespace tcl {

// ---------------------------------------------------------------------------
// Compiled expressions.

// A value flowing through a compiled expression: the int/double subset of
// the canonical expr engine's Value, plus (when is_str) a raw string that
// only the == / != operators may consume.  Every other op bails to the
// canonical engine when it meets a string, so Truthy / AsDouble / Print are
// never called on one.
struct NumVal {
  bool is_int = true;
  bool is_str = false;
  int64_t i = 0;
  double d = 0.0;
  std::string s;  // Only meaningful when is_str.

  static NumVal Int(int64_t v) {
    NumVal out;
    out.is_int = true;
    out.i = v;
    return out;
  }
  static NumVal Dbl(double v) {
    NumVal out;
    out.is_int = false;
    out.d = v;
    return out;
  }
  static NumVal Str(std::string v) {
    NumVal out;
    out.is_str = true;
    out.s = std::move(v);
    return out;
  }
  bool Truthy() const { return is_int ? i != 0 : d != 0.0; }
  double AsDouble() const { return is_int ? static_cast<double>(i) : d; }
  // Prints the way expr results print (FormatInt / FormatDouble).
  std::string Print() const;
};

enum class BinOp : uint8_t {
  kAdd, kSub, kMul, kDiv, kMod, kShl, kShr,
  kBitAnd, kBitOr, kBitXor,
  kLt, kGt, kLe, kGe, kEq, kNe,
};

// One RPN op of a compiled expression.
struct ExprOp {
  enum class K : uint8_t {
    kPushInt,     // push Int(i)
    kPushDouble,  // push Dbl(d) (produced by constant folding)
    kPushStr,     // push Str(s) (a non-numeric quoted/braced literal)
    kLoadSlot,    // push classified value of slot `a`; non-numeric values
                  //   push Str in a strings-mode expr, else bail
    kUnary,       // apply unary `uop` to the top of stack
    kBinary,      // pop rhs, apply `bin` to (tos, rhs)
    kAndJump,     // pop v; if !v: push Int(0), jump to `a`   (&& short-circuit)
    kOrJump,      // pop v; if v: push Int(1), jump to `a`    (|| short-circuit)
    kBoolify,     // tos = Int(tos truthy)                    (closes && / ||)
    kCondJump,    // pop v; if !v jump to `a`                 (?: condition)
    kJump,        // jump to `a`
  };
  K k = K::kPushInt;
  char uop = 0;          // '-', '+', '!', '~'
  BinOp bin = BinOp::kAdd;
  uint32_t a = 0;        // slot index or jump target
  int64_t i = 0;
  double d = 0.0;
  std::string s;         // kPushStr literal.
};

// A compiled expression.  `ops` empty means the text is outside the compiled
// subset: always evaluate `text` with the canonical expr engine instead.
// The subset is side-effect free (integer literals, scalar $variables,
// operators), so a runtime bailout can safely re-evaluate the original text.
struct CompiledExpr {
  std::string text;           // Original text, for the canonical bail path.
  std::vector<ExprOp> ops;
  // True when the program contains string literals or == / != (the two
  // operators defined on strings): slot loads then push non-numeric values
  // as Str operands instead of bailing.  Purely-numeric expressions keep
  // the cheaper load path.
  bool strings = false;
};

// Evaluates a compiled expression.  `load` supplies the current string value
// of variable slot `slot` (return nullptr to bail: undefined variable, array,
// or caller-side cache problem).  Returns std::nullopt when evaluation must
// fall back to the canonical engine (non-numeric operand, divide by zero,
// int-only operator on a double, ...).
using ExprSlotLoadFn = const std::string* (*)(void* ctx, uint32_t slot);
std::optional<NumVal> RunCompiledExpr(const CompiledExpr& expr, ExprSlotLoadFn load, void* ctx);

// ---------------------------------------------------------------------------
// Compiled scripts.

// One node of the error-trace tree.  On an error the VM reproduces the
// "while executing / invoked from within" chain the tree-walker would build:
// the failing instruction's own command text first, then for each ancestor
// construct the connecting note (e.g. `\n    ("while" body line)`) followed
// by the construct's command text.
struct TraceNode {
  std::string text;   // The command's source span (trimmed, as traced).
  std::string note;   // Emitted via AddErrorInfo when walking to the parent.
  int32_t parent = -1;
};

// Iteration plan for an inlined foreach: the literal varList split at compile
// time, with slot indices for plain scalar names.
struct ForeachPlan {
  std::vector<std::string> names;
  std::vector<int32_t> name_slots;       // -1 => generic SetVar path.
  const ParsedWord* list_word = nullptr; // The (possibly non-literal) list word.
  // When the value list is itself a literal word, it is split once here and
  // every execution iterates this vector directly (no assembly, no split).
  std::optional<std::vector<std::string>> const_values;
};

struct Instr {
  enum class Op : uint8_t {
    kInvoke,        // Generic: assemble pcmd's words, EvalWords.
    kSetConst,      // set <name> <literal>: constants[cidx] into slot/name.
    kSetWord,       // set <name> <word>: assemble `word`, then store.
    kSetRead,       // set <name>: read the variable into the result.
    kIncr,          // incr <name> ?amount?: amount constant or from `word`.
    kExprCmd,       // expr <literal...>: run exprs[expr], result if live.
    kEnterIf,       // Guard + count for an inlined `if`; on guard failure
                    //   dispatch pcmd generically and jump to `a`.
    kEnterWhile,    // Guard + count + push loop frame; exit at `b`, skip b+1.
    kEnterForeach,  // Same plus list assembly/split via foreaches[fe].
    kEnterFor,      // Guard + count for an inlined `for`; exit at `b` (the
                    //   init body follows, before any loop frame exists).
    kLoopPush,      // Push a loop frame: break to `b`, continue to `a`.
    kLoopPop,       // Pop the loop frame (around a for's next-script, whose
                    //   completion codes must escape the loop like ForCmd's).
    kForeachStep,   // Assign next stride of variables or jump to loop exit.
    kCond,          // Evaluate exprs[expr]; jump to `a` when false.
    kJump,          // Unconditional jump to `a`.
    kLoopExit,      // Pop loop frame, reset result.
    kBreak,         // Inline `break`: count, reset result, unwind loop.
    kContinue,      // Inline `continue`.
    kResetResult,   // Reset the result (empty branch / if-with-no-else).
    kDone,          // End of script: return kOk.
  };

  Op op = Op::kInvoke;
  // Whether this command's result can be the script's final result; dead
  // inline instructions skip SetResult entirely (the tree-walker's next
  // ResetResult would discard it anyway).
  bool live = false;
  bool pop_loop_on_code = false;  // kCond of a loop: non-ok codes leave the loop.
  bool amount_const = true;       // kIncr: amount in `amount` vs from `word`.
  const ParsedCommand* pcmd = nullptr;  // Source command (generic fallback).
  const ParsedWord* word = nullptr;     // Value word (kSetWord / kIncr amount).
  int32_t trace = -1;             // TraceNode index.
  uint32_t a = 0;                 // Jump target / skip target.
  uint32_t b = 0;                 // Loop exit (kEnterWhile / kEnterForeach).
  int32_t slot = -1;              // Variable slot (-1 => generic name path).
  int32_t cidx = -1;              // constants[] index of the value.
  int32_t name_cidx = -1;         // constants[] index of the variable name.
  int64_t amount = 1;             // kIncr constant amount.
  int32_t expr = -1;              // exprs[] index.
  int32_t fe = -1;                // foreaches[] index.
};

struct CompiledScript {
  // The parse this was compiled from, plus the parses of every literal body
  // inlined into the stream (their ParsedCommand/ParsedWord storage backs the
  // pcmd/word pointers in instrs).
  std::shared_ptr<const ParsedScript> parsed;
  std::vector<std::shared_ptr<const ParsedScript>> blocks;

  std::vector<Instr> instrs;
  std::vector<std::string> constants;
  std::vector<std::string> slot_names;
  std::vector<TraceNode> traces;
  std::vector<CompiledExpr> exprs;
  std::vector<ForeachPlan> foreaches;
};

// Compiles a statically-parsed script.  `parsed->ok` must be true.  Never
// fails: commands outside the inline subset become kInvoke instructions.
std::shared_ptr<const CompiledScript> CompileScript(std::shared_ptr<const ParsedScript> parsed);

// Human-readable instruction listing (the `info bytecode` hook).
std::string Disassemble(const CompiledScript& script);

}  // namespace tcl

#endif  // SRC_TCL_COMPILER_H_
