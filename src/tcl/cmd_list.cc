// List commands: list, lindex, llength, lrange, lappend, linsert, lreplace,
// lsearch, lsort, concat, split, join.  Also registers `index` as an alias
// for lindex (the pre-7.0 name used in the paper's Figure 9 browser script).

#include <algorithm>

#include "src/tcl/interp.h"
#include "src/tcl/list.h"
#include "src/tcl/utils.h"

namespace tcl {
namespace {

// Parses a list index: a number, or "end" (optionally "end-N").
Code ParseIndex(Interp& interp, const std::string& text, size_t list_size, int64_t* out) {
  if (text == "end") {
    *out = static_cast<int64_t>(list_size) - 1;
    return Code::kOk;
  }
  if (text.rfind("end-", 0) == 0) {
    std::optional<int64_t> offset = ParseInt(text.substr(4));
    if (!offset) {
      return interp.Error("bad index \"" + text + "\": must be integer or end?-integer?");
    }
    *out = static_cast<int64_t>(list_size) - 1 - *offset;
    return Code::kOk;
  }
  std::optional<int64_t> value = ParseInt(text);
  if (!value) {
    return interp.Error("bad index \"" + text + "\": must be integer or end?-integer?");
  }
  *out = *value;
  return Code::kOk;
}

Code RequireList(Interp& interp, const std::string& text, std::vector<std::string>* out) {
  std::string error;
  std::optional<std::vector<std::string>> list = SplitList(text, &error);
  if (!list) {
    return interp.Error(error);
  }
  *out = std::move(*list);
  return Code::kOk;
}

Code ListCmd(Interp& interp, std::vector<std::string>& args) {
  std::vector<std::string> elements(args.begin() + 1, args.end());
  interp.SetResult(MergeList(elements));
  return Code::kOk;
}

Code LindexCmd(Interp& interp, std::vector<std::string>& args) {
  if (args.size() != 3) {
    return interp.WrongNumArgs(args[0] + " list index");
  }
  std::vector<std::string> list;
  Code code = RequireList(interp, args[1], &list);
  if (code != Code::kOk) {
    return code;
  }
  int64_t index = 0;
  code = ParseIndex(interp, args[2], list.size(), &index);
  if (code != Code::kOk) {
    return code;
  }
  if (index < 0 || index >= static_cast<int64_t>(list.size())) {
    interp.ResetResult();
    return Code::kOk;
  }
  interp.SetResult(list[index]);
  return Code::kOk;
}

Code LlengthCmd(Interp& interp, std::vector<std::string>& args) {
  if (args.size() != 2) {
    return interp.WrongNumArgs("llength list");
  }
  std::vector<std::string> list;
  Code code = RequireList(interp, args[1], &list);
  if (code != Code::kOk) {
    return code;
  }
  interp.SetResult(FormatInt(static_cast<int64_t>(list.size())));
  return Code::kOk;
}

Code LrangeCmd(Interp& interp, std::vector<std::string>& args) {
  if (args.size() != 4) {
    return interp.WrongNumArgs("lrange list first last");
  }
  std::vector<std::string> list;
  Code code = RequireList(interp, args[1], &list);
  if (code != Code::kOk) {
    return code;
  }
  int64_t first = 0;
  int64_t last = 0;
  code = ParseIndex(interp, args[2], list.size(), &first);
  if (code != Code::kOk) {
    return code;
  }
  code = ParseIndex(interp, args[3], list.size(), &last);
  if (code != Code::kOk) {
    return code;
  }
  first = std::max<int64_t>(first, 0);
  last = std::min<int64_t>(last, static_cast<int64_t>(list.size()) - 1);
  std::vector<std::string> slice;
  for (int64_t i = first; i <= last; ++i) {
    slice.push_back(list[i]);
  }
  interp.SetResult(MergeList(slice));
  return Code::kOk;
}

Code LappendCmd(Interp& interp, std::vector<std::string>& args) {
  if (args.size() < 2) {
    return interp.WrongNumArgs("lappend varName ?value value ...?");
  }
  const std::string* existing = interp.GetVarQuiet(args[1]);
  std::string value = existing != nullptr ? *existing : "";
  for (size_t i = 2; i < args.size(); ++i) {
    if (!value.empty()) {
      value.push_back(' ');
    }
    value += QuoteListElement(args[i]);
  }
  Code code = interp.SetVar(args[1], value);
  if (code != Code::kOk) {
    return code;
  }
  interp.SetResult(std::move(value));
  return Code::kOk;
}

Code LinsertCmd(Interp& interp, std::vector<std::string>& args) {
  if (args.size() < 4) {
    return interp.WrongNumArgs("linsert list index element ?element ...?");
  }
  std::vector<std::string> list;
  Code code = RequireList(interp, args[1], &list);
  if (code != Code::kOk) {
    return code;
  }
  int64_t index = 0;
  code = ParseIndex(interp, args[2], list.size() + 1, &index);
  if (code != Code::kOk) {
    return code;
  }
  if (args[2] == "end") {
    index = static_cast<int64_t>(list.size());
  }
  index = std::clamp<int64_t>(index, 0, static_cast<int64_t>(list.size()));
  list.insert(list.begin() + index, args.begin() + 3, args.end());
  interp.SetResult(MergeList(list));
  return Code::kOk;
}

Code LreplaceCmd(Interp& interp, std::vector<std::string>& args) {
  if (args.size() < 4) {
    return interp.WrongNumArgs("lreplace list first last ?element element ...?");
  }
  std::vector<std::string> list;
  Code code = RequireList(interp, args[1], &list);
  if (code != Code::kOk) {
    return code;
  }
  int64_t first = 0;
  int64_t last = 0;
  code = ParseIndex(interp, args[2], list.size(), &first);
  if (code != Code::kOk) {
    return code;
  }
  code = ParseIndex(interp, args[3], list.size(), &last);
  if (code != Code::kOk) {
    return code;
  }
  first = std::clamp<int64_t>(first, 0, static_cast<int64_t>(list.size()));
  last = std::min<int64_t>(last, static_cast<int64_t>(list.size()) - 1);
  std::vector<std::string> out(list.begin(), list.begin() + first);
  out.insert(out.end(), args.begin() + 4, args.end());
  if (last + 1 < static_cast<int64_t>(list.size()) && last + 1 >= 0) {
    out.insert(out.end(), list.begin() + last + 1, list.end());
  } else if (last < first) {
    out.insert(out.end(), list.begin() + first, list.end());
  }
  interp.SetResult(MergeList(out));
  return Code::kOk;
}

Code LsearchCmd(Interp& interp, std::vector<std::string>& args) {
  size_t i = 1;
  enum class Mode { kExact, kGlob };
  Mode mode = Mode::kGlob;
  if (args.size() == 4) {
    if (args[1] == "-exact") {
      mode = Mode::kExact;
    } else if (args[1] == "-glob") {
      mode = Mode::kGlob;
    } else {
      return interp.Error("bad search mode \"" + args[1] + "\": must be -exact or -glob");
    }
    ++i;
  }
  if (args.size() - i != 2) {
    return interp.WrongNumArgs("lsearch ?mode? list pattern");
  }
  std::vector<std::string> list;
  Code code = RequireList(interp, args[i], &list);
  if (code != Code::kOk) {
    return code;
  }
  const std::string& pattern = args[i + 1];
  for (size_t idx = 0; idx < list.size(); ++idx) {
    bool matched = mode == Mode::kExact ? list[idx] == pattern : StringMatch(pattern, list[idx]);
    if (matched) {
      interp.SetResult(FormatInt(static_cast<int64_t>(idx)));
      return Code::kOk;
    }
  }
  interp.SetResult("-1");
  return Code::kOk;
}

Code LsortCmd(Interp& interp, std::vector<std::string>& args) {
  size_t i = 1;
  enum class Mode { kAscii, kInteger, kReal, kCommand };
  Mode mode = Mode::kAscii;
  bool decreasing = false;
  std::string command;
  while (i < args.size() - 1) {
    if (args[i] == "-ascii") {
      mode = Mode::kAscii;
    } else if (args[i] == "-integer") {
      mode = Mode::kInteger;
    } else if (args[i] == "-real") {
      mode = Mode::kReal;
    } else if (args[i] == "-increasing") {
      decreasing = false;
    } else if (args[i] == "-decreasing") {
      decreasing = true;
    } else if (args[i] == "-command" && i + 1 < args.size() - 1) {
      mode = Mode::kCommand;
      command = args[i + 1];
      ++i;
    } else {
      return interp.Error("bad lsort option \"" + args[i] + "\"");
    }
    ++i;
  }
  if (i != args.size() - 1) {
    return interp.WrongNumArgs("lsort ?options? list");
  }
  std::vector<std::string> list;
  Code code = RequireList(interp, args[i], &list);
  if (code != Code::kOk) {
    return code;
  }
  Code compare_error = Code::kOk;
  auto compare = [&](const std::string& a, const std::string& b) -> bool {
    if (compare_error != Code::kOk) {
      return false;
    }
    int cmp = 0;
    switch (mode) {
      case Mode::kAscii:
        cmp = a.compare(b);
        break;
      case Mode::kInteger: {
        int64_t av = ParseInt(a).value_or(0);
        int64_t bv = ParseInt(b).value_or(0);
        cmp = av < bv ? -1 : (av > bv ? 1 : 0);
        break;
      }
      case Mode::kReal: {
        double av = ParseDouble(a).value_or(0.0);
        double bv = ParseDouble(b).value_or(0.0);
        cmp = av < bv ? -1 : (av > bv ? 1 : 0);
        break;
      }
      case Mode::kCommand: {
        std::string script = command;
        script.push_back(' ');
        script += QuoteListElement(a);
        script.push_back(' ');
        script += QuoteListElement(b);
        if (interp.Eval(script) != Code::kOk) {
          compare_error = Code::kError;
          return false;
        }
        cmp = static_cast<int>(ParseInt(interp.result()).value_or(0));
        break;
      }
    }
    return decreasing ? cmp > 0 : cmp < 0;
  };
  std::stable_sort(list.begin(), list.end(), compare);
  if (compare_error != Code::kOk) {
    return compare_error;
  }
  interp.SetResult(MergeList(list));
  return Code::kOk;
}

Code ConcatCmd(Interp& interp, std::vector<std::string>& args) {
  std::vector<std::string> parts(args.begin() + 1, args.end());
  interp.SetResult(ConcatStrings(parts));
  return Code::kOk;
}

Code SplitCmd(Interp& interp, std::vector<std::string>& args) {
  if (args.size() != 2 && args.size() != 3) {
    return interp.WrongNumArgs("split string ?splitChars?");
  }
  const std::string& text = args[1];
  std::string seps = args.size() == 3 ? args[2] : " \t\n\r";
  std::vector<std::string> out;
  if (seps.empty()) {
    for (char c : text) {
      out.emplace_back(1, c);
    }
  } else {
    std::string current;
    for (char c : text) {
      if (seps.find(c) != std::string::npos) {
        out.push_back(std::move(current));
        current.clear();
      } else {
        current.push_back(c);
      }
    }
    out.push_back(std::move(current));
  }
  interp.SetResult(MergeList(out));
  return Code::kOk;
}

Code JoinCmd(Interp& interp, std::vector<std::string>& args) {
  if (args.size() != 2 && args.size() != 3) {
    return interp.WrongNumArgs("join list ?joinString?");
  }
  std::vector<std::string> list;
  Code code = RequireList(interp, args[1], &list);
  if (code != Code::kOk) {
    return code;
  }
  std::string sep = args.size() == 3 ? args[2] : " ";
  std::string out;
  for (size_t i = 0; i < list.size(); ++i) {
    if (i > 0) {
      out += sep;
    }
    out += list[i];
  }
  interp.SetResult(std::move(out));
  return Code::kOk;
}

}  // namespace

void RegisterListCommands(Interp& interp) {
  interp.RegisterCommand("list", ListCmd);
  interp.RegisterCommand("lindex", LindexCmd);
  interp.RegisterCommand("index", LindexCmd);  // Pre-7.0 alias (paper, Fig. 9).
  interp.RegisterCommand("llength", LlengthCmd);
  interp.RegisterCommand("lrange", LrangeCmd);
  interp.RegisterCommand("lappend", LappendCmd);
  interp.RegisterCommand("linsert", LinsertCmd);
  interp.RegisterCommand("lreplace", LreplaceCmd);
  interp.RegisterCommand("lsearch", LsearchCmd);
  interp.RegisterCommand("lsort", LsortCmd);
  interp.RegisterCommand("concat", ConcatCmd);
  interp.RegisterCommand("split", SplitCmd);
  interp.RegisterCommand("join", JoinCmd);
}

}  // namespace tcl
