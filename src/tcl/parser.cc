#include "src/tcl/parser.h"

#include <cctype>

#include "src/tcl/interp.h"
#include "src/tcl/utils.h"

namespace tcl {
namespace {

bool IsVarNameChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

bool IsCommandSeparator(char c) { return c == '\n' || c == ';'; }

// Parses one word of a command.  Returns kOk and appends the word to *out;
// *pos is left on the first character after the word.
Code ParseWord(Interp& interp, std::string_view script, size_t* pos, char terminator,
               std::string* out);

// Parses a double-quoted word; *pos is on the opening quote.
Code ParseQuotedWord(Interp& interp, std::string_view script, size_t* pos, std::string* out) {
  ++*pos;  // Skip the opening quote.
  while (*pos < script.size()) {
    char c = script[*pos];
    if (c == '"') {
      ++*pos;
      if (*pos < script.size()) {
        char next = script[*pos];
        if (!IsTclSpace(next) && !IsCommandSeparator(next) && next != ']') {
          return interp.Error("extra characters after close-quote");
        }
      }
      return Code::kOk;
    }
    if (c == '$') {
      Code code = SubstVar(interp, script, pos, out);
      if (code != Code::kOk) {
        return code;
      }
      continue;
    }
    if (c == '[') {
      ++*pos;
      Code code = EvalScript(interp, script, ']', pos);
      if (code != Code::kOk) {
        return code;
      }
      out->append(interp.result());
      continue;
    }
    if (c == '\\') {
      BackslashSubst(script, pos, out);
      continue;
    }
    out->push_back(c);
    ++*pos;
  }
  return interp.Error("missing \"");
}

Code ParseWord(Interp& interp, std::string_view script, size_t* pos, char terminator,
               std::string* out) {
  char first = script[*pos];
  if (first == '{') {
    Code code = ParseBracedWord(interp, script, pos, out);
    if (code != Code::kOk) {
      return code;
    }
    if (*pos < script.size()) {
      char next = script[*pos];
      if (!IsTclSpace(next) && !IsCommandSeparator(next) &&
          !(terminator != '\0' && next == terminator)) {
        return interp.Error("extra characters after close-brace");
      }
    }
    return Code::kOk;
  }
  if (first == '"') {
    return ParseQuotedWord(interp, script, pos, out);
  }
  // Bare word with substitutions.
  while (*pos < script.size()) {
    char c = script[*pos];
    if (IsTclSpace(c) || IsCommandSeparator(c) || (terminator != '\0' && c == terminator)) {
      break;
    }
    if (c == '$') {
      Code code = SubstVar(interp, script, pos, out);
      if (code != Code::kOk) {
        return code;
      }
      continue;
    }
    if (c == '[') {
      ++*pos;
      Code code = EvalScript(interp, script, ']', pos);
      if (code != Code::kOk) {
        return code;
      }
      out->append(interp.result());
      continue;
    }
    if (c == '\\') {
      BackslashSubst(script, pos, out);
      continue;
    }
    out->push_back(c);
    ++*pos;
  }
  return Code::kOk;
}

// Skips a comment line; honours backslash-newline continuation.
void SkipComment(std::string_view script, size_t* pos) {
  while (*pos < script.size()) {
    char c = script[*pos];
    if (c == '\\' && *pos + 1 < script.size()) {
      *pos += 2;
      continue;
    }
    ++*pos;
    if (c == '\n') {
      return;
    }
  }
}

// ---------------------------------------------------------------------------
// Static tokenizer.
//
// Mirrors the dynamic functions above step for step, but records structure
// instead of substituting.  Any deviation from what the dynamic parser would
// accept (unbalanced constructs, extra characters after a close brace/quote)
// makes the parse fail, and the script then always takes the dynamic path --
// so scripts with tokenization errors keep their classic error behaviour.

class StaticParser {
 public:
  explicit StaticParser(std::string_view script) : script_(script) {}

  bool ParseTop(std::vector<ParsedCommand>* out) { return ParseBody('\0', out); }

 private:
  // Accumulates the parts of one word, coalescing adjacent literal text.
  struct PartBuilder {
    explicit PartBuilder(ParsedWord* w) : word(w) {}

    std::string* text_buf() { return &pending; }
    void Text(char c) { pending.push_back(c); }

    void Part(WordPart::Kind kind, std::string text) {
      Flush();
      word->parts.push_back(WordPart{kind, std::move(text)});
      has_special = true;
    }

    void Flush() {
      if (!pending.empty()) {
        word->parts.push_back(WordPart{WordPart::Kind::kText, std::move(pending)});
        pending.clear();
      }
    }

    void Finish() {
      if (!has_special) {
        word->is_literal = true;
        word->literal = std::move(pending);
      } else {
        Flush();
        word->is_literal = false;
      }
    }

    ParsedWord* word;
    std::string pending;
    bool has_special = false;
  };

  // Mirrors EvalScript's command loop.  `out == nullptr` scans a nested
  // [command] span without recording commands.
  bool ParseBody(char terminator, std::vector<ParsedCommand>* out) {
    bool found_terminator = (terminator == '\0');
    while (pos_ <= script_.size()) {
      while (pos_ < script_.size() &&
             (IsTclSpace(script_[pos_]) || IsCommandSeparator(script_[pos_]))) {
        ++pos_;
      }
      if (pos_ >= script_.size()) {
        break;
      }
      if (terminator != '\0' && script_[pos_] == terminator) {
        ++pos_;
        found_terminator = true;
        break;
      }
      if (script_[pos_] == '#') {
        SkipComment(script_, &pos_);
        continue;
      }
      size_t command_start = pos_;
      ParsedCommand cmd;
      bool end_of_command = false;
      bool hit_terminator = false;
      while (!end_of_command) {
        while (pos_ < script_.size() && IsTclSpace(script_[pos_])) {
          ++pos_;
        }
        if (pos_ >= script_.size()) {
          break;
        }
        char c = script_[pos_];
        if (IsCommandSeparator(c)) {
          ++pos_;
          end_of_command = true;
          break;
        }
        if (terminator != '\0' && c == terminator) {
          ++pos_;
          hit_terminator = true;
          break;
        }
        if (c == '\\' && pos_ + 1 < script_.size() && script_[pos_ + 1] == '\n') {
          pos_ += 2;
          continue;
        }
        ParsedWord word;
        if (!ParseOneWord(terminator, &word)) {
          return false;
        }
        cmd.words.push_back(std::move(word));
      }
      if (!cmd.words.empty() && out != nullptr) {
        // Trim trailing separators from the recorded source span, matching
        // the dynamic parser's error-trace text.
        size_t command_end = pos_;
        while (command_end > command_start &&
               (IsTclSpace(script_[command_end - 1]) ||
                IsCommandSeparator(script_[command_end - 1]) ||
                (terminator != '\0' && script_[command_end - 1] == terminator))) {
          --command_end;
        }
        cmd.src_begin = command_start;
        cmd.src_end = command_end;
        out->push_back(std::move(cmd));
      }
      if (hit_terminator) {
        found_terminator = true;
        break;
      }
    }
    return found_terminator;
  }

  // Mirrors ParseWord.
  bool ParseOneWord(char terminator, ParsedWord* word) {
    char first = script_[pos_];
    if (first == '{') {
      std::string text;
      if (!ParseBraced(&text)) {
        return false;
      }
      if (pos_ < script_.size()) {
        char next = script_[pos_];
        if (!IsTclSpace(next) && !IsCommandSeparator(next) &&
            !(terminator != '\0' && next == terminator)) {
          return false;  // "extra characters after close-brace"
        }
      }
      word->is_literal = true;
      word->literal = std::move(text);
      return true;
    }
    PartBuilder builder(word);
    if (first == '"') {
      if (!ParseQuoted(&builder)) {
        return false;
      }
    } else {
      if (!ParseBare(terminator, &builder)) {
        return false;
      }
    }
    builder.Finish();
    return true;
  }

  // Mirrors ParseBracedWord.
  bool ParseBraced(std::string* out) {
    ++pos_;  // Skip '{'.
    int depth = 1;
    while (pos_ < script_.size()) {
      char c = script_[pos_];
      if (c == '\\') {
        if (pos_ + 1 < script_.size() && script_[pos_ + 1] == '\n') {
          BackslashSubst(script_, &pos_, out);
          continue;
        }
        out->push_back(c);
        ++pos_;
        if (pos_ < script_.size()) {
          out->push_back(script_[pos_]);
          ++pos_;
        }
        continue;
      }
      if (c == '{') {
        ++depth;
      } else if (c == '}') {
        --depth;
        if (depth == 0) {
          ++pos_;
          return true;
        }
      }
      out->push_back(c);
      ++pos_;
    }
    return false;  // "missing close-brace"
  }

  // Mirrors ParseQuotedWord.
  bool ParseQuoted(PartBuilder* builder) {
    ++pos_;  // Skip the opening quote.
    while (pos_ < script_.size()) {
      char c = script_[pos_];
      if (c == '"') {
        ++pos_;
        if (pos_ < script_.size()) {
          char next = script_[pos_];
          if (!IsTclSpace(next) && !IsCommandSeparator(next) && next != ']') {
            return false;  // "extra characters after close-quote"
          }
        }
        return true;
      }
      if (!ParseSpecialOrChar(builder)) {
        return false;
      }
    }
    return false;  // missing "
  }

  bool ParseBare(char terminator, PartBuilder* builder) {
    while (pos_ < script_.size()) {
      char c = script_[pos_];
      if (IsTclSpace(c) || IsCommandSeparator(c) ||
          (terminator != '\0' && c == terminator)) {
        break;
      }
      if (!ParseSpecialOrChar(builder)) {
        return false;
      }
    }
    return true;
  }

  bool ParseSpecialOrChar(PartBuilder* builder) {
    char c = script_[pos_];
    if (c == '$') {
      return ParseVar(builder);
    }
    if (c == '[') {
      return ParseNested(builder);
    }
    if (c == '\\') {
      // Backslash sequences are position-independent: resolve them now.
      BackslashSubst(script_, &pos_, builder->text_buf());
      return true;
    }
    builder->Text(c);
    ++pos_;
    return true;
  }

  // Mirrors SubstVar's consumption.  With builder == nullptr, just validates
  // and advances (used to scan over vars nested inside an array index).
  bool ParseVar(PartBuilder* builder) {
    size_t dollar = pos_;
    ++pos_;  // Skip '$'.
    if (pos_ >= script_.size()) {
      if (builder != nullptr) {
        builder->Text('$');
      }
      return true;
    }
    if (script_[pos_] == '{') {
      ++pos_;
      size_t start = pos_;
      while (pos_ < script_.size() && script_[pos_] != '}') {
        ++pos_;
      }
      if (pos_ >= script_.size()) {
        return false;  // "missing close-brace for variable name"
      }
      std::string name(script_.substr(start, pos_ - start));
      ++pos_;  // Skip '}'.
      if (builder != nullptr) {
        builder->Part(WordPart::Kind::kVar, std::move(name));
      }
      return true;
    }
    size_t start = pos_;
    while (pos_ < script_.size() && IsVarNameChar(script_[pos_])) {
      ++pos_;
    }
    if (pos_ == start) {
      // Bare '$' with no name: literal dollar sign.
      if (builder != nullptr) {
        builder->Text('$');
      }
      return true;
    }
    std::string name(script_.substr(start, pos_ - start));
    if (pos_ < script_.size() && script_[pos_] == '(') {
      ++pos_;
      std::string index;
      bool complex_index = false;
      while (pos_ < script_.size() && script_[pos_] != ')') {
        char c = script_[pos_];
        if (c == '$') {
          complex_index = true;
          if (!ParseVar(nullptr)) {
            return false;
          }
          continue;
        }
        if (c == '[') {
          complex_index = true;
          ++pos_;
          if (!ParseBody(']', nullptr)) {
            return false;
          }
          continue;
        }
        if (c == '\\') {
          BackslashSubst(script_, &pos_, &index);
          continue;
        }
        index.push_back(c);
        ++pos_;
      }
      if (pos_ >= script_.size()) {
        return false;  // "missing )"
      }
      ++pos_;  // Skip ')'.
      if (builder == nullptr) {
        return true;
      }
      if (complex_index) {
        // The index needs per-execution substitution: keep the raw $... span
        // and re-run SubstVar on it each time.
        builder->Part(WordPart::Kind::kComplexVar,
                      std::string(script_.substr(dollar, pos_ - dollar)));
      } else {
        name.push_back('(');
        name.append(index);
        name.push_back(')');
        builder->Part(WordPart::Kind::kVar, std::move(name));
      }
      return true;
    }
    if (builder != nullptr) {
      builder->Part(WordPart::Kind::kVar, std::move(name));
    }
    return true;
  }

  // At an unquoted '[': records the inner script span as a kCommand part.
  bool ParseNested(PartBuilder* builder) {
    ++pos_;  // Skip '['.
    size_t start = pos_;
    if (!ParseBody(']', nullptr)) {
      return false;  // "missing close-bracket"
    }
    // pos_ is just past the matching ']'.
    builder->Part(WordPart::Kind::kCommand,
                  std::string(script_.substr(start, pos_ - 1 - start)));
    return true;
  }

  std::string_view script_;
  size_t pos_ = 0;
};

}  // namespace

void BackslashSubst(std::string_view script, size_t* pos, std::string* out) {
  ++*pos;  // Skip the backslash.
  if (*pos >= script.size()) {
    out->push_back('\\');
    return;
  }
  char c = script[*pos];
  ++*pos;
  switch (c) {
    case 'b':
      out->push_back('\b');
      return;
    case 'f':
      out->push_back('\f');
      return;
    case 'n':
      out->push_back('\n');
      return;
    case 'r':
      out->push_back('\r');
      return;
    case 't':
      out->push_back('\t');
      return;
    case 'v':
      out->push_back('\v');
      return;
    case 'e':
      out->push_back('\x1b');
      return;
    case '\n': {
      // Backslash-newline (plus following blanks) collapses to one space.
      while (*pos < script.size() && IsTclSpace(script[*pos])) {
        ++*pos;
      }
      out->push_back(' ');
      return;
    }
    case 'x': {
      int value = 0;
      int digits = 0;
      while (*pos < script.size() && digits < 2 &&
             std::isxdigit(static_cast<unsigned char>(script[*pos]))) {
        char h = script[*pos];
        value = value * 16 + (std::isdigit(static_cast<unsigned char>(h))
                                  ? h - '0'
                                  : std::tolower(static_cast<unsigned char>(h)) - 'a' + 10);
        ++*pos;
        ++digits;
      }
      if (digits == 0) {
        out->push_back('x');
      } else {
        out->push_back(static_cast<char>(value));
      }
      return;
    }
    default:
      if (c >= '0' && c <= '7') {
        int value = c - '0';
        int digits = 1;
        while (*pos < script.size() && digits < 3 && script[*pos] >= '0' && script[*pos] <= '7') {
          value = value * 8 + (script[*pos] - '0');
          ++*pos;
          ++digits;
        }
        out->push_back(static_cast<char>(value));
        return;
      }
      out->push_back(c);
      return;
  }
}

Code SubstVar(Interp& interp, std::string_view script, size_t* pos, std::string* out) {
  ++*pos;  // Skip '$'.
  if (*pos >= script.size()) {
    out->push_back('$');
    return Code::kOk;
  }
  std::string name;
  if (script[*pos] == '{') {
    ++*pos;
    size_t start = *pos;
    while (*pos < script.size() && script[*pos] != '}') {
      ++*pos;
    }
    if (*pos >= script.size()) {
      return interp.Error("missing close-brace for variable name");
    }
    name.assign(script.substr(start, *pos - start));
    ++*pos;  // Skip '}'.
  } else {
    size_t start = *pos;
    while (*pos < script.size() && IsVarNameChar(script[*pos])) {
      ++*pos;
    }
    if (*pos == start) {
      // Bare '$' with no name: literal dollar sign.
      out->push_back('$');
      return Code::kOk;
    }
    name.assign(script.substr(start, *pos - start));
    if (*pos < script.size() && script[*pos] == '(') {
      // Array element: substitutions are performed inside the index.
      ++*pos;
      std::string index;
      while (*pos < script.size() && script[*pos] != ')') {
        char c = script[*pos];
        if (c == '$') {
          Code code = SubstVar(interp, script, pos, &index);
          if (code != Code::kOk) {
            return code;
          }
          continue;
        }
        if (c == '[') {
          ++*pos;
          Code code = EvalScript(interp, script, ']', pos);
          if (code != Code::kOk) {
            return code;
          }
          index.append(interp.result());
          continue;
        }
        if (c == '\\') {
          BackslashSubst(script, pos, &index);
          continue;
        }
        index.push_back(c);
        ++*pos;
      }
      if (*pos >= script.size()) {
        return interp.Error("missing )");
      }
      ++*pos;  // Skip ')'.
      name.push_back('(');
      name.append(index);
      name.push_back(')');
    }
  }
  const std::string* value = interp.GetVar(name);
  if (value == nullptr) {
    return Code::kError;  // GetVar left the message in the result.
  }
  out->append(*value);
  return Code::kOk;
}

Code ParseBracedWord(Interp& interp, std::string_view script, size_t* pos, std::string* out) {
  ++*pos;  // Skip '{'.
  int depth = 1;
  size_t out_start = out->size();
  while (*pos < script.size()) {
    char c = script[*pos];
    if (c == '\\') {
      if (*pos + 1 < script.size() && script[*pos + 1] == '\n') {
        BackslashSubst(script, pos, out);
        continue;
      }
      // Other backslash sequences are passed through verbatim but protect
      // the following character from brace counting.
      out->push_back(c);
      ++*pos;
      if (*pos < script.size()) {
        out->push_back(script[*pos]);
        ++*pos;
      }
      continue;
    }
    if (c == '{') {
      ++depth;
    } else if (c == '}') {
      --depth;
      if (depth == 0) {
        ++*pos;
        return Code::kOk;
      }
    }
    out->push_back(c);
    ++*pos;
  }
  out->resize(out_start);
  return interp.Error("missing close-brace");
}

Code SubstString(Interp& interp, std::string_view text, std::string* out) {
  size_t pos = 0;
  while (pos < text.size()) {
    char c = text[pos];
    if (c == '$') {
      Code code = SubstVar(interp, text, &pos, out);
      if (code != Code::kOk) {
        return code;
      }
      continue;
    }
    if (c == '[') {
      ++pos;
      Code code = EvalScript(interp, text, ']', &pos);
      if (code != Code::kOk) {
        return code;
      }
      out->append(interp.result());
      continue;
    }
    if (c == '\\') {
      BackslashSubst(text, &pos, out);
      continue;
    }
    out->push_back(c);
    ++pos;
  }
  return Code::kOk;
}

Code EvalScript(Interp& interp, std::string_view script, char terminator, size_t* pos) {
  interp.ResetResult();
  bool found_terminator = (terminator == '\0');
  Code code = Code::kOk;
  while (*pos <= script.size()) {
    // Skip blank space and command separators before a command.
    while (*pos < script.size() &&
           (IsTclSpace(script[*pos]) || IsCommandSeparator(script[*pos]))) {
      ++*pos;
    }
    if (*pos >= script.size()) {
      break;
    }
    if (terminator != '\0' && script[*pos] == terminator) {
      ++*pos;
      found_terminator = true;
      break;
    }
    if (script[*pos] == '#') {
      SkipComment(script, pos);
      continue;
    }
    // Parse the words of one command.
    size_t command_start = *pos;
    std::vector<std::string> words;
    bool end_of_command = false;
    bool hit_terminator = false;
    while (!end_of_command) {
      while (*pos < script.size() && IsTclSpace(script[*pos])) {
        ++*pos;
      }
      if (*pos >= script.size()) {
        break;
      }
      char c = script[*pos];
      if (IsCommandSeparator(c)) {
        ++*pos;
        end_of_command = true;
        break;
      }
      if (terminator != '\0' && c == terminator) {
        ++*pos;
        hit_terminator = true;
        break;
      }
      if (c == '\\' && *pos + 1 < script.size() && script[*pos + 1] == '\n') {
        // Backslash-newline between words: acts as white space.
        *pos += 2;
        continue;
      }
      std::string word;
      code = ParseWord(interp, script, pos, terminator, &word);
      if (code != Code::kOk) {
        return code;
      }
      words.push_back(std::move(word));
    }
    size_t command_end = *pos;
    if (!words.empty()) {
      code = interp.EvalWords(words);
      if (code != Code::kOk) {
        if (code == Code::kError) {
          std::string_view text = script.substr(command_start, command_end - command_start);
          // Trim trailing separator/space from the reported source text.
          while (!text.empty() &&
                 (IsTclSpace(text.back()) || IsCommandSeparator(text.back()) ||
                  (terminator != '\0' && text.back() == terminator))) {
            text.remove_suffix(1);
          }
          interp.AddCommandTrace(text);
        }
        return code;
      }
    }
    if (hit_terminator) {
      found_terminator = true;
      break;
    }
  }
  if (!found_terminator) {
    return interp.Error("missing close-bracket");
  }
  return code;
}

std::shared_ptr<const ParsedScript> ParseScript(std::string_view script) {
  auto parsed = std::make_shared<ParsedScript>();
  parsed->source.assign(script);
  // Parse against the owned copy so the recorded source spans stay valid for
  // the lifetime of the ParsedScript.
  StaticParser parser(parsed->source);
  parsed->ok = parser.ParseTop(&parsed->commands);
  if (!parsed->ok) {
    parsed->commands.clear();
  }
  return parsed;
}

Code AssembleWordParts(Interp& interp, const ParsedWord& word, std::string* out) {
  for (const WordPart& part : word.parts) {
    switch (part.kind) {
      case WordPart::Kind::kText:
        out->append(part.text);
        break;
      case WordPart::Kind::kVar: {
        const std::string* value = interp.GetVar(part.text);
        if (value == nullptr) {
          return Code::kError;  // GetVar left the message in the result.
        }
        out->append(*value);
        break;
      }
      case WordPart::Kind::kComplexVar: {
        size_t pos = 0;
        Code part_code = SubstVar(interp, part.text, &pos, out);
        if (part_code != Code::kOk) {
          return part_code;
        }
        break;
      }
      case WordPart::Kind::kCommand: {
        // Goes back through Interp::Eval, so nested scripts hit the cache
        // (and the compiler) too.
        Code part_code = interp.Eval(part.text);
        if (part_code != Code::kOk) {
          return part_code;
        }
        out->append(interp.result());
        break;
      }
    }
  }
  return Code::kOk;
}

Code AssembleCommandWords(Interp& interp, const ParsedCommand& cmd,
                          std::vector<std::string>* words) {
  words->reserve(cmd.words.size());
  for (const ParsedWord& parsed_word : cmd.words) {
    if (parsed_word.is_literal) {
      words->push_back(parsed_word.literal);
      continue;
    }
    std::string out;
    Code code = AssembleWordParts(interp, parsed_word, &out);
    if (code != Code::kOk) {
      return code;
    }
    words->push_back(std::move(out));
  }
  return Code::kOk;
}

Code EvalParsed(Interp& interp, const ParsedScript& parsed) {
  interp.ResetResult();
  Code code = Code::kOk;
  std::vector<std::string> words;
  for (const ParsedCommand& cmd : parsed.commands) {
    words.clear();
    code = AssembleCommandWords(interp, cmd, &words);
    if (code != Code::kOk) {
      return code;
    }
    code = interp.EvalWords(words);
    if (code != Code::kOk) {
      if (code == Code::kError) {
        interp.AddCommandTrace(
            std::string_view(parsed.source).substr(cmd.src_begin, cmd.src_end - cmd.src_begin));
      }
      return code;
    }
  }
  return code;
}

}  // namespace tcl
