#include "src/tcl/parser.h"

#include <cctype>

#include "src/tcl/interp.h"
#include "src/tcl/utils.h"

namespace tcl {
namespace {

bool IsVarNameChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

bool IsCommandSeparator(char c) { return c == '\n' || c == ';'; }

// Parses one word of a command.  Returns kOk and appends the word to *out;
// *pos is left on the first character after the word.
Code ParseWord(Interp& interp, std::string_view script, size_t* pos, char terminator,
               std::string* out);

// Parses a double-quoted word; *pos is on the opening quote.
Code ParseQuotedWord(Interp& interp, std::string_view script, size_t* pos, std::string* out) {
  ++*pos;  // Skip the opening quote.
  while (*pos < script.size()) {
    char c = script[*pos];
    if (c == '"') {
      ++*pos;
      if (*pos < script.size()) {
        char next = script[*pos];
        if (!IsTclSpace(next) && !IsCommandSeparator(next) && next != ']') {
          return interp.Error("extra characters after close-quote");
        }
      }
      return Code::kOk;
    }
    if (c == '$') {
      Code code = SubstVar(interp, script, pos, out);
      if (code != Code::kOk) {
        return code;
      }
      continue;
    }
    if (c == '[') {
      ++*pos;
      Code code = EvalScript(interp, script, ']', pos);
      if (code != Code::kOk) {
        return code;
      }
      out->append(interp.result());
      continue;
    }
    if (c == '\\') {
      BackslashSubst(script, pos, out);
      continue;
    }
    out->push_back(c);
    ++*pos;
  }
  return interp.Error("missing \"");
}

Code ParseWord(Interp& interp, std::string_view script, size_t* pos, char terminator,
               std::string* out) {
  char first = script[*pos];
  if (first == '{') {
    Code code = ParseBracedWord(interp, script, pos, out);
    if (code != Code::kOk) {
      return code;
    }
    if (*pos < script.size()) {
      char next = script[*pos];
      if (!IsTclSpace(next) && !IsCommandSeparator(next) &&
          !(terminator != '\0' && next == terminator)) {
        return interp.Error("extra characters after close-brace");
      }
    }
    return Code::kOk;
  }
  if (first == '"') {
    return ParseQuotedWord(interp, script, pos, out);
  }
  // Bare word with substitutions.
  while (*pos < script.size()) {
    char c = script[*pos];
    if (IsTclSpace(c) || IsCommandSeparator(c) || (terminator != '\0' && c == terminator)) {
      break;
    }
    if (c == '$') {
      Code code = SubstVar(interp, script, pos, out);
      if (code != Code::kOk) {
        return code;
      }
      continue;
    }
    if (c == '[') {
      ++*pos;
      Code code = EvalScript(interp, script, ']', pos);
      if (code != Code::kOk) {
        return code;
      }
      out->append(interp.result());
      continue;
    }
    if (c == '\\') {
      BackslashSubst(script, pos, out);
      continue;
    }
    out->push_back(c);
    ++*pos;
  }
  return Code::kOk;
}

// Skips a comment line; honours backslash-newline continuation.
void SkipComment(std::string_view script, size_t* pos) {
  while (*pos < script.size()) {
    char c = script[*pos];
    if (c == '\\' && *pos + 1 < script.size()) {
      *pos += 2;
      continue;
    }
    ++*pos;
    if (c == '\n') {
      return;
    }
  }
}

}  // namespace

void BackslashSubst(std::string_view script, size_t* pos, std::string* out) {
  ++*pos;  // Skip the backslash.
  if (*pos >= script.size()) {
    out->push_back('\\');
    return;
  }
  char c = script[*pos];
  ++*pos;
  switch (c) {
    case 'b':
      out->push_back('\b');
      return;
    case 'f':
      out->push_back('\f');
      return;
    case 'n':
      out->push_back('\n');
      return;
    case 'r':
      out->push_back('\r');
      return;
    case 't':
      out->push_back('\t');
      return;
    case 'v':
      out->push_back('\v');
      return;
    case 'e':
      out->push_back('\x1b');
      return;
    case '\n': {
      // Backslash-newline (plus following blanks) collapses to one space.
      while (*pos < script.size() && IsTclSpace(script[*pos])) {
        ++*pos;
      }
      out->push_back(' ');
      return;
    }
    case 'x': {
      int value = 0;
      int digits = 0;
      while (*pos < script.size() && digits < 2 &&
             std::isxdigit(static_cast<unsigned char>(script[*pos]))) {
        char h = script[*pos];
        value = value * 16 + (std::isdigit(static_cast<unsigned char>(h))
                                  ? h - '0'
                                  : std::tolower(static_cast<unsigned char>(h)) - 'a' + 10);
        ++*pos;
        ++digits;
      }
      if (digits == 0) {
        out->push_back('x');
      } else {
        out->push_back(static_cast<char>(value));
      }
      return;
    }
    default:
      if (c >= '0' && c <= '7') {
        int value = c - '0';
        int digits = 1;
        while (*pos < script.size() && digits < 3 && script[*pos] >= '0' && script[*pos] <= '7') {
          value = value * 8 + (script[*pos] - '0');
          ++*pos;
          ++digits;
        }
        out->push_back(static_cast<char>(value));
        return;
      }
      out->push_back(c);
      return;
  }
}

Code SubstVar(Interp& interp, std::string_view script, size_t* pos, std::string* out) {
  ++*pos;  // Skip '$'.
  if (*pos >= script.size()) {
    out->push_back('$');
    return Code::kOk;
  }
  std::string name;
  if (script[*pos] == '{') {
    ++*pos;
    size_t start = *pos;
    while (*pos < script.size() && script[*pos] != '}') {
      ++*pos;
    }
    if (*pos >= script.size()) {
      return interp.Error("missing close-brace for variable name");
    }
    name.assign(script.substr(start, *pos - start));
    ++*pos;  // Skip '}'.
  } else {
    size_t start = *pos;
    while (*pos < script.size() && IsVarNameChar(script[*pos])) {
      ++*pos;
    }
    if (*pos == start) {
      // Bare '$' with no name: literal dollar sign.
      out->push_back('$');
      return Code::kOk;
    }
    name.assign(script.substr(start, *pos - start));
    if (*pos < script.size() && script[*pos] == '(') {
      // Array element: substitutions are performed inside the index.
      ++*pos;
      std::string index;
      while (*pos < script.size() && script[*pos] != ')') {
        char c = script[*pos];
        if (c == '$') {
          Code code = SubstVar(interp, script, pos, &index);
          if (code != Code::kOk) {
            return code;
          }
          continue;
        }
        if (c == '[') {
          ++*pos;
          Code code = EvalScript(interp, script, ']', pos);
          if (code != Code::kOk) {
            return code;
          }
          index.append(interp.result());
          continue;
        }
        if (c == '\\') {
          BackslashSubst(script, pos, &index);
          continue;
        }
        index.push_back(c);
        ++*pos;
      }
      if (*pos >= script.size()) {
        return interp.Error("missing )");
      }
      ++*pos;  // Skip ')'.
      name.push_back('(');
      name.append(index);
      name.push_back(')');
    }
  }
  const std::string* value = interp.GetVar(name);
  if (value == nullptr) {
    return Code::kError;  // GetVar left the message in the result.
  }
  out->append(*value);
  return Code::kOk;
}

Code ParseBracedWord(Interp& interp, std::string_view script, size_t* pos, std::string* out) {
  ++*pos;  // Skip '{'.
  int depth = 1;
  size_t out_start = out->size();
  while (*pos < script.size()) {
    char c = script[*pos];
    if (c == '\\') {
      if (*pos + 1 < script.size() && script[*pos + 1] == '\n') {
        BackslashSubst(script, pos, out);
        continue;
      }
      // Other backslash sequences are passed through verbatim but protect
      // the following character from brace counting.
      out->push_back(c);
      ++*pos;
      if (*pos < script.size()) {
        out->push_back(script[*pos]);
        ++*pos;
      }
      continue;
    }
    if (c == '{') {
      ++depth;
    } else if (c == '}') {
      --depth;
      if (depth == 0) {
        ++*pos;
        return Code::kOk;
      }
    }
    out->push_back(c);
    ++*pos;
  }
  out->resize(out_start);
  return interp.Error("missing close-brace");
}

Code SubstString(Interp& interp, std::string_view text, std::string* out) {
  size_t pos = 0;
  while (pos < text.size()) {
    char c = text[pos];
    if (c == '$') {
      Code code = SubstVar(interp, text, &pos, out);
      if (code != Code::kOk) {
        return code;
      }
      continue;
    }
    if (c == '[') {
      ++pos;
      Code code = EvalScript(interp, text, ']', &pos);
      if (code != Code::kOk) {
        return code;
      }
      out->append(interp.result());
      continue;
    }
    if (c == '\\') {
      BackslashSubst(text, &pos, out);
      continue;
    }
    out->push_back(c);
    ++pos;
  }
  return Code::kOk;
}

Code EvalScript(Interp& interp, std::string_view script, char terminator, size_t* pos) {
  interp.ResetResult();
  bool found_terminator = (terminator == '\0');
  Code code = Code::kOk;
  while (*pos <= script.size()) {
    // Skip blank space and command separators before a command.
    while (*pos < script.size() &&
           (IsTclSpace(script[*pos]) || IsCommandSeparator(script[*pos]))) {
      ++*pos;
    }
    if (*pos >= script.size()) {
      break;
    }
    if (terminator != '\0' && script[*pos] == terminator) {
      ++*pos;
      found_terminator = true;
      break;
    }
    if (script[*pos] == '#') {
      SkipComment(script, pos);
      continue;
    }
    // Parse the words of one command.
    size_t command_start = *pos;
    std::vector<std::string> words;
    bool end_of_command = false;
    bool hit_terminator = false;
    while (!end_of_command) {
      while (*pos < script.size() && IsTclSpace(script[*pos])) {
        ++*pos;
      }
      if (*pos >= script.size()) {
        break;
      }
      char c = script[*pos];
      if (IsCommandSeparator(c)) {
        ++*pos;
        end_of_command = true;
        break;
      }
      if (terminator != '\0' && c == terminator) {
        ++*pos;
        hit_terminator = true;
        break;
      }
      if (c == '\\' && *pos + 1 < script.size() && script[*pos + 1] == '\n') {
        // Backslash-newline between words: acts as white space.
        *pos += 2;
        continue;
      }
      std::string word;
      code = ParseWord(interp, script, pos, terminator, &word);
      if (code != Code::kOk) {
        return code;
      }
      words.push_back(std::move(word));
    }
    size_t command_end = *pos;
    if (!words.empty()) {
      code = interp.EvalWords(words);
      if (code != Code::kOk) {
        if (code == Code::kError) {
          std::string_view text = script.substr(command_start, command_end - command_start);
          // Trim trailing separator/space from the reported source text.
          while (!text.empty() &&
                 (IsTclSpace(text.back()) || IsCommandSeparator(text.back()) ||
                  (terminator != '\0' && text.back() == terminator))) {
            text.remove_suffix(1);
          }
          interp.AddCommandTrace(text);
        }
        return code;
      }
    }
    if (hit_terminator) {
      found_terminator = true;
      break;
    }
  }
  if (!found_terminator) {
    return interp.Error("missing close-bracket");
  }
  return code;
}

}  // namespace tcl
