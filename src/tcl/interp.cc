#include "src/tcl/interp.h"

#include <cassert>
#include <cctype>
#include <cstdlib>
#include <cstring>
#include <optional>

#include "src/tcl/compiler.h"
#include "src/tcl/expr.h"
#include "src/tcl/list.h"
#include "src/tcl/parser.h"
#include "src/tcl/utils.h"
#include "src/tcl/vm.h"

namespace tcl {
namespace {

// Splits "a(i)" into base name and index; returns false for plain scalars.
bool SplitArrayName(std::string_view name, std::string_view* base, std::string_view* index) {
  if (name.empty() || name.back() != ')') {
    return false;
  }
  size_t open = name.find('(');
  if (open == std::string_view::npos) {
    return false;
  }
  *base = name.substr(0, open);
  *index = name.substr(open + 1, name.size() - open - 2);
  return true;
}

// The builtins the VM executes inline; mutating any of them flips every
// compiled script back to generic dispatch (see Interp::builtin_epoch_).
bool IsVmInlinedBuiltin(std::string_view name) {
  return name == "set" || name == "incr" || name == "expr" || name == "if" ||
         name == "while" || name == "for" || name == "foreach" || name == "break" ||
         name == "continue";
}

ExecMode ExecModeFromEnv() {
  const char* mode = std::getenv("TCLK_TCL_EXEC");
  if (mode != nullptr && std::strcmp(mode, "interp") == 0) {
    return ExecMode::kInterp;
  }
  return ExecMode::kCompile;
}

}  // namespace

Interp::Interp() : exec_mode_(ExecModeFromEnv()) {
  auto global = std::make_unique<CallFrame>();
  global->level = 0;
  global->caller_index = -1;
  frames_.push_back(std::move(global));
  RegisterBuiltins(*this);
}

Interp::~Interp() = default;

// ---------------------------------------------------------------------------
// Frame management.

void Interp::PushFrame(std::string invocation) {
  auto frame = std::make_unique<CallFrame>();
  frame->level = current_frame().level + 1;
  frame->caller_index = static_cast<int>(active_index_);
  frame->invocation = std::move(invocation);
  frames_.push_back(std::move(frame));
  active_index_ = frames_.size() - 1;
  ++frame_generation_;
}

void Interp::PopFrame() {
  assert(frames_.size() > 1);
  int caller = frames_.back()->caller_index;
  frames_.pop_back();
  ++frame_generation_;
  active_index_ = caller >= 0 ? static_cast<size_t>(caller) : frames_.size() - 1;
  if (active_index_ >= frames_.size()) {
    active_index_ = frames_.size() - 1;
  }
}

int Interp::current_level() const { return frames_[active_index_]->level; }

CallFrame* Interp::ResolveLevel(std::string_view level_spec, bool* explicit_spec) {
  *explicit_spec = false;
  int steps = 1;
  bool absolute = false;
  int target_level = 0;
  if (!level_spec.empty() && level_spec[0] == '#') {
    std::optional<int64_t> n = ParseInt(level_spec.substr(1));
    if (!n || *n < 0) {
      return nullptr;
    }
    absolute = true;
    target_level = static_cast<int>(*n);
    *explicit_spec = true;
  } else if (!level_spec.empty() &&
             std::isdigit(static_cast<unsigned char>(level_spec[0]))) {
    std::optional<int64_t> n = ParseInt(level_spec);
    if (!n || *n < 0) {
      return nullptr;
    }
    steps = static_cast<int>(*n);
    *explicit_spec = true;
  } else if (!level_spec.empty()) {
    return nullptr;
  }

  CallFrame* frame = frames_[active_index_].get();
  if (absolute) {
    while (frame != nullptr && frame->level != target_level) {
      frame = frame->caller_index >= 0 ? frames_[frame->caller_index].get() : nullptr;
    }
    return frame;
  }
  for (int i = 0; i < steps && frame != nullptr; ++i) {
    frame = frame->caller_index >= 0 ? frames_[frame->caller_index].get() : frames_[0].get();
    if (frame == frames_[0].get() && i + 1 < steps) {
      // Can't go above the global frame.
      return i + 1 == steps ? frame : frames_[0].get();
    }
  }
  return frame;
}

// RAII helper that re-targets the active frame for uplevel-style evaluation.
class FrameGuard {
 public:
  FrameGuard(Interp& interp, size_t new_active) : interp_(interp) {
    saved_ = interp_.active_index_;
    interp_.active_index_ = new_active;
  }
  ~FrameGuard() { interp_.active_index_ = saved_; }

 private:
  Interp& interp_;
  size_t saved_;
};

Code Interp::EvalAtLevel(std::string_view level_spec, std::string_view script) {
  bool explicit_spec = false;
  CallFrame* frame = ResolveLevel(level_spec, &explicit_spec);
  if (frame == nullptr) {
    return Error("bad level \"" + std::string(level_spec) + "\"");
  }
  size_t index = 0;
  for (size_t i = 0; i < frames_.size(); ++i) {
    if (frames_[i].get() == frame) {
      index = i;
      break;
    }
  }
  FrameGuard guard(*this, index);
  return Eval(script);
}

// ---------------------------------------------------------------------------
// Evaluation.

Code Interp::Eval(std::string_view script) {
  if (nesting_depth_ == 0) {
    error_in_progress_ = false;
    error_info_.clear();
  }
  if (nesting_depth_ >= max_nesting_depth_) {
    return Error("too many nested calls to Tcl_Eval (infinite loop?)");
  }
  ++nesting_depth_;
  Code code;
  if (eval_cache_enabled_) {
    // Hold shared references: the entry may be evicted or invalidated by
    // commands the script itself runs.
    std::shared_ptr<const CompiledScript> compiled;
    std::shared_ptr<const ParsedScript> parsed = EvalCacheLookup(
        script, exec_mode_ == ExecMode::kCompile ? &compiled : nullptr);
    if (compiled != nullptr) {
      ++eval_cache_stats_.compiled_evals;
      code = VmExecutor::Execute(*this, std::move(compiled));
    } else if (parsed->ok) {
      code = EvalParsed(*this, *parsed);
    } else {
      // The static tokenizer rejected the script: take the classic
      // parse-while-evaluating path, which reproduces the original error
      // behaviour exactly.
      size_t pos = 0;
      code = EvalScript(*this, script, '\0', &pos);
    }
  } else {
    size_t pos = 0;
    code = EvalScript(*this, script, '\0', &pos);
  }
  --nesting_depth_;
  if (code == Code::kError && nesting_depth_ == 0) {
    SetVar("errorInfo", error_info_);
  }
  return code;
}

// ---------------------------------------------------------------------------
// Eval cache.

std::shared_ptr<const ParsedScript> Interp::EvalCacheLookup(
    std::string_view script, std::shared_ptr<const CompiledScript>* compiled) {
  auto it = eval_cache_.find(script);
  if (it != eval_cache_.end()) {
    ++eval_cache_stats_.hits;
    eval_cache_lru_.splice(eval_cache_lru_.begin(), eval_cache_lru_, it->second.lru_it);
    if (compiled != nullptr && it->second.parsed->ok) {
      if (it->second.compiled == nullptr) {
        // Lazy lowering: an entry first seen in interp mode (or created
        // before a mode switch) compiles on its first VM execution.
        ++eval_cache_stats_.compiles;
        it->second.compiled = CompileScript(it->second.parsed);
      }
      *compiled = it->second.compiled;
    }
    return it->second.parsed;
  }
  ++eval_cache_stats_.misses;
  std::shared_ptr<const ParsedScript> parsed = ParseScript(script);
  if (!parsed->ok) {
    ++eval_cache_stats_.fallbacks;
  }
  std::shared_ptr<const CompiledScript> compiled_now;
  if (compiled != nullptr && parsed->ok) {
    ++eval_cache_stats_.compiles;
    compiled_now = CompileScript(parsed);
    *compiled = compiled_now;
  }
  if (eval_cache_capacity_ == 0) {
    return parsed;
  }
  // The map key owns a copy of the script text (the caller's buffer may be
  // transient); the LRU holds a view into the stored key, which unordered_map
  // keeps at a stable address.
  auto [entry_it, inserted] =
      eval_cache_.emplace(std::string(script),
                          EvalCacheEntry{parsed, std::move(compiled_now), {}});
  eval_cache_lru_.push_front(std::string_view(entry_it->first));
  entry_it->second.lru_it = eval_cache_lru_.begin();
  while (eval_cache_.size() > eval_cache_capacity_) {
    std::string_view victim = eval_cache_lru_.back();
    eval_cache_.erase(eval_cache_.find(victim));
    eval_cache_lru_.pop_back();
  }
  return parsed;
}

void Interp::set_eval_cache_capacity(size_t capacity) {
  eval_cache_capacity_ = capacity;
  while (eval_cache_.size() > capacity) {
    std::string_view victim = eval_cache_lru_.back();
    eval_cache_.erase(eval_cache_.find(victim));
    eval_cache_lru_.pop_back();
  }
}

void Interp::ClearEvalCache() {
  eval_cache_.clear();
  eval_cache_lru_.clear();
  eval_cache_stats_ = EvalCacheStats();
}

void Interp::InvalidateEvalCache() {
  eval_cache_stats_.invalidations += eval_cache_.size();
  eval_cache_.clear();
  eval_cache_lru_.clear();
}

Code Interp::EvalWords(std::vector<std::string>& words) {
  if (words.empty()) {
    return Code::kOk;
  }
  ++command_count_;
  auto it = commands_.find(words[0]);
  if (it == commands_.end()) {
    auto unknown = commands_.find("unknown");
    if (unknown != commands_.end()) {
      std::vector<std::string> fallback;
      fallback.reserve(words.size() + 1);
      fallback.emplace_back("unknown");
      for (std::string& w : words) {
        fallback.push_back(w);
      }
      ResetResult();
      return unknown->second.proc(*this, fallback);
    }
    return Error("invalid command name \"" + words[0] + "\"");
  }
  ResetResult();
  // Copy the handle: the command may delete or redefine itself.
  CommandProc proc = it->second.proc;
  return proc(*this, words);
}

Code Interp::EvalBool(std::string_view expr_text, bool* out) {
  return ExprBoolean(*this, expr_text, out);
}

// ---------------------------------------------------------------------------
// Results and errors.

void Interp::AppendElement(std::string_view element) {
  if (!result_.empty()) {
    result_.push_back(' ');
  }
  result_.append(QuoteListElement(element));
}

Code Interp::Error(std::string message) {
  result_ = std::move(message);
  return Code::kError;
}

Code Interp::WrongNumArgs(std::string_view usage) {
  return Error("wrong # args: should be \"" + std::string(usage) + "\"");
}

void Interp::AddErrorInfo(std::string_view info) {
  if (!error_in_progress_) {
    error_info_ = result_;
    error_in_progress_ = true;
  }
  error_info_.append(info);
}

void Interp::AddCommandTrace(std::string_view command_text) {
  constexpr size_t kMaxShown = 150;
  std::string shown(command_text.substr(0, kMaxShown));
  if (command_text.size() > kMaxShown) {
    shown += "...";
  }
  if (!error_in_progress_) {
    error_info_ = result_;
    error_in_progress_ = true;
    error_info_ += "\n    while executing\n\"" + shown + "\"";
  } else {
    error_info_ += "\n    invoked from within\n\"" + shown + "\"";
  }
}

// ---------------------------------------------------------------------------
// Commands.

void Interp::NoteCommandMutation(std::string_view name) {
  if (IsVmInlinedBuiltin(name)) {
    ++builtin_epoch_;
  }
}

void Interp::RegisterCommand(std::string name, CommandProc proc) {
  // Only an overwrite can change what an inlined instruction should do; the
  // constructor's first registrations leave the epoch at zero.
  if (commands_.find(name) != commands_.end()) {
    NoteCommandMutation(name);
  }
  commands_[std::move(name)] = CommandEntry{std::move(proc)};
}

void Interp::RegisterInfoExtension(std::string name, CommandProc proc) {
  info_extensions_[std::move(name)] = std::move(proc);
}

const CommandProc* Interp::FindInfoExtension(std::string_view name) const {
  auto it = info_extensions_.find(name);
  return it == info_extensions_.end() ? nullptr : &it->second;
}

bool Interp::DeleteCommand(std::string_view name) {
  auto it = commands_.find(name);
  if (it == commands_.end()) {
    return false;
  }
  commands_.erase(it);
  procs_.erase(std::string(name));
  NoteCommandMutation(name);
  InvalidateEvalCache();
  return true;
}

bool Interp::RenameCommand(std::string_view old_name, std::string_view new_name) {
  auto it = commands_.find(old_name);
  if (it == commands_.end()) {
    return false;
  }
  CommandEntry entry = std::move(it->second);
  commands_.erase(it);
  auto proc_it = procs_.find(std::string(old_name));
  if (proc_it != procs_.end()) {
    Proc body = std::move(proc_it->second);
    procs_.erase(proc_it);
    if (!new_name.empty()) {
      procs_[std::string(new_name)] = std::move(body);
    }
  }
  if (!new_name.empty()) {
    commands_[std::string(new_name)] = std::move(entry);
  }
  NoteCommandMutation(old_name);
  NoteCommandMutation(new_name);
  InvalidateEvalCache();
  return true;
}

bool Interp::HasCommand(std::string_view name) const {
  return commands_.find(name) != commands_.end();
}

std::vector<std::string> Interp::CommandNames(std::string_view pattern) const {
  std::vector<std::string> names;
  for (const auto& [name, entry] : commands_) {
    if (pattern.empty() || StringMatch(pattern, name)) {
      names.push_back(name);
    }
  }
  return names;
}

const Proc* Interp::FindProc(std::string_view name) const {
  auto it = procs_.find(std::string(name));
  return it == procs_.end() ? nullptr : &it->second;
}

void Interp::DefineProc(std::string name, Proc proc) {
  // Redefinition invalidates cached parses; a first definition cannot (the
  // cache is syntactic, and no cached script can have specialized on a
  // command that did not exist yet).
  bool redefinition = procs_.find(name) != procs_.end();
  procs_[name] = std::move(proc);
  if (redefinition) {
    InvalidateEvalCache();
  }
}

std::vector<std::string> Interp::ProcNames(std::string_view pattern) const {
  std::vector<std::string> names;
  for (const auto& [name, proc] : procs_) {
    if (pattern.empty() || StringMatch(pattern, name)) {
      names.push_back(name);
    }
  }
  return names;
}

// ---------------------------------------------------------------------------
// Variables.

std::shared_ptr<Var> Interp::LookupVar(CallFrame& frame, std::string_view base, bool create) {
  auto it = frame.vars.find(std::string(base));
  if (it != frame.vars.end()) {
    return it->second;
  }
  if (!create) {
    return nullptr;
  }
  auto var = std::make_shared<Var>();
  frame.vars[std::string(base)] = var;
  return var;
}

const std::string* Interp::GetVar(std::string_view name) {
  const std::string* value = GetVarQuiet(name);
  if (value == nullptr) {
    Error("can't read \"" + std::string(name) + "\": no such variable");
  }
  return value;
}

const std::string* Interp::GetVarQuiet(std::string_view name) {
  std::string_view base = name;
  std::string_view index;
  bool is_element = SplitArrayName(name, &base, &index);
  std::shared_ptr<Var> var = LookupVar(current_frame(), base, /*create=*/false);
  if (var == nullptr) {
    return nullptr;
  }
  if (is_element) {
    if (!var->is_array) {
      return nullptr;
    }
    auto it = var->array.find(std::string(index));
    return it == var->array.end() ? nullptr : &it->second;
  }
  if (var->is_array || !var->defined) {
    return nullptr;
  }
  return &var->scalar;
}

Code Interp::SetVar(std::string_view name, std::string value) {
  std::string_view base = name;
  std::string_view index;
  bool is_element = SplitArrayName(name, &base, &index);
  std::shared_ptr<Var> var = LookupVar(current_frame(), base, /*create=*/true);
  if (is_element) {
    if (var->defined && !var->is_array) {
      return Error("can't set \"" + std::string(name) + "\": variable isn't array");
    }
    var->defined = true;
    var->is_array = true;
    var->array[std::string(index)] = std::move(value);
  } else {
    if (var->defined && var->is_array) {
      return Error("can't set \"" + std::string(name) + "\": variable is array");
    }
    var->defined = true;
    var->scalar = std::move(value);
  }
  if (!var->traces.empty()) {
    const std::string* stored = GetVarQuiet(name);
    std::string current = stored != nullptr ? *stored : std::string();
    // Copy: a trace may add further traces.
    std::vector<VarTraceProc> traces = var->traces;
    for (const VarTraceProc& trace : traces) {
      trace(*this, name, current, /*unset=*/false);
    }
  }
  return Code::kOk;
}

Code Interp::UnsetVar(std::string_view name) {
  std::string_view base = name;
  std::string_view index;
  bool is_element = SplitArrayName(name, &base, &index);
  auto it = current_frame().vars.find(std::string(base));
  if (it == current_frame().vars.end() || !it->second->defined) {
    return Error("can't unset \"" + std::string(name) + "\": no such variable");
  }
  std::shared_ptr<Var> var = it->second;
  if (is_element) {
    if (!var->is_array || var->array.erase(std::string(index)) == 0) {
      return Error("can't unset \"" + std::string(name) + "\": no such element in array");
    }
  } else {
    current_frame().vars.erase(it);
    ++current_frame().vars_epoch;  // A name->Var binding went away.
    var->defined = false;
    var->scalar.clear();
    var->array.clear();
  }
  std::vector<VarTraceProc> traces = var->traces;
  for (const VarTraceProc& trace : traces) {
    trace(*this, name, "", /*unset=*/true);
  }
  return Code::kOk;
}

bool Interp::VarExists(std::string_view name) { return GetVarQuiet(name) != nullptr; }

void Interp::TraceVar(std::string_view name, VarTraceProc trace) {
  std::string_view base = name;
  std::string_view index;
  SplitArrayName(name, &base, &index);
  std::shared_ptr<Var> var = LookupVar(current_frame(), base, /*create=*/true);
  var->traces.push_back(std::move(trace));
}

const std::map<std::string, std::string>* Interp::GetArray(std::string_view name) {
  std::shared_ptr<Var> var = LookupVar(current_frame(), name, /*create=*/false);
  if (var == nullptr || !var->is_array) {
    return nullptr;
  }
  return &var->array;
}

std::vector<std::string> Interp::LocalVarNames(std::string_view pattern) {
  std::vector<std::string> names;
  for (const auto& [name, var] : current_frame().vars) {
    if (var->defined && (pattern.empty() || StringMatch(pattern, name))) {
      names.push_back(name);
    }
  }
  return names;
}

std::vector<std::string> Interp::GlobalVarNames(std::string_view pattern) {
  std::vector<std::string> names;
  for (const auto& [name, var] : global_frame().vars) {
    if (var->defined && (pattern.empty() || StringMatch(pattern, name))) {
      names.push_back(name);
    }
  }
  return names;
}

Code Interp::LinkGlobal(std::string_view name) {
  if (&current_frame() == &global_frame()) {
    return Code::kOk;  // Already global: no-op.
  }
  std::shared_ptr<Var> target = LookupVar(global_frame(), name, /*create=*/true);
  current_frame().vars[std::string(name)] = target;
  ++current_frame().vars_epoch;  // An existing binding may have been re-pointed.
  return Code::kOk;
}

Code Interp::LinkUpvar(std::string_view level_spec, std::string_view other,
                       std::string_view my_name) {
  bool explicit_spec = false;
  CallFrame* frame = ResolveLevel(level_spec, &explicit_spec);
  if (frame == nullptr) {
    return Error("bad level \"" + std::string(level_spec) + "\"");
  }
  std::shared_ptr<Var> target = LookupVar(*frame, other, /*create=*/true);
  current_frame().vars[std::string(my_name)] = target;
  ++current_frame().vars_epoch;  // An existing binding may have been re-pointed.
  return Code::kOk;
}

// ---------------------------------------------------------------------------
// Procedure invocation (shared with cmd_core.cc's `proc`).

Code ProcInvoke(Interp& interp, const std::string& name, const Proc& proc,
                std::vector<std::string>& args) {
  interp.PushFrame(args[0]);
  Code code = Code::kOk;
  size_t arg_index = 1;
  for (size_t i = 0; i < proc.formals.size(); ++i) {
    const Proc::Formal& formal = proc.formals[i];
    if (formal.name == "args" && i == proc.formals.size() - 1) {
      std::vector<std::string> rest(args.begin() + arg_index, args.end());
      interp.SetVar("args", MergeList(rest));
      arg_index = args.size();
      break;
    }
    if (arg_index < args.size()) {
      interp.SetVar(formal.name, args[arg_index]);
      ++arg_index;
    } else if (formal.has_default) {
      interp.SetVar(formal.name, formal.default_value);
    } else {
      interp.PopFrame();
      return interp.Error("no value given for parameter \"" + formal.name + "\" to \"" + name +
                          "\"");
    }
  }
  if (arg_index < args.size()) {
    interp.PopFrame();
    return interp.Error("called \"" + name + "\" with too many arguments");
  }
  code = interp.Eval(proc.body);
  if (code == Code::kReturn) {
    code = Code::kOk;
  } else if (code == Code::kError) {
    interp.AddErrorInfo("\n    (procedure \"" + name + "\" body)");
  } else if (code == Code::kBreak || code == Code::kContinue) {
    code = interp.Error("invoked \"" + std::string(code == Code::kBreak ? "break" : "continue") +
                        "\" outside of a loop");
  }
  interp.PopFrame();
  return code;
}

void RegisterBuiltins(Interp& interp) {
  RegisterCoreCommands(interp);
  RegisterListCommands(interp);
  RegisterStringCommands(interp);
  RegisterInfoCommands(interp);
  RegisterIoCommands(interp);
  RegisterRegexpCommands(interp);
}

}  // namespace tcl
