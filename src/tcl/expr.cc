#include "src/tcl/expr.h"

#include <cctype>
#include <cmath>
#include <optional>

#include "src/tcl/interp.h"
#include "src/tcl/parser.h"
#include "src/tcl/utils.h"

namespace tcl {
namespace {

// A value flowing through the expression evaluator.  The original string
// form is kept for string comparison operators.
struct Value {
  enum class Type { kInt, kDouble, kString };
  Type type = Type::kInt;
  int64_t i = 0;
  double d = 0.0;
  std::string s;

  static Value Int(int64_t v) {
    Value out;
    out.type = Type::kInt;
    out.i = v;
    return out;
  }
  static Value Double(double v) {
    Value out;
    out.type = Type::kDouble;
    out.d = v;
    return out;
  }
  static Value String(std::string v) {
    Value out;
    out.type = Type::kString;
    out.s = std::move(v);
    return out;
  }
  // Classifies a raw string: integer if it parses fully as one, then double,
  // else string.
  static Value Classify(std::string v) {
    if (std::optional<int64_t> as_int = ParseInt(v)) {
      Value out = Int(*as_int);
      out.s = std::move(v);
      return out;
    }
    if (std::optional<double> as_double = ParseDouble(v)) {
      Value out = Double(*as_double);
      out.s = std::move(v);
      return out;
    }
    return String(std::move(v));
  }

  bool IsNumeric() const { return type != Type::kString; }
  double AsDouble() const { return type == Type::kInt ? static_cast<double>(i) : d; }
  std::string Print() const {
    switch (type) {
      case Type::kInt:
        return FormatInt(i);
      case Type::kDouble:
        return FormatDouble(d);
      case Type::kString:
        return s;
    }
    return "";
  }
  std::string AsComparableString() const {
    // For string comparisons, prefer the original spelling when we have one.
    if (!s.empty() || type == Type::kString) {
      return s;
    }
    return Print();
  }
};

class ExprParser {
 public:
  ExprParser(Interp& interp, std::string_view text) : interp_(interp), text_(text) {}

  Code Parse(Value* out) {
    Code code = ParseTernary(/*evaluate=*/true, out);
    if (code != Code::kOk) {
      return code;
    }
    SkipSpace();
    if (pos_ < text_.size()) {
      return Syntax();
    }
    return Code::kOk;
  }

 private:
  Code Syntax() {
    return interp_.Error("syntax error in expression \"" + std::string(text_) + "\"");
  }

  void SkipSpace() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  // ternary: lor ('?' ternary ':' ternary)?
  Code ParseTernary(bool evaluate, Value* out) {
    Code code = ParseBinary(0, evaluate, out);
    if (code != Code::kOk) {
      return code;
    }
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == '?') {
      ++pos_;
      bool cond = false;
      if (evaluate) {
        if (!ToBoolean(*out, &cond)) {
          return NonNumeric(*out);
        }
      }
      Value then_value;
      Value else_value;
      code = ParseTernary(evaluate && cond, &then_value);
      if (code != Code::kOk) {
        return code;
      }
      SkipSpace();
      if (pos_ >= text_.size() || text_[pos_] != ':') {
        return Syntax();
      }
      ++pos_;
      code = ParseTernary(evaluate && !cond, &else_value);
      if (code != Code::kOk) {
        return code;
      }
      if (evaluate) {
        *out = cond ? then_value : else_value;
      }
    }
    return Code::kOk;
  }

  struct OpInfo {
    std::string_view token;
    int precedence;
  };

  // Binary operators from lowest (0) to highest precedence level.
  static constexpr int kMaxPrecedence = 10;

  // Returns the operator at the current position with precedence == level, or
  // empty if none.
  std::string_view MatchBinaryOp(int level) {
    static const OpInfo kOps[] = {
        {"||", 0}, {"&&", 1}, {"|", 2},  {"^", 3},  {"&", 4},  {"==", 5}, {"!=", 5},
        {"<=", 6}, {">=", 6}, {"<<", 7}, {">>", 7}, {"<", 6},  {">", 6},  {"+", 8},
        {"-", 8},  {"*", 9},  {"/", 9},  {"%", 9},
    };
    SkipSpace();
    for (const OpInfo& op : kOps) {
      if (op.precedence != level) {
        continue;
      }
      if (text_.substr(pos_, op.token.size()) == op.token) {
        // Avoid matching '<' when the text is '<<' or '<=' (those appear
        // earlier in the table but have different precedence levels).
        if (op.token == "<" || op.token == ">") {
          char next = pos_ + 1 < text_.size() ? text_[pos_ + 1] : '\0';
          if (next == '<' || next == '>' || next == '=') {
            continue;
          }
        }
        if (op.token == "|" && pos_ + 1 < text_.size() && text_[pos_ + 1] == '|') {
          continue;
        }
        if (op.token == "&" && pos_ + 1 < text_.size() && text_[pos_ + 1] == '&') {
          continue;
        }
        return op.token;
      }
    }
    return {};
  }

  Code ParseBinary(int level, bool evaluate, Value* out) {
    if (level > kMaxPrecedence) {
      return ParseUnary(evaluate, out);
    }
    Code code = ParseBinary(level + 1, evaluate, out);
    if (code != Code::kOk) {
      return code;
    }
    while (true) {
      std::string_view op = MatchBinaryOp(level);
      if (op.empty()) {
        return Code::kOk;
      }
      pos_ += op.size();
      bool rhs_evaluate = evaluate;
      bool short_circuited = false;
      if (evaluate && (op == "&&" || op == "||")) {
        bool lhs_bool = false;
        if (!ToBoolean(*out, &lhs_bool)) {
          return NonNumeric(*out);
        }
        if ((op == "&&" && !lhs_bool) || (op == "||" && lhs_bool)) {
          rhs_evaluate = false;
          short_circuited = true;
          *out = Value::Int(lhs_bool ? 1 : 0);
        }
      }
      Value rhs;
      code = ParseBinary(level + 1, rhs_evaluate, &rhs);
      if (code != Code::kOk) {
        return code;
      }
      if (!evaluate || short_circuited) {
        continue;
      }
      code = ApplyBinary(op, *out, rhs, out);
      if (code != Code::kOk) {
        return code;
      }
    }
  }

  Code ParseUnary(bool evaluate, Value* out) {
    SkipSpace();
    if (pos_ >= text_.size()) {
      return Syntax();
    }
    char c = text_[pos_];
    if (c == '-' || c == '+' || c == '!' || c == '~') {
      ++pos_;
      Code code = ParseUnary(evaluate, out);
      if (code != Code::kOk) {
        return code;
      }
      if (!evaluate) {
        return Code::kOk;
      }
      switch (c) {
        case '-':
          if (out->type == Value::Type::kInt) {
            *out = Value::Int(-out->i);
          } else if (out->type == Value::Type::kDouble) {
            *out = Value::Double(-out->d);
          } else {
            return NonNumeric(*out);
          }
          return Code::kOk;
        case '+':
          if (!out->IsNumeric()) {
            return NonNumeric(*out);
          }
          return Code::kOk;
        case '!': {
          bool b = false;
          if (!ToBoolean(*out, &b)) {
            return NonNumeric(*out);
          }
          *out = Value::Int(b ? 0 : 1);
          return Code::kOk;
        }
        case '~':
          if (out->type != Value::Type::kInt) {
            return interp_.Error("can't use non-integer operand with \"~\"");
          }
          *out = Value::Int(~out->i);
          return Code::kOk;
      }
    }
    return ParsePrimary(evaluate, out);
  }

  Code ParsePrimary(bool evaluate, Value* out) {
    SkipSpace();
    if (pos_ >= text_.size()) {
      return Syntax();
    }
    char c = text_[pos_];
    if (c == '(') {
      ++pos_;
      Code code = ParseTernary(evaluate, out);
      if (code != Code::kOk) {
        return code;
      }
      SkipSpace();
      if (pos_ >= text_.size() || text_[pos_] != ')') {
        return interp_.Error("unbalanced parentheses in expression");
      }
      ++pos_;
      return Code::kOk;
    }
    if (c == '$') {
      std::string value;
      if (evaluate) {
        Code code = SubstVar(interp_, text_, &pos_, &value);
        if (code != Code::kOk) {
          return code;
        }
        *out = Value::Classify(std::move(value));
      } else {
        SkipVariable();
      }
      return Code::kOk;
    }
    if (c == '[') {
      if (evaluate) {
        ++pos_;
        Code code = EvalScript(interp_, text_, ']', &pos_);
        if (code != Code::kOk) {
          return code;
        }
        *out = Value::Classify(interp_.result());
      } else {
        SkipBracketedCommand();
      }
      return Code::kOk;
    }
    if (c == '"') {
      ++pos_;
      std::string value;
      while (pos_ < text_.size() && text_[pos_] != '"') {
        char qc = text_[pos_];
        if (qc == '\\') {
          BackslashSubst(text_, &pos_, &value);
          continue;
        }
        if (qc == '$') {
          if (evaluate) {
            Code code = SubstVar(interp_, text_, &pos_, &value);
            if (code != Code::kOk) {
              return code;
            }
          } else {
            SkipVariable();
          }
          continue;
        }
        if (qc == '[') {
          if (evaluate) {
            ++pos_;
            Code code = EvalScript(interp_, text_, ']', &pos_);
            if (code != Code::kOk) {
              return code;
            }
            value.append(interp_.result());
          } else {
            SkipBracketedCommand();
          }
          continue;
        }
        value.push_back(qc);
        ++pos_;
      }
      if (pos_ >= text_.size()) {
        return interp_.Error("missing \" in expression");
      }
      ++pos_;
      if (evaluate) {
        *out = Value::Classify(std::move(value));
        // A quoted operand is always treated as a string for comparisons but
        // retains numeric value; keep original spelling in s.
      }
      return Code::kOk;
    }
    if (c == '{') {
      std::string value;
      Code code = ParseBracedWord(interp_, text_, &pos_, &value);
      if (code != Code::kOk) {
        return code;
      }
      if (evaluate) {
        *out = Value::Classify(std::move(value));
      }
      return Code::kOk;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) || c == '.') {
      return ParseNumber(evaluate, out);
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      return ParseFunctionCall(evaluate, out);
    }
    return Syntax();
  }

  Code ParseNumber(bool evaluate, Value* out) {
    size_t start = pos_;
    // Scan the longest run that could be part of a number.
    bool saw_dot = false;
    bool saw_exp = false;
    bool is_hex = false;
    if (text_.substr(pos_, 2) == "0x" || text_.substr(pos_, 2) == "0X") {
      is_hex = true;
      pos_ += 2;
      while (pos_ < text_.size() && std::isxdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    } else {
      while (pos_ < text_.size()) {
        char c = text_[pos_];
        if (std::isdigit(static_cast<unsigned char>(c))) {
          ++pos_;
        } else if (c == '.' && !saw_dot && !saw_exp) {
          saw_dot = true;
          ++pos_;
        } else if ((c == 'e' || c == 'E') && !saw_exp && pos_ > start) {
          // Lookahead: must be followed by digits or sign+digits.
          size_t next = pos_ + 1;
          if (next < text_.size() && (text_[next] == '+' || text_[next] == '-')) {
            ++next;
          }
          if (next < text_.size() && std::isdigit(static_cast<unsigned char>(text_[next]))) {
            saw_exp = true;
            pos_ = next + 1;
          } else {
            break;
          }
        } else {
          break;
        }
      }
    }
    std::string_view token = text_.substr(start, pos_ - start);
    if (!evaluate) {
      return Code::kOk;
    }
    if (!saw_dot && !saw_exp) {
      if (std::optional<int64_t> v = ParseInt(token)) {
        *out = Value::Int(*v);
        return Code::kOk;
      }
    }
    if (!is_hex) {
      if (std::optional<double> v = ParseDouble(token)) {
        *out = Value::Double(*v);
        return Code::kOk;
      }
    }
    return Syntax();
  }

  Code ParseFunctionCall(bool evaluate, Value* out) {
    size_t start = pos_;
    while (pos_ < text_.size() && (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
                                   text_[pos_] == '_')) {
      ++pos_;
    }
    std::string name(text_.substr(start, pos_ - start));
    SkipSpace();
    if (pos_ >= text_.size() || text_[pos_] != '(') {
      // Bare words like `true`/`false` read as booleans.
      if (std::optional<bool> b = ParseBool(name)) {
        if (evaluate) {
          *out = Value::Int(*b ? 1 : 0);
        }
        return Code::kOk;
      }
      return interp_.Error("unknown operator or function \"" + name + "\" in expression");
    }
    ++pos_;
    std::vector<Value> args;
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == ')') {
      ++pos_;
    } else {
      while (true) {
        Value arg;
        Code code = ParseTernary(evaluate, &arg);
        if (code != Code::kOk) {
          return code;
        }
        args.push_back(std::move(arg));
        SkipSpace();
        if (pos_ < text_.size() && text_[pos_] == ',') {
          ++pos_;
          continue;
        }
        if (pos_ < text_.size() && text_[pos_] == ')') {
          ++pos_;
          break;
        }
        return Syntax();
      }
    }
    if (!evaluate) {
      return Code::kOk;
    }
    return ApplyFunction(name, args, out);
  }

  void SkipVariable() {
    ++pos_;  // '$'
    if (pos_ < text_.size() && text_[pos_] == '{') {
      while (pos_ < text_.size() && text_[pos_] != '}') {
        ++pos_;
      }
      if (pos_ < text_.size()) {
        ++pos_;
      }
      return;
    }
    while (pos_ < text_.size() && (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
                                   text_[pos_] == '_')) {
      ++pos_;
    }
    if (pos_ < text_.size() && text_[pos_] == '(') {
      int depth = 1;
      ++pos_;
      while (pos_ < text_.size() && depth > 0) {
        if (text_[pos_] == '(') {
          ++depth;
        } else if (text_[pos_] == ')') {
          --depth;
        }
        ++pos_;
      }
    }
  }

  void SkipBracketedCommand() {
    int depth = 1;
    ++pos_;
    while (pos_ < text_.size() && depth > 0) {
      char c = text_[pos_];
      if (c == '\\' && pos_ + 1 < text_.size()) {
        pos_ += 2;
        continue;
      }
      if (c == '[') {
        ++depth;
      } else if (c == ']') {
        --depth;
      }
      ++pos_;
    }
  }

  bool ToBoolean(const Value& v, bool* out) {
    switch (v.type) {
      case Value::Type::kInt:
        *out = v.i != 0;
        return true;
      case Value::Type::kDouble:
        *out = v.d != 0.0;
        return true;
      case Value::Type::kString: {
        if (std::optional<bool> b = ParseBool(v.s)) {
          *out = *b;
          return true;
        }
        return false;
      }
    }
    return false;
  }

  Code NonNumeric(const Value& v) {
    return interp_.Error("expected boolean or numeric value but got \"" +
                         v.AsComparableString() + "\"");
  }

  Code ApplyBinary(std::string_view op, const Value& lhs, const Value& rhs, Value* out) {
    // Comparison operators handle strings.
    bool is_comparison = (op == "==" || op == "!=" || op == "<" || op == ">" || op == "<=" ||
                          op == ">=");
    if (is_comparison && (!lhs.IsNumeric() || !rhs.IsNumeric())) {
      int cmp = lhs.AsComparableString().compare(rhs.AsComparableString());
      bool result = false;
      if (op == "==") {
        result = cmp == 0;
      } else if (op == "!=") {
        result = cmp != 0;
      } else if (op == "<") {
        result = cmp < 0;
      } else if (op == ">") {
        result = cmp > 0;
      } else if (op == "<=") {
        result = cmp <= 0;
      } else {
        result = cmp >= 0;
      }
      *out = Value::Int(result ? 1 : 0);
      return Code::kOk;
    }
    if (op == "&&" || op == "||") {
      bool lb = false;
      bool rb = false;
      if (!ToBoolean(lhs, &lb)) {
        return NonNumeric(lhs);
      }
      if (!ToBoolean(rhs, &rb)) {
        return NonNumeric(rhs);
      }
      *out = Value::Int(op == "&&" ? (lb && rb) : (lb || rb));
      return Code::kOk;
    }
    bool int_only = (op == "%" || op == "<<" || op == ">>" || op == "&" || op == "|" ||
                     op == "^");
    if (int_only) {
      if (lhs.type != Value::Type::kInt || rhs.type != Value::Type::kInt) {
        return interp_.Error("can't use non-integer operand with \"" + std::string(op) + "\"");
      }
      int64_t a = lhs.i;
      int64_t b = rhs.i;
      if (op == "%") {
        if (b == 0) {
          return interp_.Error("divide by zero");
        }
        // Tcl defines % so the remainder has the sign of the divisor.
        int64_t rem = a % b;
        if (rem != 0 && ((rem < 0) != (b < 0))) {
          rem += b;
        }
        *out = Value::Int(rem);
      } else if (op == "<<") {
        *out = Value::Int(static_cast<int64_t>(static_cast<uint64_t>(a)
                                               << (static_cast<uint64_t>(b) & 63)));
      } else if (op == ">>") {
        *out = Value::Int(a >> (static_cast<uint64_t>(b) & 63));
      } else if (op == "&") {
        *out = Value::Int(a & b);
      } else if (op == "|") {
        *out = Value::Int(a | b);
      } else {
        *out = Value::Int(a ^ b);
      }
      return Code::kOk;
    }
    if (!lhs.IsNumeric()) {
      return NonNumeric(lhs);
    }
    if (!rhs.IsNumeric()) {
      return NonNumeric(rhs);
    }
    bool use_double = lhs.type == Value::Type::kDouble || rhs.type == Value::Type::kDouble;
    if (is_comparison) {
      bool result = false;
      if (use_double) {
        double a = lhs.AsDouble();
        double b = rhs.AsDouble();
        result = op == "==" ? a == b
                 : op == "!=" ? a != b
                 : op == "<"  ? a < b
                 : op == ">"  ? a > b
                 : op == "<=" ? a <= b
                              : a >= b;
      } else {
        int64_t a = lhs.i;
        int64_t b = rhs.i;
        result = op == "==" ? a == b
                 : op == "!=" ? a != b
                 : op == "<"  ? a < b
                 : op == ">"  ? a > b
                 : op == "<=" ? a <= b
                              : a >= b;
      }
      *out = Value::Int(result ? 1 : 0);
      return Code::kOk;
    }
    if (use_double) {
      double a = lhs.AsDouble();
      double b = rhs.AsDouble();
      if (op == "+") {
        *out = Value::Double(a + b);
      } else if (op == "-") {
        *out = Value::Double(a - b);
      } else if (op == "*") {
        *out = Value::Double(a * b);
      } else if (op == "/") {
        if (b == 0.0) {
          return interp_.Error("divide by zero");
        }
        *out = Value::Double(a / b);
      } else {
        return Syntax();
      }
      return Code::kOk;
    }
    int64_t a = lhs.i;
    int64_t b = rhs.i;
    if (op == "+") {
      *out = Value::Int(a + b);
    } else if (op == "-") {
      *out = Value::Int(a - b);
    } else if (op == "*") {
      *out = Value::Int(a * b);
    } else if (op == "/") {
      if (b == 0) {
        return interp_.Error("divide by zero");
      }
      // Tcl division truncates toward negative infinity.
      int64_t quot = a / b;
      if ((a % b != 0) && ((a < 0) != (b < 0))) {
        --quot;
      }
      *out = Value::Int(quot);
    } else {
      return Syntax();
    }
    return Code::kOk;
  }

  Code ApplyFunction(const std::string& name, const std::vector<Value>& args, Value* out) {
    auto need = [&](size_t n) -> bool { return args.size() == n; };
    auto arg_double = [&](size_t idx) { return args[idx].AsDouble(); };
    auto numeric_args = [&]() {
      for (const Value& v : args) {
        if (!v.IsNumeric()) {
          return false;
        }
      }
      return true;
    };
    if (!numeric_args()) {
      return interp_.Error("argument to math function didn't have numeric value");
    }
    if (name == "abs" && need(1)) {
      if (args[0].type == Value::Type::kInt) {
        *out = Value::Int(args[0].i < 0 ? -args[0].i : args[0].i);
      } else {
        *out = Value::Double(std::fabs(args[0].d));
      }
      return Code::kOk;
    }
    if (name == "int" && need(1)) {
      *out = Value::Int(static_cast<int64_t>(arg_double(0)));
      return Code::kOk;
    }
    if (name == "double" && need(1)) {
      *out = Value::Double(arg_double(0));
      return Code::kOk;
    }
    if (name == "round" && need(1)) {
      *out = Value::Int(static_cast<int64_t>(std::llround(arg_double(0))));
      return Code::kOk;
    }
    struct UnaryFn {
      const char* name;
      double (*fn)(double);
    };
    static const UnaryFn kUnary[] = {
        {"sin", std::sin},     {"cos", std::cos},   {"tan", std::tan},   {"asin", std::asin},
        {"acos", std::acos},   {"atan", std::atan}, {"sinh", std::sinh}, {"cosh", std::cosh},
        {"tanh", std::tanh},   {"exp", std::exp},   {"log", std::log},   {"log10", std::log10},
        {"sqrt", std::sqrt},   {"floor", std::floor}, {"ceil", std::ceil},
    };
    for (const UnaryFn& fn : kUnary) {
      if (name == fn.name) {
        if (!need(1)) {
          return interp_.Error("too many arguments for math function");
        }
        double result = fn.fn(arg_double(0));
        if (std::isnan(result)) {
          return interp_.Error("domain error: argument not in valid range");
        }
        *out = Value::Double(result);
        return Code::kOk;
      }
    }
    if (name == "pow" && need(2)) {
      *out = Value::Double(std::pow(arg_double(0), arg_double(1)));
      return Code::kOk;
    }
    if (name == "atan2" && need(2)) {
      *out = Value::Double(std::atan2(arg_double(0), arg_double(1)));
      return Code::kOk;
    }
    if (name == "hypot" && need(2)) {
      *out = Value::Double(std::hypot(arg_double(0), arg_double(1)));
      return Code::kOk;
    }
    if (name == "fmod" && need(2)) {
      if (arg_double(1) == 0.0) {
        return interp_.Error("divide by zero");
      }
      *out = Value::Double(std::fmod(arg_double(0), arg_double(1)));
      return Code::kOk;
    }
    return interp_.Error("unknown math function \"" + name + "\"");
  }

  Interp& interp_;
  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

Code ExprEval(Interp& interp, std::string_view text, std::string* result) {
  ExprParser parser(interp, text);
  Value value;
  Code code = parser.Parse(&value);
  if (code != Code::kOk) {
    return code;
  }
  *result = value.Print();
  return Code::kOk;
}

Code ExprBoolean(Interp& interp, std::string_view text, bool* out) {
  std::string result;
  Code code = ExprEval(interp, text, &result);
  if (code != Code::kOk) {
    return code;
  }
  if (std::optional<bool> b = ParseBool(result)) {
    *out = *b;
    return Code::kOk;
  }
  return interp.Error("expected boolean value but got \"" + result + "\"");
}

Code ExprInt(Interp& interp, std::string_view text, int64_t* out) {
  std::string result;
  Code code = ExprEval(interp, text, &result);
  if (code != Code::kOk) {
    return code;
  }
  if (std::optional<int64_t> v = ParseInt(result)) {
    *out = *v;
    return Code::kOk;
  }
  if (std::optional<double> v = ParseDouble(result)) {
    *out = static_cast<int64_t>(*v);
    return Code::kOk;
  }
  return interp.Error("expected integer but got \"" + result + "\"");
}

Code ExprDoubleValue(Interp& interp, std::string_view text, double* out) {
  std::string result;
  Code code = ExprEval(interp, text, &result);
  if (code != Code::kOk) {
    return code;
  }
  if (std::optional<double> v = ParseDouble(result)) {
    *out = *v;
    return Code::kOk;
  }
  return interp.Error("expected floating-point number but got \"" + result + "\"");
}

}  // namespace tcl
