// Tcl list machinery.
//
// Lists are just strings with a quoting convention: elements are separated by
// white space, and elements containing special characters are wrapped in
// braces (or backslash-escaped when braces won't do).  These helpers convert
// between the string form and std::vector<std::string>, and are used by every
// list command (list, lindex, foreach, ...) as well as by Tk (pack options,
// bind scripts, listbox contents).

#ifndef SRC_TCL_LIST_H_
#define SRC_TCL_LIST_H_

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace tcl {

// Splits a Tcl list into its elements.  Returns std::nullopt if the string is
// not a well-formed list (unmatched brace or quote); `error` (if non-null)
// receives a description.
std::optional<std::vector<std::string>> SplitList(std::string_view list, std::string* error);

// Quotes a single element so it can be embedded in a list and later recovered
// by SplitList.
std::string QuoteListElement(std::string_view element);

// Builds a list string from elements (the inverse of SplitList).
std::string MergeList(const std::vector<std::string>& elements);

// Joins strings with a single space *without* list quoting, trimming leading
// and trailing blanks of each part -- the semantics of the `concat` command.
std::string ConcatStrings(const std::vector<std::string>& parts);

}  // namespace tcl

#endif  // SRC_TCL_LIST_H_
