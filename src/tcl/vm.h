// The bytecode stack VM (stage three of the parse -> compile -> execute
// pipeline; see compiler.h for stage two and the parity rules).
//
// VmExecutor::Execute runs a CompiledScript against an Interp with exactly
// the observable behaviour of the tree-walking EvalParsed: same results,
// same error messages and errorInfo traces, same `info cmdcount` counts,
// same variable-trace firing.  What it removes is per-iteration overhead:
// loop bodies run as straight-line instructions (no per-iteration Eval /
// cache lookup / word vector), `set`/`incr`/`expr` hit variables through a
// per-execution slot cache instead of name lookups, and literal conditions
// evaluate as compiled numeric RPN.

#ifndef SRC_TCL_VM_H_
#define SRC_TCL_VM_H_

#include <memory>

#include "src/tcl/types.h"

namespace tcl {

class Interp;
struct CompiledScript;

class VmExecutor {
 public:
  // Executes `script` (compiled from a ParsedScript with ok == true).  The
  // shared_ptr keeps the code alive even if the cache entry it came from is
  // evicted or invalidated mid-run.
  static Code Execute(Interp& interp, std::shared_ptr<const CompiledScript> script);

 private:
  // One execution of one compiled script.  Nested so it shares VmExecutor's
  // friendship with Interp (a nested class has the access rights of any other
  // member of the enclosing class).
  struct Run;
};

}  // namespace tcl

#endif  // SRC_TCL_VM_H_
