#include "src/tcl/compiler.h"

#include <algorithm>
#include <cctype>
#include <unordered_map>
#include <utility>

#include "src/tcl/list.h"
#include "src/tcl/utils.h"

namespace tcl {
namespace {

// Expression stack depth limit: expressions needing more slots bail to the
// canonical engine (which recurses instead of using an explicit stack).
constexpr int kMaxExprStack = 64;

// ---------------------------------------------------------------------------
// Numeric kernels shared by constant folding and the runtime evaluator.
// These mirror the int/double arms of ExprParser::ApplyBinary / ParseUnary
// exactly; std::nullopt means "the canonical engine must produce the result
// (or error message) for this input".

std::optional<NumVal> ApplyUnaryNum(char op, const NumVal& v) {
  if (v.is_str) {
    return std::nullopt;  // NonNumeric / ParseBool handling: canonical.
  }
  switch (op) {
    case '-':
      return v.is_int ? NumVal::Int(-v.i) : NumVal::Dbl(-v.d);
    case '+':
      return v;
    case '!':
      return NumVal::Int(v.Truthy() ? 0 : 1);
    case '~':
      if (!v.is_int) {
        return std::nullopt;  // "can't use non-integer operand with \"~\""
      }
      return NumVal::Int(~v.i);
  }
  return std::nullopt;
}

std::optional<NumVal> ApplyBinaryNum(BinOp op, const NumVal& lhs, const NumVal& rhs) {
  if (lhs.is_str || rhs.is_str) {
    // Only equality is defined on strings here.  The canonical engine
    // compares AsComparableString() -- the original spelling when there is
    // one.  Two cases are exact without spellings:
    //   * both operands strings: compare the strings themselves;
    //   * one string, one numeric: never equal, because any numeric value's
    //     spelling (original or reprinted) parses as a number while a string
    //     operand by definition does not.
    // Everything else (relational <, <=, ... included) bails out.
    if (op != BinOp::kEq && op != BinOp::kNe) {
      return std::nullopt;
    }
    bool equal = lhs.is_str && rhs.is_str && lhs.s == rhs.s;
    return NumVal::Int((op == BinOp::kEq) == equal ? 1 : 0);
  }
  switch (op) {
    case BinOp::kMod:
    case BinOp::kShl:
    case BinOp::kShr:
    case BinOp::kBitAnd:
    case BinOp::kBitOr:
    case BinOp::kBitXor: {
      if (!lhs.is_int || !rhs.is_int) {
        return std::nullopt;  // "can't use non-integer operand with ..."
      }
      int64_t a = lhs.i;
      int64_t b = rhs.i;
      switch (op) {
        case BinOp::kMod: {
          if (b == 0) {
            return std::nullopt;  // "divide by zero"
          }
          // Tcl defines % so the remainder has the sign of the divisor.
          int64_t rem = a % b;
          if (rem != 0 && ((rem < 0) != (b < 0))) {
            rem += b;
          }
          return NumVal::Int(rem);
        }
        case BinOp::kShl:
          return NumVal::Int(static_cast<int64_t>(static_cast<uint64_t>(a)
                                                  << (static_cast<uint64_t>(b) & 63)));
        case BinOp::kShr:
          return NumVal::Int(a >> (static_cast<uint64_t>(b) & 63));
        case BinOp::kBitAnd:
          return NumVal::Int(a & b);
        case BinOp::kBitOr:
          return NumVal::Int(a | b);
        default:
          return NumVal::Int(a ^ b);
      }
    }
    case BinOp::kLt:
    case BinOp::kGt:
    case BinOp::kLe:
    case BinOp::kGe:
    case BinOp::kEq:
    case BinOp::kNe: {
      bool result = false;
      if (!lhs.is_int || !rhs.is_int) {
        double a = lhs.AsDouble();
        double b = rhs.AsDouble();
        result = op == BinOp::kEq   ? a == b
                 : op == BinOp::kNe ? a != b
                 : op == BinOp::kLt ? a < b
                 : op == BinOp::kGt ? a > b
                 : op == BinOp::kLe ? a <= b
                                    : a >= b;
      } else {
        int64_t a = lhs.i;
        int64_t b = rhs.i;
        result = op == BinOp::kEq   ? a == b
                 : op == BinOp::kNe ? a != b
                 : op == BinOp::kLt ? a < b
                 : op == BinOp::kGt ? a > b
                 : op == BinOp::kLe ? a <= b
                                    : a >= b;
      }
      return NumVal::Int(result ? 1 : 0);
    }
    case BinOp::kAdd:
    case BinOp::kSub:
    case BinOp::kMul:
    case BinOp::kDiv: {
      if (!lhs.is_int || !rhs.is_int) {
        double a = lhs.AsDouble();
        double b = rhs.AsDouble();
        switch (op) {
          case BinOp::kAdd:
            return NumVal::Dbl(a + b);
          case BinOp::kSub:
            return NumVal::Dbl(a - b);
          case BinOp::kMul:
            return NumVal::Dbl(a * b);
          default:
            if (b == 0.0) {
              return std::nullopt;  // "divide by zero"
            }
            return NumVal::Dbl(a / b);
        }
      }
      int64_t a = lhs.i;
      int64_t b = rhs.i;
      switch (op) {
        case BinOp::kAdd:
          return NumVal::Int(a + b);
        case BinOp::kSub:
          return NumVal::Int(a - b);
        case BinOp::kMul:
          return NumVal::Int(a * b);
        default: {
          if (b == 0) {
            return std::nullopt;  // "divide by zero"
          }
          // Tcl division truncates toward negative infinity.
          int64_t quot = a / b;
          if ((a % b != 0) && ((a < 0) != (b < 0))) {
            --quot;
          }
          return NumVal::Int(quot);
        }
      }
    }
  }
  return std::nullopt;
}

// ---------------------------------------------------------------------------
// Expression compiler: parses the compilable subset into a small AST, folds
// constants, and emits RPN ops.  Any input outside the subset (strings,
// braces, quotes, [commands], math functions, array references, non-decimal
// literals) makes compilation fail, which leaves the CompiledExpr in
// always-bail form.

struct ENode {
  enum class K { kConst, kVar, kUnary, kBinary, kAnd, kOr, kTernary };
  K k = K::kConst;
  NumVal value;            // kConst
  uint32_t slot = 0;       // kVar
  char uop = 0;            // kUnary
  BinOp bin = BinOp::kAdd; // kBinary
  std::unique_ptr<ENode> a;  // operand / lhs / condition
  std::unique_ptr<ENode> b;  // rhs / then-branch
  std::unique_ptr<ENode> c;  // else-branch
};

using NodeP = std::unique_ptr<ENode>;

class ExprCompiler {
 public:
  // `intern` maps a scalar variable name to its slot index (-1 when the name
  // cannot be served by the slot cache).
  using InternFn = int32_t (*)(void* ctx, std::string_view name);
  ExprCompiler(std::string_view text, InternFn intern, void* intern_ctx)
      : text_(text), intern_(intern), intern_ctx_(intern_ctx) {}

  bool Compile(std::vector<ExprOp>* ops) {
    NodeP root;
    if (!ParseTernary(&root)) {
      return false;
    }
    SkipSpace();
    if (pos_ < text_.size()) {
      return false;  // Trailing text: canonical reports the syntax error.
    }
    Fold(&root);
    if (MaxDepth(*root) > kMaxExprStack) {
      return false;
    }
    Emit(*root, ops);
    return true;
  }

 private:
  void SkipSpace() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  static NodeP MakeConst(NumVal v) {
    NodeP n = std::make_unique<ENode>();
    n->k = ENode::K::kConst;
    n->value = v;
    return n;
  }

  bool ParseTernary(NodeP* out) {
    if (!ParseBinary(0, out)) {
      return false;
    }
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == '?') {
      ++pos_;
      NodeP then_node;
      NodeP else_node;
      if (!ParseTernary(&then_node)) {
        return false;
      }
      SkipSpace();
      if (pos_ >= text_.size() || text_[pos_] != ':') {
        return false;
      }
      ++pos_;
      if (!ParseTernary(&else_node)) {
        return false;
      }
      NodeP n = std::make_unique<ENode>();
      n->k = ENode::K::kTernary;
      n->a = std::move(*out);
      n->b = std::move(then_node);
      n->c = std::move(else_node);
      *out = std::move(n);
    }
    return true;
  }

  struct OpInfo {
    std::string_view token;
    int precedence;
  };

  static constexpr int kMaxPrecedence = 10;

  // Identical matching rules to ExprParser::MatchBinaryOp so the compiled
  // subset tokenizes exactly like the canonical engine.
  std::string_view MatchBinaryOp(int level) {
    static const OpInfo kOps[] = {
        {"||", 0}, {"&&", 1}, {"|", 2},  {"^", 3},  {"&", 4},  {"==", 5}, {"!=", 5},
        {"<=", 6}, {">=", 6}, {"<<", 7}, {">>", 7}, {"<", 6},  {">", 6},  {"+", 8},
        {"-", 8},  {"*", 9},  {"/", 9},  {"%", 9},
    };
    SkipSpace();
    for (const OpInfo& op : kOps) {
      if (op.precedence != level) {
        continue;
      }
      if (text_.substr(pos_, op.token.size()) == op.token) {
        if (op.token == "<" || op.token == ">") {
          char next = pos_ + 1 < text_.size() ? text_[pos_ + 1] : '\0';
          if (next == '<' || next == '>' || next == '=') {
            continue;
          }
        }
        if (op.token == "|" && pos_ + 1 < text_.size() && text_[pos_ + 1] == '|') {
          continue;
        }
        if (op.token == "&" && pos_ + 1 < text_.size() && text_[pos_ + 1] == '&') {
          continue;
        }
        return op.token;
      }
    }
    return {};
  }

  static BinOp BinOpFor(std::string_view op) {
    if (op == "+") return BinOp::kAdd;
    if (op == "-") return BinOp::kSub;
    if (op == "*") return BinOp::kMul;
    if (op == "/") return BinOp::kDiv;
    if (op == "%") return BinOp::kMod;
    if (op == "<<") return BinOp::kShl;
    if (op == ">>") return BinOp::kShr;
    if (op == "&") return BinOp::kBitAnd;
    if (op == "|") return BinOp::kBitOr;
    if (op == "^") return BinOp::kBitXor;
    if (op == "<") return BinOp::kLt;
    if (op == ">") return BinOp::kGt;
    if (op == "<=") return BinOp::kLe;
    if (op == ">=") return BinOp::kGe;
    if (op == "==") return BinOp::kEq;
    return BinOp::kNe;
  }

  bool ParseBinary(int level, NodeP* out) {
    if (level > kMaxPrecedence) {
      return ParseUnary(out);
    }
    if (!ParseBinary(level + 1, out)) {
      return false;
    }
    while (true) {
      std::string_view op = MatchBinaryOp(level);
      if (op.empty()) {
        return true;
      }
      pos_ += op.size();
      NodeP rhs;
      if (!ParseBinary(level + 1, &rhs)) {
        return false;
      }
      NodeP n = std::make_unique<ENode>();
      if (op == "&&") {
        n->k = ENode::K::kAnd;
      } else if (op == "||") {
        n->k = ENode::K::kOr;
      } else {
        n->k = ENode::K::kBinary;
        n->bin = BinOpFor(op);
      }
      n->a = std::move(*out);
      n->b = std::move(rhs);
      *out = std::move(n);
    }
  }

  bool ParseUnary(NodeP* out) {
    SkipSpace();
    if (pos_ >= text_.size()) {
      return false;
    }
    char c = text_[pos_];
    if (c == '-' || c == '+' || c == '!' || c == '~') {
      ++pos_;
      if (!ParseUnary(out)) {
        return false;
      }
      NodeP n = std::make_unique<ENode>();
      n->k = ENode::K::kUnary;
      n->uop = c;
      n->a = std::move(*out);
      *out = std::move(n);
      return true;
    }
    return ParsePrimary(out);
  }

  bool ParsePrimary(NodeP* out) {
    SkipSpace();
    if (pos_ >= text_.size()) {
      return false;
    }
    char c = text_[pos_];
    if (c == '(') {
      ++pos_;
      if (!ParseTernary(out)) {
        return false;
      }
      SkipSpace();
      if (pos_ >= text_.size() || text_[pos_] != ')') {
        return false;
      }
      ++pos_;
      return true;
    }
    if (c == '$') {
      return ParseVarRef(out);
    }
    if (c == '"' || c == '{') {
      return ParseStringLiteral(out);
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      return ParseIntLiteral(out);
    }
    // Everything else -- [commands], math functions, bare booleans,
    // '.<digits>' doubles -- bails out.
    return false;
  }

  // A quoted or braced literal with no substitutions, escapes or nesting.
  // Classified exactly like the canonical primary: a spelling that parses as
  // a number is that number (so {10} == 10 stays a numeric comparison);
  // anything else becomes a string constant for == / != to consume.
  bool ParseStringLiteral(NodeP* out) {
    char open = text_[pos_];
    char close = open == '{' ? '}' : '"';
    size_t start = ++pos_;
    while (pos_ < text_.size() && text_[pos_] != close) {
      char c = text_[pos_];
      if (c == '\\' || (open == '"' && (c == '$' || c == '[')) ||
          (open == '{' && c == '{')) {
        return false;  // Substitution / escape / nesting: canonical.
      }
      ++pos_;
    }
    if (pos_ >= text_.size()) {
      return false;  // Unterminated: canonical reports the error.
    }
    std::string content(text_.substr(start, pos_ - start));
    ++pos_;
    if (std::optional<int64_t> as_int = ParseInt(content)) {
      *out = MakeConst(NumVal::Int(*as_int));
    } else if (std::optional<double> as_double = ParseDouble(content)) {
      *out = MakeConst(NumVal::Dbl(*as_double));
    } else {
      *out = MakeConst(NumVal::Str(std::move(content)));
    }
    return true;
  }

  bool ParseVarRef(NodeP* out) {
    ++pos_;  // '$'
    std::string_view name;
    if (pos_ < text_.size() && text_[pos_] == '{') {
      size_t start = ++pos_;
      while (pos_ < text_.size() && text_[pos_] != '}') {
        ++pos_;
      }
      if (pos_ >= text_.size()) {
        return false;  // Unterminated ${: canonical reports the error.
      }
      name = text_.substr(start, pos_ - start);
      ++pos_;
    } else {
      size_t start = pos_;
      while (pos_ < text_.size() && (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
                                     text_[pos_] == '_')) {
        ++pos_;
      }
      name = text_.substr(start, pos_ - start);
      if (pos_ < text_.size() && text_[pos_] == '(') {
        return false;  // Array reference: generic path.
      }
    }
    if (name.empty() || name.find('(') != std::string_view::npos ||
        name.find(')') != std::string_view::npos) {
      return false;
    }
    NodeP n = std::make_unique<ENode>();
    n->k = ENode::K::kVar;
    n->slot = static_cast<uint32_t>(intern_(intern_ctx_, name));
    *out = std::move(n);
    return true;
  }

  bool ParseIntLiteral(NodeP* out) {
    size_t start = pos_;
    while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    std::string_view token = text_.substr(start, pos_ - start);
    if (pos_ < text_.size()) {
      char next = text_[pos_];
      if (next == '.') {
        return false;  // Double literal.
      }
      if (next == 'e' || next == 'E') {
        // The canonical scanner treats e[-+]?<digits> as an exponent; any
        // such suffix makes this a double (or a syntax error) -- bail.
        size_t look = pos_ + 1;
        if (look < text_.size() && (text_[look] == '+' || text_[look] == '-')) {
          ++look;
        }
        if (look < text_.size() && std::isdigit(static_cast<unsigned char>(text_[look]))) {
          return false;
        }
      }
      if (next == 'x' || next == 'X') {
        return false;  // "0x...": hex literal.
      }
    }
    // Only canonical decimal spellings: a leading zero means octal to the
    // canonical ParseInt (strtoll base 0), and >18 digits can overflow into
    // the canonical engine's fall-back-to-double path.
    if (token.size() > 1 && token[0] == '0') {
      return false;
    }
    if (token.size() > 18) {
      return false;
    }
    int64_t value = 0;
    for (char d : token) {
      value = value * 10 + (d - '0');
    }
    *out = MakeConst(NumVal::Int(value));
    return true;
  }

  // Bottom-up constant folding using the same kernels the runtime uses; a
  // kernel bail (divide by zero, ~ on a double) keeps the node unfolded so
  // the runtime bails to the canonical engine for the exact error message.
  void Fold(NodeP* node) {
    ENode& n = **node;
    if (n.a) Fold(&n.a);
    if (n.b) Fold(&n.b);
    if (n.c) Fold(&n.c);
    auto is_const = [](const NodeP& p) { return p && p->k == ENode::K::kConst; };
    // Truthiness folds (&&, ||, ?:) need a numeric constant: a string
    // operand goes through the canonical ToBoolean ("yes", "true", or an
    // error), so such nodes stay unfolded and the runtime bails.
    auto is_num_const = [&](const NodeP& p) { return is_const(p) && !p->value.is_str; };
    switch (n.k) {
      case ENode::K::kUnary:
        if (is_const(n.a)) {
          if (std::optional<NumVal> v = ApplyUnaryNum(n.uop, n.a->value)) {
            *node = MakeConst(*v);
          }
        }
        break;
      case ENode::K::kBinary:
        if (is_const(n.a) && is_const(n.b)) {
          if (std::optional<NumVal> v = ApplyBinaryNum(n.bin, n.a->value, n.b->value)) {
            *node = MakeConst(*v);
          }
        }
        break;
      case ENode::K::kAnd:
        if (is_num_const(n.a)) {
          if (!n.a->value.Truthy()) {
            // Short-circuit: canonical skips the RHS entirely (including any
            // divide-by-zero it would raise) and yields the LHS boolean.
            *node = MakeConst(NumVal::Int(0));
          } else if (is_num_const(n.b)) {
            *node = MakeConst(NumVal::Int(n.b->value.Truthy() ? 1 : 0));
          }
        }
        break;
      case ENode::K::kOr:
        if (is_num_const(n.a)) {
          if (n.a->value.Truthy()) {
            *node = MakeConst(NumVal::Int(1));
          } else if (is_num_const(n.b)) {
            *node = MakeConst(NumVal::Int(n.b->value.Truthy() ? 1 : 0));
          }
        }
        break;
      case ENode::K::kTernary:
        if (is_num_const(n.a)) {
          // Canonical parses the untaken branch with evaluate=false, so its
          // runtime errors never surface; dropping it is exact.
          NodeP taken = n.a->value.Truthy() ? std::move(n.b) : std::move(n.c);
          *node = std::move(taken);
        }
        break;
      case ENode::K::kConst:
      case ENode::K::kVar:
        break;
    }
  }

  static int MaxDepth(const ENode& n) {
    switch (n.k) {
      case ENode::K::kConst:
      case ENode::K::kVar:
        return 1;
      case ENode::K::kUnary:
        return MaxDepth(*n.a);
      case ENode::K::kBinary:
        return std::max(MaxDepth(*n.a), MaxDepth(*n.b) + 1);
      case ENode::K::kAnd:
      case ENode::K::kOr:
        return std::max(MaxDepth(*n.a), MaxDepth(*n.b));
      case ENode::K::kTernary:
        return std::max(MaxDepth(*n.a), std::max(MaxDepth(*n.b), MaxDepth(*n.c)));
    }
    return 1;
  }

  void Emit(const ENode& n, std::vector<ExprOp>* ops) {
    switch (n.k) {
      case ENode::K::kConst: {
        ExprOp op;
        if (n.value.is_str) {
          op.k = ExprOp::K::kPushStr;
          op.s = n.value.s;
        } else if (n.value.is_int) {
          op.k = ExprOp::K::kPushInt;
          op.i = n.value.i;
        } else {
          op.k = ExprOp::K::kPushDouble;
          op.d = n.value.d;
        }
        ops->push_back(op);
        break;
      }
      case ENode::K::kVar: {
        ExprOp op;
        op.k = ExprOp::K::kLoadSlot;
        op.a = n.slot;
        ops->push_back(op);
        break;
      }
      case ENode::K::kUnary: {
        Emit(*n.a, ops);
        ExprOp op;
        op.k = ExprOp::K::kUnary;
        op.uop = n.uop;
        ops->push_back(op);
        break;
      }
      case ENode::K::kBinary: {
        Emit(*n.a, ops);
        Emit(*n.b, ops);
        ExprOp op;
        op.k = ExprOp::K::kBinary;
        op.bin = n.bin;
        ops->push_back(op);
        break;
      }
      case ENode::K::kAnd:
      case ENode::K::kOr: {
        Emit(*n.a, ops);
        size_t jump_at = ops->size();
        ExprOp op;
        op.k = n.k == ENode::K::kAnd ? ExprOp::K::kAndJump : ExprOp::K::kOrJump;
        ops->push_back(op);
        Emit(*n.b, ops);
        ExprOp boolify;
        boolify.k = ExprOp::K::kBoolify;
        ops->push_back(boolify);
        (*ops)[jump_at].a = static_cast<uint32_t>(ops->size());
        break;
      }
      case ENode::K::kTernary: {
        Emit(*n.a, ops);
        size_t cond_at = ops->size();
        ExprOp cond;
        cond.k = ExprOp::K::kCondJump;
        ops->push_back(cond);
        Emit(*n.b, ops);
        size_t jump_at = ops->size();
        ExprOp jump;
        jump.k = ExprOp::K::kJump;
        ops->push_back(jump);
        (*ops)[cond_at].a = static_cast<uint32_t>(ops->size());
        Emit(*n.c, ops);
        (*ops)[jump_at].a = static_cast<uint32_t>(ops->size());
        break;
      }
    }
  }

  std::string_view text_;
  size_t pos_ = 0;
  InternFn intern_;
  void* intern_ctx_;
};

// ---------------------------------------------------------------------------
// Script compiler.

constexpr std::string_view kWhileBodyNote = "\n    (\"while\" body line)";
constexpr std::string_view kForeachBodyNote = "\n    (\"foreach\" body line)";

class ScriptCompiler {
 public:
  explicit ScriptCompiler(std::shared_ptr<const ParsedScript> parsed) {
    out_ = std::make_shared<CompiledScript>();
    out_->parsed = std::move(parsed);
  }

  std::shared_ptr<const CompiledScript> Run() {
    EmitBody(*out_->parsed, /*live=*/true, /*parent=*/-1, /*note=*/{},
             /*reset_if_empty=*/false);
    Instr done;
    done.op = Instr::Op::kDone;
    out_->instrs.push_back(done);
    ThreadJumps();
    return out_;
  }

 private:
  std::vector<Instr>& instrs() { return out_->instrs; }

  int32_t AddConst(std::string_view s) {
    std::string key(s);
    auto it = const_ids_.find(key);
    if (it != const_ids_.end()) {
      return it->second;
    }
    int32_t id = static_cast<int32_t>(out_->constants.size());
    out_->constants.push_back(key);
    const_ids_.emplace(std::move(key), id);
    return id;
  }

  int32_t InternSlot(std::string_view name) {
    std::string key(name);
    auto it = slot_ids_.find(key);
    if (it != slot_ids_.end()) {
      return it->second;
    }
    int32_t id = static_cast<int32_t>(out_->slot_names.size());
    out_->slot_names.push_back(key);
    slot_ids_.emplace(std::move(key), id);
    return id;
  }

  // Scalar-variable slot for `name`, or -1 for names the slot cache cannot
  // serve (array references).
  int32_t SlotForName(std::string_view name) {
    if (name.find('(') != std::string_view::npos ||
        name.find(')') != std::string_view::npos) {
      return -1;
    }
    return InternSlot(name);
  }

  int32_t AddTrace(const ParsedCommand& cmd, const ParsedScript& block, int32_t parent,
                   std::string_view note) {
    TraceNode node;
    node.text = block.source.substr(cmd.src_begin, cmd.src_end - cmd.src_begin);
    node.note = std::string(note);
    node.parent = parent;
    out_->traces.push_back(std::move(node));
    return static_cast<int32_t>(out_->traces.size() - 1);
  }

  static int32_t InternSlotThunk(void* ctx, std::string_view name) {
    return static_cast<ScriptCompiler*>(ctx)->SlotForName(name);
  }

  int32_t CompileExprText(std::string_view text) {
    CompiledExpr expr;
    expr.text = std::string(text);
    ExprCompiler compiler(expr.text, &InternSlotThunk, this);
    std::vector<ExprOp> ops;
    bool ok = compiler.Compile(&ops);
    if (ok) {
      // A slot-ineligible variable inside the subset (array name with
      // parens) compiles to slot -1; treat the whole expression as
      // non-compilable instead of faulting at runtime.
      for (const ExprOp& op : ops) {
        if (op.k == ExprOp::K::kLoadSlot && static_cast<int32_t>(op.a) < 0) {
          ok = false;
          break;
        }
      }
    }
    if (ok) {
      expr.ops = std::move(ops);
      for (const ExprOp& op : expr.ops) {
        if (op.k == ExprOp::K::kPushStr ||
            (op.k == ExprOp::K::kBinary &&
             (op.bin == BinOp::kEq || op.bin == BinOp::kNe))) {
          expr.strings = true;
          break;
        }
      }
    }
    out_->exprs.push_back(std::move(expr));
    return static_cast<int32_t>(out_->exprs.size() - 1);
  }

  // Parses a literal body for inlining.  Returns nullptr when the static
  // parser rejects it (the surrounding construct then stays generic so the
  // dynamic evaluator reports errors its way).
  std::shared_ptr<const ParsedScript> ParseBlock(const std::string& body) {
    std::shared_ptr<const ParsedScript> parsed = ParseScript(body);
    if (!parsed->ok) {
      return nullptr;
    }
    return parsed;
  }

  void EmitBody(const ParsedScript& block, bool live, int32_t parent, std::string_view note,
                bool reset_if_empty) {
    if (block.commands.empty()) {
      if (reset_if_empty) {
        Instr in;
        in.op = Instr::Op::kResetResult;
        instrs().push_back(in);
      }
      return;
    }
    for (size_t i = 0; i < block.commands.size(); ++i) {
      bool cmd_live = live && i + 1 == block.commands.size();
      EmitCommand(block.commands[i], block, cmd_live, parent, note);
    }
  }

  void EmitCommand(const ParsedCommand& cmd, const ParsedScript& block, bool live,
                   int32_t parent, std::string_view note) {
    int32_t tn = AddTrace(cmd, block, parent, note);
    const std::vector<ParsedWord>& w = cmd.words;
    if (!w.empty() && w[0].is_literal) {
      const std::string& name = w[0].literal;
      if (name == "set" && TryCompileSet(cmd, tn, live)) return;
      if (name == "incr" && TryCompileIncr(cmd, tn, live)) return;
      if (name == "expr" && TryCompileExprCmd(cmd, tn, live)) return;
      if (name == "if" && TryCompileIf(cmd, tn, live)) return;
      if (name == "while" && TryCompileWhile(cmd, tn)) return;
      if (name == "for" && TryCompileFor(cmd, tn)) return;
      if (name == "foreach" && TryCompileForeach(cmd, tn)) return;
      if (name == "break" && w.size() == 1) {
        EmitSimple(Instr::Op::kBreak, cmd, tn);
        return;
      }
      if (name == "continue" && w.size() == 1) {
        EmitSimple(Instr::Op::kContinue, cmd, tn);
        return;
      }
    }
    EmitInvoke(cmd, tn, live);
  }

  void EmitInvoke(const ParsedCommand& cmd, int32_t tn, bool live) {
    Instr in;
    in.op = Instr::Op::kInvoke;
    in.live = live;
    in.pcmd = &cmd;
    in.trace = tn;
    instrs().push_back(in);
  }

  void EmitSimple(Instr::Op op, const ParsedCommand& cmd, int32_t tn) {
    Instr in;
    in.op = op;
    in.pcmd = &cmd;
    in.trace = tn;
    instrs().push_back(in);
  }

  bool TryCompileSet(const ParsedCommand& cmd, int32_t tn, bool live) {
    const std::vector<ParsedWord>& w = cmd.words;
    if ((w.size() != 2 && w.size() != 3) || !w[1].is_literal) {
      return false;
    }
    const std::string& name = w[1].literal;
    Instr in;
    in.live = live;
    in.pcmd = &cmd;
    in.trace = tn;
    in.slot = SlotForName(name);
    in.name_cidx = AddConst(name);
    if (w.size() == 2) {
      in.op = Instr::Op::kSetRead;
    } else if (w[2].is_literal) {
      in.op = Instr::Op::kSetConst;
      in.cidx = AddConst(w[2].literal);
    } else {
      in.op = Instr::Op::kSetWord;
      in.word = &w[2];
    }
    instrs().push_back(in);
    return true;
  }

  bool TryCompileIncr(const ParsedCommand& cmd, int32_t tn, bool live) {
    const std::vector<ParsedWord>& w = cmd.words;
    if ((w.size() != 2 && w.size() != 3) || !w[1].is_literal) {
      return false;
    }
    Instr in;
    in.op = Instr::Op::kIncr;
    in.live = live;
    in.pcmd = &cmd;
    in.trace = tn;
    in.slot = SlotForName(w[1].literal);
    in.name_cidx = AddConst(w[1].literal);
    if (w.size() == 3) {
      if (w[2].is_literal) {
        std::optional<int64_t> amount = ParseInt(w[2].literal);
        if (!amount) {
          // IncrCmd reports "expected integer" only after the variable
          // lookup succeeds; keep the generic path for exact error order.
          return false;
        }
        in.amount = *amount;
      } else {
        in.amount_const = false;
        in.word = &w[2];
      }
    }
    instrs().push_back(in);
    return true;
  }

  bool TryCompileExprCmd(const ParsedCommand& cmd, int32_t tn, bool live) {
    const std::vector<ParsedWord>& w = cmd.words;
    if (w.size() < 2) {
      return false;
    }
    for (size_t i = 1; i < w.size(); ++i) {
      if (!w[i].is_literal) {
        return false;
      }
    }
    std::string text = w[1].literal;
    for (size_t i = 2; i < w.size(); ++i) {
      text += ' ';
      text += w[i].literal;
    }
    Instr in;
    in.op = Instr::Op::kExprCmd;
    in.live = live;
    in.pcmd = &cmd;
    in.trace = tn;
    in.expr = CompileExprText(text);
    instrs().push_back(in);
    return true;
  }

  bool TryCompileWhile(const ParsedCommand& cmd, int32_t tn) {
    const std::vector<ParsedWord>& w = cmd.words;
    if (w.size() != 3 || !w[1].is_literal || !w[2].is_literal) {
      return false;
    }
    std::shared_ptr<const ParsedScript> body = ParseBlock(w[2].literal);
    if (!body) {
      return false;
    }
    int32_t eidx = CompileExprText(w[1].literal);

    size_t enter_at = instrs().size();
    Instr enter;
    enter.op = Instr::Op::kEnterWhile;
    enter.pcmd = &cmd;
    enter.trace = tn;
    instrs().push_back(enter);

    size_t cond_at = instrs().size();
    Instr cond;
    cond.op = Instr::Op::kCond;
    cond.expr = eidx;
    cond.trace = tn;
    cond.pop_loop_on_code = true;
    instrs().push_back(cond);

    EmitBody(*body, /*live=*/false, tn, kWhileBodyNote, /*reset_if_empty=*/false);

    Instr jump;
    jump.op = Instr::Op::kJump;
    jump.a = static_cast<uint32_t>(cond_at);
    instrs().push_back(jump);

    size_t exit_at = instrs().size();
    Instr exit;
    exit.op = Instr::Op::kLoopExit;
    instrs().push_back(exit);

    instrs()[enter_at].b = static_cast<uint32_t>(exit_at);
    instrs()[cond_at].a = static_cast<uint32_t>(exit_at);
    out_->blocks.push_back(std::move(body));
    return true;
  }

  // for {init} {test} {next} {body}, mirroring ForCmd's structure exactly:
  //
  //   enter-for            guard + count; generic bail skips past exit
  //   <init body>          no loop frame yet: break/continue/error escape
  //                        the construct, exactly as ForCmd returns
  //                        Eval(init)'s completion code
  //   loop-push            brk -> loop-exit, cont -> next_at
  //   cond_at: cond        pop_loop_on_code (test codes escape the loop)
  //   <body>               break -> loop-exit, continue -> next_at
  //   next_at: loop-pop    the next-script runs UNFRAMED: ForCmd propagates
  //   <next body>          every non-ok code out of the loop, so an inline
  //   loop-push            break/continue here must reach the enclosing
  //   jump cond_at         construct, not this loop's own frame
  //   exit_at: loop-exit
  //
  // No trace notes anywhere: ForCmd adds no "(\"for\" ...)" errorInfo lines,
  // so errors chain straight from the failing command to the for command.
  bool TryCompileFor(const ParsedCommand& cmd, int32_t tn) {
    const std::vector<ParsedWord>& w = cmd.words;
    if (w.size() != 5 || !w[1].is_literal || !w[2].is_literal || !w[3].is_literal ||
        !w[4].is_literal) {
      return false;
    }
    std::shared_ptr<const ParsedScript> init = ParseBlock(w[1].literal);
    std::shared_ptr<const ParsedScript> next = ParseBlock(w[3].literal);
    std::shared_ptr<const ParsedScript> body = ParseBlock(w[4].literal);
    if (!init || !next || !body) {
      return false;
    }
    int32_t eidx = CompileExprText(w[2].literal);

    size_t enter_at = instrs().size();
    Instr enter;
    enter.op = Instr::Op::kEnterFor;
    enter.pcmd = &cmd;
    enter.trace = tn;
    instrs().push_back(enter);

    EmitBody(*init, /*live=*/false, tn, /*note=*/{}, /*reset_if_empty=*/false);

    size_t push_at = instrs().size();
    Instr push;
    push.op = Instr::Op::kLoopPush;
    instrs().push_back(push);

    size_t cond_at = instrs().size();
    Instr cond;
    cond.op = Instr::Op::kCond;
    cond.expr = eidx;
    cond.trace = tn;
    cond.pop_loop_on_code = true;
    instrs().push_back(cond);

    EmitBody(*body, /*live=*/false, tn, /*note=*/{}, /*reset_if_empty=*/false);

    size_t next_at = instrs().size();
    Instr pop;
    pop.op = Instr::Op::kLoopPop;
    instrs().push_back(pop);

    EmitBody(*next, /*live=*/false, tn, /*note=*/{}, /*reset_if_empty=*/false);

    size_t repush_at = instrs().size();
    instrs().push_back(push);

    Instr jump;
    jump.op = Instr::Op::kJump;
    jump.a = static_cast<uint32_t>(cond_at);
    instrs().push_back(jump);

    size_t exit_at = instrs().size();
    Instr exit;
    exit.op = Instr::Op::kLoopExit;
    instrs().push_back(exit);

    instrs()[enter_at].b = static_cast<uint32_t>(exit_at);
    instrs()[cond_at].a = static_cast<uint32_t>(exit_at);
    for (size_t at : {push_at, repush_at}) {
      instrs()[at].a = static_cast<uint32_t>(next_at);
      instrs()[at].b = static_cast<uint32_t>(exit_at);
    }
    out_->blocks.push_back(std::move(init));
    out_->blocks.push_back(std::move(next));
    out_->blocks.push_back(std::move(body));
    return true;
  }

  bool TryCompileForeach(const ParsedCommand& cmd, int32_t tn) {
    const std::vector<ParsedWord>& w = cmd.words;
    // The value list (w[2]) may need runtime substitution; the name list and
    // body must be literal.
    if (w.size() != 4 || !w[1].is_literal || !w[3].is_literal) {
      return false;
    }
    std::string error;
    std::optional<std::vector<std::string>> names = SplitList(w[1].literal, &error);
    if (!names || names->empty()) {
      return false;  // Generic path reproduces the varList errors.
    }
    std::shared_ptr<const ParsedScript> body = ParseBlock(w[3].literal);
    if (!body) {
      return false;
    }
    ForeachPlan plan;
    plan.names = std::move(*names);
    for (const std::string& name : plan.names) {
      plan.name_slots.push_back(SlotForName(name));
    }
    plan.list_word = &w[2];
    if (w[2].is_literal) {
      std::optional<std::vector<std::string>> values = SplitList(w[2].literal, &error);
      if (!values) {
        return false;  // Generic path reproduces the malformed-list error.
      }
      plan.const_values = std::move(*values);
    }
    int32_t fe = static_cast<int32_t>(out_->foreaches.size());
    out_->foreaches.push_back(std::move(plan));

    size_t enter_at = instrs().size();
    Instr enter;
    enter.op = Instr::Op::kEnterForeach;
    enter.pcmd = &cmd;
    enter.trace = tn;
    enter.fe = fe;
    instrs().push_back(enter);

    size_t step_at = instrs().size();
    Instr step;
    step.op = Instr::Op::kForeachStep;
    step.fe = fe;
    step.trace = tn;
    instrs().push_back(step);

    EmitBody(*body, /*live=*/false, tn, kForeachBodyNote, /*reset_if_empty=*/false);

    Instr jump;
    jump.op = Instr::Op::kJump;
    jump.a = static_cast<uint32_t>(step_at);
    instrs().push_back(jump);

    size_t exit_at = instrs().size();
    Instr exit;
    exit.op = Instr::Op::kLoopExit;
    instrs().push_back(exit);

    instrs()[enter_at].b = static_cast<uint32_t>(exit_at);
    out_->blocks.push_back(std::move(body));
    return true;
  }

  bool TryCompileIf(const ParsedCommand& cmd, int32_t tn, bool live) {
    const std::vector<ParsedWord>& w = cmd.words;
    if (w.size() < 3) {
      return false;
    }
    for (const ParsedWord& word : w) {
      if (!word.is_literal) {
        return false;  // Keywords/conditions/bodies must be known statically.
      }
    }
    // Mirror IfCmd's clause walk exactly (including its quirk of treating a
    // trailing body without an "else" keyword as the else branch).
    struct Clause {
      const std::string* cond;
      const std::string* body;
    };
    std::vector<Clause> clauses;
    const std::string* else_body = nullptr;
    size_t i = 1;
    while (true) {
      if (i >= w.size()) {
        return false;  // "no expression after..." -> generic.
      }
      const std::string* cond = &w[i].literal;
      ++i;
      if (i < w.size() && w[i].literal == "then") {
        ++i;
      }
      if (i >= w.size()) {
        return false;  // "no script following..." -> generic.
      }
      clauses.push_back({cond, &w[i].literal});
      ++i;
      if (i >= w.size()) {
        break;  // No else branch.
      }
      if (w[i].literal == "elseif") {
        ++i;
        continue;
      }
      if (w[i].literal == "else") {
        ++i;
        if (i >= w.size()) {
          return false;  // "no script following \"else\"..." -> generic.
        }
      }
      else_body = &w[i].literal;
      break;
    }

    // All bodies must parse statically.
    std::vector<std::shared_ptr<const ParsedScript>> bodies;
    for (const Clause& clause : clauses) {
      std::shared_ptr<const ParsedScript> parsed = ParseBlock(*clause.body);
      if (!parsed) {
        return false;
      }
      bodies.push_back(std::move(parsed));
    }
    std::shared_ptr<const ParsedScript> else_parsed;
    if (else_body != nullptr) {
      else_parsed = ParseBlock(*else_body);
      if (!else_parsed) {
        return false;
      }
    }

    size_t enter_at = instrs().size();
    Instr enter;
    enter.op = Instr::Op::kEnterIf;
    enter.pcmd = &cmd;
    enter.trace = tn;
    instrs().push_back(enter);

    std::vector<size_t> end_jumps;
    for (size_t ci = 0; ci < clauses.size(); ++ci) {
      int32_t eidx = CompileExprText(*clauses[ci].cond);
      size_t cond_at = instrs().size();
      Instr cond;
      cond.op = Instr::Op::kCond;
      cond.expr = eidx;
      cond.trace = tn;
      instrs().push_back(cond);

      EmitBody(*bodies[ci], live, tn, /*note=*/{}, /*reset_if_empty=*/true);
      out_->blocks.push_back(std::move(bodies[ci]));

      end_jumps.push_back(instrs().size());
      Instr jump;
      jump.op = Instr::Op::kJump;
      instrs().push_back(jump);

      instrs()[cond_at].a = static_cast<uint32_t>(instrs().size());
    }
    if (else_parsed) {
      EmitBody(*else_parsed, live, tn, /*note=*/{}, /*reset_if_empty=*/true);
      out_->blocks.push_back(std::move(else_parsed));
    } else {
      // All conditions false and no else: IfCmd resets the result.
      Instr reset;
      reset.op = Instr::Op::kResetResult;
      instrs().push_back(reset);
    }
    size_t end_at = instrs().size();
    for (size_t at : end_jumps) {
      instrs()[at].a = static_cast<uint32_t>(end_at);
    }
    instrs()[enter_at].a = static_cast<uint32_t>(end_at);
    return true;
  }

  // Jump threading: retarget any jump that lands on an unconditional kJump
  // to that jump's destination (loops over chains, bounded by instr count).
  void ThreadJumps() {
    std::vector<Instr>& ins = instrs();
    auto resolve = [&](uint32_t target) {
      size_t hops = 0;
      while (hops++ < ins.size() && target < ins.size() &&
             ins[target].op == Instr::Op::kJump) {
        target = ins[target].a;
      }
      return target;
    };
    for (Instr& in : ins) {
      switch (in.op) {
        case Instr::Op::kJump:
        case Instr::Op::kCond:
        case Instr::Op::kEnterIf:
          in.a = resolve(in.a);
          break;
        default:
          break;
      }
    }
  }

  std::shared_ptr<CompiledScript> out_;
  std::unordered_map<std::string, int32_t> slot_ids_;
  std::unordered_map<std::string, int32_t> const_ids_;
};

}  // namespace

std::string NumVal::Print() const { return is_int ? FormatInt(i) : FormatDouble(d); }

std::optional<NumVal> RunCompiledExpr(const CompiledExpr& expr, ExprSlotLoadFn load, void* ctx) {
  if (expr.ops.empty()) {
    return std::nullopt;
  }
  NumVal stack[kMaxExprStack];
  int sp = 0;
  size_t ip = 0;
  const size_t count = expr.ops.size();
  while (ip < count) {
    const ExprOp& op = expr.ops[ip];
    switch (op.k) {
      case ExprOp::K::kPushInt:
        stack[sp++] = NumVal::Int(op.i);
        break;
      case ExprOp::K::kPushDouble:
        stack[sp++] = NumVal::Dbl(op.d);
        break;
      case ExprOp::K::kPushStr:
        stack[sp++] = NumVal::Str(op.s);
        break;
      case ExprOp::K::kLoadSlot: {
        const std::string* value = load != nullptr ? load(ctx, op.a) : nullptr;
        if (value == nullptr) {
          return std::nullopt;
        }
        // Classify exactly like Value::Classify: int first, then double.  A
        // string value feeds == / != in a strings-mode program; in a
        // numeric-only program no op could consume it, so bail immediately.
        if (std::optional<int64_t> as_int = ParseInt(*value)) {
          stack[sp++] = NumVal::Int(*as_int);
        } else if (std::optional<double> as_double = ParseDouble(*value)) {
          stack[sp++] = NumVal::Dbl(*as_double);
        } else if (expr.strings) {
          stack[sp++] = NumVal::Str(*value);
        } else {
          return std::nullopt;
        }
        break;
      }
      case ExprOp::K::kUnary: {
        std::optional<NumVal> v = ApplyUnaryNum(op.uop, stack[sp - 1]);
        if (!v) {
          return std::nullopt;
        }
        stack[sp - 1] = *v;
        break;
      }
      case ExprOp::K::kBinary: {
        std::optional<NumVal> v = ApplyBinaryNum(op.bin, stack[sp - 2], stack[sp - 1]);
        if (!v) {
          return std::nullopt;
        }
        --sp;
        stack[sp - 1] = *v;
        break;
      }
      case ExprOp::K::kAndJump: {
        NumVal v = stack[--sp];
        if (v.is_str) {
          return std::nullopt;  // ToBoolean("yes"/"true"/error): canonical.
        }
        if (!v.Truthy()) {
          stack[sp++] = NumVal::Int(0);
          ip = op.a;
          continue;
        }
        break;
      }
      case ExprOp::K::kOrJump: {
        NumVal v = stack[--sp];
        if (v.is_str) {
          return std::nullopt;
        }
        if (v.Truthy()) {
          stack[sp++] = NumVal::Int(1);
          ip = op.a;
          continue;
        }
        break;
      }
      case ExprOp::K::kBoolify:
        if (stack[sp - 1].is_str) {
          return std::nullopt;
        }
        stack[sp - 1] = NumVal::Int(stack[sp - 1].Truthy() ? 1 : 0);
        break;
      case ExprOp::K::kCondJump: {
        NumVal v = stack[--sp];
        if (v.is_str) {
          return std::nullopt;
        }
        if (!v.Truthy()) {
          ip = op.a;
          continue;
        }
        break;
      }
      case ExprOp::K::kJump:
        ip = op.a;
        continue;
    }
    ++ip;
  }
  if (stack[0].is_str) {
    // A whole-expression string result (`expr {"abc"}`) prints, booleanizes
    // and errors by canonical rules; strings only flow internally here.
    return std::nullopt;
  }
  return stack[0];
}

std::shared_ptr<const CompiledScript> CompileScript(std::shared_ptr<const ParsedScript> parsed) {
  ScriptCompiler compiler(std::move(parsed));
  return compiler.Run();
}

namespace {

std::string EscapeForListing(std::string_view text, size_t limit = 40) {
  std::string out;
  for (char c : text) {
    if (out.size() >= limit) {
      out += "...";
      break;
    }
    if (c == '\n') {
      out += "\\n";
    } else if (c == '\t') {
      out += "\\t";
    } else {
      out.push_back(c);
    }
  }
  return out;
}

std::string DisassembleExpr(const CompiledScript& script, int32_t idx) {
  const CompiledExpr& expr = script.exprs[idx];
  if (expr.ops.empty()) {
    return "canonical \"" + EscapeForListing(expr.text) + "\"";
  }
  std::string out;
  for (const ExprOp& op : expr.ops) {
    if (!out.empty()) {
      out += "; ";
    }
    switch (op.k) {
      case ExprOp::K::kPushInt:
        out += "push-int " + FormatInt(op.i);
        break;
      case ExprOp::K::kPushDouble:
        out += "push-double " + FormatDouble(op.d);
        break;
      case ExprOp::K::kPushStr:
        out += "push-str \"" + EscapeForListing(op.s) + "\"";
        break;
      case ExprOp::K::kLoadSlot:
        out += "load-slot " + std::to_string(op.a) + "(" + script.slot_names[op.a] + ")";
        break;
      case ExprOp::K::kUnary:
        out += std::string("unary ") + op.uop;
        break;
      case ExprOp::K::kBinary: {
        static constexpr std::string_view kNames[] = {
            "add", "sub", "mul", "div", "mod", "shl", "shr",
            "bit-and", "bit-or", "bit-xor",
            "lt", "gt", "le", "ge", "eq", "ne",
        };
        out += std::string(kNames[static_cast<size_t>(op.bin)]);
        break;
      }
      case ExprOp::K::kAndJump:
        out += "and-jump ->" + std::to_string(op.a);
        break;
      case ExprOp::K::kOrJump:
        out += "or-jump ->" + std::to_string(op.a);
        break;
      case ExprOp::K::kBoolify:
        out += "boolify";
        break;
      case ExprOp::K::kCondJump:
        out += "cond-jump ->" + std::to_string(op.a);
        break;
      case ExprOp::K::kJump:
        out += "jump ->" + std::to_string(op.a);
        break;
    }
  }
  return out;
}

}  // namespace

std::string Disassemble(const CompiledScript& script) {
  std::string out;
  auto slot_suffix = [&](const Instr& in) {
    std::string text;
    if (in.slot >= 0) {
      text = " slot=" + std::to_string(in.slot) + "(" + script.slot_names[in.slot] + ")";
    } else if (in.name_cidx >= 0) {
      text = " name=\"" + EscapeForListing(script.constants[in.name_cidx]) + "\"";
    }
    return text;
  };
  for (size_t i = 0; i < script.instrs.size(); ++i) {
    const Instr& in = script.instrs[i];
    out += std::to_string(i) + ": ";
    switch (in.op) {
      case Instr::Op::kInvoke:
        out += "invoke \"" +
               EscapeForListing(in.pcmd != nullptr && !in.pcmd->words.empty() &&
                                        in.pcmd->words[0].is_literal
                                    ? std::string_view(in.pcmd->words[0].literal)
                                    : std::string_view("?")) +
               "\"";
        break;
      case Instr::Op::kSetConst:
        out += "set-const" + slot_suffix(in) + " value=\"" +
               EscapeForListing(script.constants[in.cidx]) + "\"";
        break;
      case Instr::Op::kSetWord:
        out += "set-word" + slot_suffix(in);
        break;
      case Instr::Op::kSetRead:
        out += "set-read" + slot_suffix(in);
        break;
      case Instr::Op::kIncr:
        out += "incr" + slot_suffix(in);
        if (in.amount_const) {
          out += " amount=" + FormatInt(in.amount);
        } else {
          out += " amount=<word>";
        }
        break;
      case Instr::Op::kExprCmd:
        out += "expr {" + DisassembleExpr(script, in.expr) + "}";
        break;
      case Instr::Op::kEnterIf:
        out += "enter-if end=" + std::to_string(in.a);
        break;
      case Instr::Op::kEnterWhile:
        out += "enter-while exit=" + std::to_string(in.b);
        break;
      case Instr::Op::kEnterFor:
        out += "enter-for exit=" + std::to_string(in.b);
        break;
      case Instr::Op::kLoopPush:
        out += "loop-push cont=" + std::to_string(in.a) + " exit=" + std::to_string(in.b);
        break;
      case Instr::Op::kLoopPop:
        out += "loop-pop";
        break;
      case Instr::Op::kEnterForeach: {
        const ForeachPlan& plan = script.foreaches[in.fe];
        out += "enter-foreach exit=" + std::to_string(in.b) + " names={";
        for (size_t j = 0; j < plan.names.size(); ++j) {
          if (j > 0) {
            out += ' ';
          }
          out += plan.names[j];
        }
        out += "}";
        break;
      }
      case Instr::Op::kForeachStep:
        out += "foreach-step";
        break;
      case Instr::Op::kCond:
        out += "cond {" + DisassembleExpr(script, in.expr) + "} false->" + std::to_string(in.a);
        break;
      case Instr::Op::kJump:
        out += "jump ->" + std::to_string(in.a);
        break;
      case Instr::Op::kLoopExit:
        out += "loop-exit";
        break;
      case Instr::Op::kBreak:
        out += "break";
        break;
      case Instr::Op::kContinue:
        out += "continue";
        break;
      case Instr::Op::kResetResult:
        out += "reset-result";
        break;
      case Instr::Op::kDone:
        out += "done";
        break;
    }
    if (in.live) {
      out += " (live)";
    }
    out += '\n';
  }
  return out;
}

}  // namespace tcl
