#include "src/tcl/utils.h"

#include "src/tcl/types.h"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace tcl {
namespace {

std::string_view TrimWhitespace(std::string_view text) {
  size_t begin = 0;
  while (begin < text.size() && std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  size_t end = text.size();
  while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return text.substr(begin, end - begin);
}

}  // namespace

std::optional<int64_t> ParseInt(std::string_view text) {
  std::string_view trimmed = TrimWhitespace(text);
  if (trimmed.empty()) {
    return std::nullopt;
  }
  std::string buf(trimmed);
  errno = 0;
  char* end = nullptr;
  long long value = std::strtoll(buf.c_str(), &end, 0);
  if (errno == ERANGE || end != buf.c_str() + buf.size() || end == buf.c_str()) {
    return std::nullopt;
  }
  return static_cast<int64_t>(value);
}

std::optional<double> ParseDouble(std::string_view text) {
  std::string_view trimmed = TrimWhitespace(text);
  if (trimmed.empty()) {
    return std::nullopt;
  }
  std::string buf(trimmed);
  errno = 0;
  char* end = nullptr;
  double value = std::strtod(buf.c_str(), &end);
  if (end != buf.c_str() + buf.size() || end == buf.c_str()) {
    return std::nullopt;
  }
  return value;
}

std::optional<bool> ParseBool(std::string_view text) {
  std::string lowered = ToLowerAscii(TrimWhitespace(text));
  if (lowered == "true" || lowered == "yes" || lowered == "on" || lowered == "1" ||
      lowered == "t" || lowered == "y") {
    return true;
  }
  if (lowered == "false" || lowered == "no" || lowered == "off" || lowered == "0" ||
      lowered == "f" || lowered == "n") {
    return false;
  }
  if (std::optional<int64_t> as_int = ParseInt(lowered)) {
    return *as_int != 0;
  }
  if (std::optional<double> as_double = ParseDouble(lowered)) {
    return *as_double != 0.0;
  }
  return std::nullopt;
}

std::string FormatInt(int64_t value) { return std::to_string(value); }

std::string FormatDouble(double value) {
  if (std::isnan(value)) {
    return "NaN";
  }
  if (std::isinf(value)) {
    return value > 0 ? "Inf" : "-Inf";
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.12g", value);
  // Make sure the result still looks like a double so that round-tripping
  // through the string representation preserves the type.
  if (std::strpbrk(buf, ".eEnN") == nullptr) {
    std::strcat(buf, ".0");
  }
  return buf;
}

bool StringMatch(std::string_view pattern, std::string_view text) {
  size_t p = 0;
  size_t t = 0;
  while (p < pattern.size()) {
    char pc = pattern[p];
    if (pc == '*') {
      // Collapse consecutive stars; then try every suffix of `text`.
      while (p < pattern.size() && pattern[p] == '*') {
        ++p;
      }
      if (p == pattern.size()) {
        return true;
      }
      for (size_t skip = t; skip <= text.size(); ++skip) {
        if (StringMatch(pattern.substr(p), text.substr(skip))) {
          return true;
        }
      }
      return false;
    }
    if (t >= text.size()) {
      return false;
    }
    if (pc == '?') {
      ++p;
      ++t;
      continue;
    }
    if (pc == '[') {
      ++p;
      bool matched = false;
      bool negate = false;
      if (p < pattern.size() && (pattern[p] == '^' || pattern[p] == '!')) {
        negate = true;
        ++p;
      }
      char ch = text[t];
      while (p < pattern.size() && pattern[p] != ']') {
        char lo = pattern[p];
        char hi = lo;
        if (p + 2 < pattern.size() && pattern[p + 1] == '-' && pattern[p + 2] != ']') {
          hi = pattern[p + 2];
          p += 3;
        } else {
          ++p;
        }
        if (lo > hi) {
          std::swap(lo, hi);
        }
        if (ch >= lo && ch <= hi) {
          matched = true;
        }
      }
      if (p < pattern.size()) {
        ++p;  // Skip ']'.
      }
      if (matched == negate) {
        return false;
      }
      ++t;
      continue;
    }
    if (pc == '\\' && p + 1 < pattern.size()) {
      ++p;
      pc = pattern[p];
    }
    if (pc != text[t]) {
      return false;
    }
    ++p;
    ++t;
  }
  return t == text.size();
}

std::string ToLowerAscii(std::string_view text) {
  std::string out(text);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

std::string ToUpperAscii(std::string_view text) {
  std::string out(text);
  for (char& c : out) {
    c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  }
  return out;
}

const char* CodeName(Code code) {
  switch (code) {
    case Code::kOk:
      return "ok";
    case Code::kError:
      return "error";
    case Code::kReturn:
      return "return";
    case Code::kBreak:
      return "break";
    case Code::kContinue:
      return "continue";
  }
  return "?";
}

}  // namespace tcl
