// The Tcl command parser: splits scripts into commands and words, performing
// the $variable, [command] and backslash substitutions of Figures 1-5 of the
// 1991 Tk paper (and the 1990 Tcl paper).
//
// These functions are the engine behind Interp::Eval; they are exposed so
// that the expr engine can reuse the same substitution rules and so tests
// can probe the parser in isolation.

#ifndef SRC_TCL_PARSER_H_
#define SRC_TCL_PARSER_H_

#include <string>
#include <string_view>
#include <vector>

#include "src/tcl/types.h"

namespace tcl {

class Interp;

// Evaluates a script: a sequence of commands separated by newlines or
// semicolons.  If `terminator` is ']' the script is a nested [command]
// substitution and evaluation stops at the matching unquoted ']'; pass '\0'
// for top-level scripts.  `*pos` is advanced past everything consumed
// (including the terminator, when present).
Code EvalScript(Interp& interp, std::string_view script, char terminator, size_t* pos);

// Appends the backslash sequence starting at script[*pos] (which must be a
// '\\') to `out`, advancing *pos past it.  Implements \n \t \r \b \f \v \e,
// octal \ddd, hex \xhh, backslash-newline -> space, and identity for
// everything else.
void BackslashSubst(std::string_view script, size_t* pos, std::string* out);

// Substitutes a $variable reference starting at script[*pos] (which must be
// the '$').  Supports $name, ${name} and $name(index) with substitutions
// performed inside the index.  Appends the value to `out`.
Code SubstVar(Interp& interp, std::string_view script, size_t* pos, std::string* out);

// Performs a full substitution pass over `text` (as the `subst` command and
// double-quoted words do) and returns the result in `out`.
Code SubstString(Interp& interp, std::string_view text, std::string* out);

// Parses a braced word whose opening '{' is at script[*pos].  On success the
// raw contents (with backslash-newline collapsed) are stored in `out` and
// *pos points just past the closing '}'.
Code ParseBracedWord(Interp& interp, std::string_view script, size_t* pos, std::string* out);

}  // namespace tcl

#endif  // SRC_TCL_PARSER_H_
