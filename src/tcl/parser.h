// The Tcl command parser: splits scripts into commands and words, performing
// the $variable, [command] and backslash substitutions of Figures 1-5 of the
// 1991 Tk paper (and the 1990 Tcl paper).
//
// These functions are the engine behind Interp::Eval; they are exposed so
// that the expr engine can reuse the same substitution rules and so tests
// can probe the parser in isolation.

#ifndef SRC_TCL_PARSER_H_
#define SRC_TCL_PARSER_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/tcl/types.h"

namespace tcl {

class Interp;

// ---------------------------------------------------------------------------
// Pre-parsed scripts (the eval cache's payload).
//
// Tcl's tokenization is context-independent: word boundaries, brace/bracket
// nesting and substitution spans depend only on the script text, never on
// variable values.  ParseScript exploits that to tokenize a script once into
// a ParsedScript; EvalParsed then executes it any number of times performing
// only the per-execution work (variable/command substitution and dispatch).
// Scripts the static parser cannot prove well-formed fall back to the
// classic interleaved EvalScript path so error reporting is unchanged.

// One piece of a word that needs per-execution substitution.
struct WordPart {
  enum class Kind {
    kText,        // Literal text; backslash sequences already resolved.
    kVar,         // Simple $name or ${name} or $name(literal-index): `text`
                  //   holds the final variable name, looked up directly.
    kComplexVar,  // $name(index-with-substitutions): `text` holds the raw
                  //   source span starting at '$'; re-run SubstVar on it.
    kCommand,     // [script]: `text` holds the inner script, evaluated via
                  //   Interp::Eval (which consults the cache recursively).
  };
  Kind kind = Kind::kText;
  std::string text;
};

// One word of a command: either a fully literal string (braced words, and
// bare/quoted words without substitutions) or a list of parts concatenated
// per execution.
struct ParsedWord {
  bool is_literal = true;
  std::string literal;           // Valid when is_literal.
  std::vector<WordPart> parts;   // Valid otherwise.
};

struct ParsedCommand {
  std::vector<ParsedWord> words;
  // Span of the command in ParsedScript::source (already trimmed of trailing
  // separators), used for "while executing" error traces.
  size_t src_begin = 0;
  size_t src_end = 0;
};

struct ParsedScript {
  std::string source;  // Owned copy of the script text.
  std::vector<ParsedCommand> commands;
  // False when the static parser could not tokenize the script (unbalanced
  // braces/brackets/quotes, ...).  Such scripts always take the dynamic
  // EvalScript path, which reproduces the classic error behaviour.
  bool ok = false;
};

// Statically tokenizes `script`.  Never touches an Interp and performs no
// substitution; on any structural problem the result has ok == false.
std::shared_ptr<const ParsedScript> ParseScript(std::string_view script);

// Executes a pre-parsed script against `interp`.  Semantically equivalent to
// EvalScript(interp, parsed.source, '\0', &pos) for scripts with ok == true.
Code EvalParsed(Interp& interp, const ParsedScript& parsed);

// Per-execution word assembly shared by EvalParsed and the bytecode VM:
// substitutes one non-literal word's parts into `out` (appended), or all of
// a command's words into `words`.  On a non-kOk code the interp result /
// error state is exactly what the classic evaluator would have left.
Code AssembleWordParts(Interp& interp, const ParsedWord& word, std::string* out);
Code AssembleCommandWords(Interp& interp, const ParsedCommand& cmd,
                          std::vector<std::string>* words);

// Evaluates a script: a sequence of commands separated by newlines or
// semicolons.  If `terminator` is ']' the script is a nested [command]
// substitution and evaluation stops at the matching unquoted ']'; pass '\0'
// for top-level scripts.  `*pos` is advanced past everything consumed
// (including the terminator, when present).
Code EvalScript(Interp& interp, std::string_view script, char terminator, size_t* pos);

// Appends the backslash sequence starting at script[*pos] (which must be a
// '\\') to `out`, advancing *pos past it.  Implements \n \t \r \b \f \v \e,
// octal \ddd, hex \xhh, backslash-newline -> space, and identity for
// everything else.
void BackslashSubst(std::string_view script, size_t* pos, std::string* out);

// Substitutes a $variable reference starting at script[*pos] (which must be
// the '$').  Supports $name, ${name} and $name(index) with substitutions
// performed inside the index.  Appends the value to `out`.
Code SubstVar(Interp& interp, std::string_view script, size_t* pos, std::string* out);

// Performs a full substitution pass over `text` (as the `subst` command and
// double-quoted words do) and returns the result in `out`.
Code SubstString(Interp& interp, std::string_view text, std::string* out);

// Parses a braced word whose opening '{' is at script[*pos].  On success the
// raw contents (with backslash-newline collapsed) are stored in `out` and
// *pos points just past the closing '}'.
Code ParseBracedWord(Interp& interp, std::string_view script, size_t* pos, std::string* out);

}  // namespace tcl

#endif  // SRC_TCL_PARSER_H_
