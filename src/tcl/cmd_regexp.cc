// The regexp and regsub commands (present in Tcl since 6.0) plus the
// Tcl-level `trace` command for variable traces.

#include "src/tcl/interp.h"
#include "src/tcl/list.h"
#include "src/tcl/regexp.h"
#include "src/tcl/utils.h"

namespace tcl {
namespace {

// regexp ?-nocase? ?-indices? exp string ?matchVar? ?subVar subVar ...?
Code RegexpCmd(Interp& interp, std::vector<std::string>& args) {
  size_t i = 1;
  bool nocase = false;
  bool indices = false;
  while (i < args.size() && !args[i].empty() && args[i][0] == '-') {
    if (args[i] == "-nocase") {
      nocase = true;
    } else if (args[i] == "-indices") {
      indices = true;
    } else if (args[i] == "--") {
      ++i;
      break;
    } else {
      return interp.Error("bad switch \"" + args[i] + "\": must be -indices, -nocase, or --");
    }
    ++i;
  }
  if (args.size() - i < 2) {
    return interp.WrongNumArgs(
        "regexp ?switches? exp string ?matchVar? ?subMatchVar subMatchVar ...?");
  }
  std::string error;
  std::unique_ptr<Regexp> re = Regexp::Compile(args[i], nocase, &error);
  if (re == nullptr) {
    return interp.Error("couldn't compile regular expression pattern: " + error);
  }
  const std::string& subject = args[i + 1];
  std::vector<RegexpRange> ranges;
  bool matched = re->Search(subject, 0, &ranges);
  if (matched) {
    // Bind match variables.
    size_t var_index = i + 2;
    for (size_t r = 0; r < ranges.size() && var_index < args.size(); ++r, ++var_index) {
      std::string value;
      if (ranges[r].begin >= 0) {
        if (indices) {
          value = FormatInt(ranges[r].begin) + " " + FormatInt(ranges[r].end - 1);
        } else {
          value = subject.substr(ranges[r].begin, ranges[r].end - ranges[r].begin);
        }
      } else if (indices) {
        value = "-1 -1";
      }
      Code code = interp.SetVar(args[var_index], std::move(value));
      if (code != Code::kOk) {
        return code;
      }
    }
    // Unmatched trailing variables get empty values.
    for (size_t var_index2 = i + 2 + ranges.size(); var_index2 < args.size(); ++var_index2) {
      interp.SetVar(args[var_index2], indices ? "-1 -1" : "");
    }
  }
  interp.SetResult(matched ? "1" : "0");
  return Code::kOk;
}

// regsub ?-nocase? ?-all? exp string subSpec varName
Code RegsubCmd(Interp& interp, std::vector<std::string>& args) {
  size_t i = 1;
  bool nocase = false;
  bool all = false;
  while (i < args.size() && !args[i].empty() && args[i][0] == '-') {
    if (args[i] == "-nocase") {
      nocase = true;
    } else if (args[i] == "-all") {
      all = true;
    } else if (args[i] == "--") {
      ++i;
      break;
    } else {
      return interp.Error("bad switch \"" + args[i] + "\": must be -all, -nocase, or --");
    }
    ++i;
  }
  if (args.size() - i != 4) {
    return interp.WrongNumArgs("regsub ?switches? exp string subSpec varName");
  }
  std::string error;
  std::unique_ptr<Regexp> re = Regexp::Compile(args[i], nocase, &error);
  if (re == nullptr) {
    return interp.Error("couldn't compile regular expression pattern: " + error);
  }
  const std::string& subject = args[i + 1];
  const std::string& spec = args[i + 2];
  const std::string& var_name = args[i + 3];

  std::string out;
  size_t pos = 0;
  int64_t count = 0;
  std::vector<RegexpRange> ranges;
  while (pos <= subject.size() && re->Search(subject, pos, &ranges)) {
    const RegexpRange& whole = ranges[0];
    out.append(subject, pos, whole.begin - pos);
    // Expand subSpec: '&' -> whole match, \0..\9 -> groups, \& literal.
    for (size_t s = 0; s < spec.size(); ++s) {
      char c = spec[s];
      if (c == '&') {
        out.append(subject, whole.begin, whole.end - whole.begin);
        continue;
      }
      if (c == '\\' && s + 1 < spec.size()) {
        char next = spec[s + 1];
        if (next >= '0' && next <= '9') {
          size_t group = static_cast<size_t>(next - '0');
          if (group < ranges.size() && ranges[group].begin >= 0) {
            out.append(subject, ranges[group].begin,
                       ranges[group].end - ranges[group].begin);
          }
          ++s;
          continue;
        }
        if (next == '&' || next == '\\') {
          out.push_back(next);
          ++s;
          continue;
        }
      }
      out.push_back(c);
    }
    ++count;
    size_t next_pos = static_cast<size_t>(whole.end);
    if (whole.end == whole.begin) {
      // Empty match: copy one char forward to guarantee progress.
      if (next_pos < subject.size()) {
        out.push_back(subject[next_pos]);
      }
      ++next_pos;
    }
    pos = next_pos;
    if (!all) {
      break;
    }
  }
  if (pos <= subject.size()) {
    out.append(subject, pos, subject.size() - pos);
  }
  Code code = interp.SetVar(var_name, count > 0 ? out : subject);
  if (code != Code::kOk) {
    return code;
  }
  interp.SetResult(FormatInt(count));
  return Code::kOk;
}

// trace variable name ops command | trace vdelete ... | trace vinfo name
//
// Supported ops: any combination of "w" (write) and "u" (unset); the trace
// command is invoked as `command name1 name2 op`.
Code TraceCmd(Interp& interp, std::vector<std::string>& args) {
  if (args.size() < 3) {
    return interp.WrongNumArgs("trace variable name ops command");
  }
  const std::string& option = args[1];
  if (option == "variable" || option == "w") {
    if (args.size() != 5) {
      return interp.WrongNumArgs("trace variable name ops command");
    }
    const std::string& ops = args[2 + 1];
    bool on_write = ops.find('w') != std::string::npos;
    bool on_unset = ops.find('u') != std::string::npos;
    if (!on_write && !on_unset) {
      return interp.Error("bad operations \"" + ops + "\": should be one or more of w or u");
    }
    std::string command = args[4];
    interp.TraceVar(args[2], [command, on_write, on_unset](
                                 Interp& i, std::string_view name, std::string_view,
                                 bool unset) {
      if ((unset && !on_unset) || (!unset && !on_write)) {
        return;
      }
      std::string base(name);
      std::string index;
      size_t paren = base.find('(');
      if (paren != std::string::npos && base.back() == ')') {
        index = base.substr(paren + 1, base.size() - paren - 2);
        base = base.substr(0, paren);
      }
      std::string script = command + " " + QuoteListElement(base) + " " +
                           QuoteListElement(index) + " " + (unset ? "u" : "w");
      i.Eval(script);
    });
    interp.ResetResult();
    return Code::kOk;
  }
  return interp.Error("bad option \"" + option + "\": only \"trace variable\" is supported");
}

}  // namespace

void RegisterRegexpCommands(Interp& interp) {
  interp.RegisterCommand("regexp", RegexpCmd);
  interp.RegisterCommand("regsub", RegsubCmd);
  interp.RegisterCommand("trace", TraceCmd);
}

}  // namespace tcl
