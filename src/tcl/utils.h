// Small string and numeric helpers shared across the Tcl library.

#ifndef SRC_TCL_UTILS_H_
#define SRC_TCL_UTILS_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace tcl {

// Parses `text` as a Tcl integer (decimal, 0x hex, or 0 octal prefix with an
// optional sign).  The entire string, modulo surrounding whitespace, must be
// consumed.  Returns std::nullopt on failure.
std::optional<int64_t> ParseInt(std::string_view text);

// Parses `text` as a floating point number (whole string, modulo whitespace).
std::optional<double> ParseDouble(std::string_view text);

// Parses a Tcl boolean: 0/1, true/false, yes/no, on/off (case-insensitive),
// or any numeric value (non-zero => true).
std::optional<bool> ParseBool(std::string_view text);

// Formats an integer the way Tcl prints expr results.
std::string FormatInt(int64_t value);

// Formats a double the way Tcl prints expr results: %g with enough precision
// to round-trip, always containing a '.' or exponent so the value stays
// "floating" when re-parsed.
std::string FormatDouble(double value);

// Tcl's glob-style pattern matcher (the engine behind `string match` and the
// option database): `*` matches any run, `?` one char, `[a-z]` a char class,
// `\x` escapes x.
bool StringMatch(std::string_view pattern, std::string_view text);

// ASCII case conversions (Tcl is byte-oriented; no locale surprises).
std::string ToLowerAscii(std::string_view text);
std::string ToUpperAscii(std::string_view text);

// True if `c` is a Tcl word separator (space or tab).
inline bool IsTclSpace(char c) { return c == ' ' || c == '\t' || c == '\r' || c == '\f' || c == '\v'; }

}  // namespace tcl

#endif  // SRC_TCL_UTILS_H_
