#include "src/tcl/list.h"

#include <cctype>

#include "src/tcl/utils.h"

namespace tcl {
namespace {

bool IsListSpace(char c) {
  return c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\f' || c == '\v';
}

// Appends a backslash sequence from a list element to `out` (lists support
// the same backslash forms as command parsing).
void ListBackslash(std::string_view text, size_t* pos, std::string* out) {
  ++*pos;
  if (*pos >= text.size()) {
    out->push_back('\\');
    return;
  }
  char c = text[*pos];
  ++*pos;
  switch (c) {
    case 'n':
      out->push_back('\n');
      return;
    case 't':
      out->push_back('\t');
      return;
    case 'r':
      out->push_back('\r');
      return;
    case 'b':
      out->push_back('\b');
      return;
    case 'f':
      out->push_back('\f');
      return;
    case 'v':
      out->push_back('\v');
      return;
    default:
      out->push_back(c);
      return;
  }
}

}  // namespace

std::optional<std::vector<std::string>> SplitList(std::string_view list, std::string* error) {
  std::vector<std::string> elements;
  size_t pos = 0;
  while (pos < list.size()) {
    while (pos < list.size() && IsListSpace(list[pos])) {
      ++pos;
    }
    if (pos >= list.size()) {
      break;
    }
    std::string element;
    if (list[pos] == '{') {
      int depth = 1;
      ++pos;
      while (pos < list.size() && depth > 0) {
        char c = list[pos];
        if (c == '\\' && pos + 1 < list.size()) {
          element.push_back(c);
          element.push_back(list[pos + 1]);
          pos += 2;
          continue;
        }
        if (c == '{') {
          ++depth;
        } else if (c == '}') {
          --depth;
          if (depth == 0) {
            ++pos;
            break;
          }
        }
        element.push_back(c);
        ++pos;
      }
      if (depth != 0) {
        if (error != nullptr) {
          *error = "unmatched open brace in list";
        }
        return std::nullopt;
      }
      if (pos < list.size() && !IsListSpace(list[pos])) {
        if (error != nullptr) {
          *error = "list element in braces followed by \"" + std::string(1, list[pos]) +
                   "\" instead of space";
        }
        return std::nullopt;
      }
    } else if (list[pos] == '"') {
      ++pos;
      bool closed = false;
      while (pos < list.size()) {
        char c = list[pos];
        if (c == '\\') {
          ListBackslash(list, &pos, &element);
          continue;
        }
        if (c == '"') {
          ++pos;
          closed = true;
          break;
        }
        element.push_back(c);
        ++pos;
      }
      if (!closed) {
        if (error != nullptr) {
          *error = "unmatched open quote in list";
        }
        return std::nullopt;
      }
      if (pos < list.size() && !IsListSpace(list[pos])) {
        if (error != nullptr) {
          *error = "list element in quotes followed by \"" + std::string(1, list[pos]) +
                   "\" instead of space";
        }
        return std::nullopt;
      }
    } else {
      while (pos < list.size() && !IsListSpace(list[pos])) {
        if (list[pos] == '\\') {
          ListBackslash(list, &pos, &element);
          continue;
        }
        element.push_back(list[pos]);
        ++pos;
      }
    }
    elements.push_back(std::move(element));
  }
  return elements;
}

std::string QuoteListElement(std::string_view element) {
  if (element.empty()) {
    return "{}";
  }
  bool needs_braces = false;
  int depth = 0;
  bool unbalanced = false;
  bool has_backslash = false;
  for (size_t i = 0; i < element.size(); ++i) {
    char c = element[i];
    switch (c) {
      case ' ':
      case '\t':
      case '\n':
      case '\r':
      case '\f':
      case '\v':
      case ';':
      case '$':
      case '[':
      case ']':
      case '"':
        needs_braces = true;
        break;
      case '{':
        needs_braces = true;
        ++depth;
        break;
      case '}':
        needs_braces = true;
        --depth;
        if (depth < 0) {
          unbalanced = true;
        }
        break;
      case '\\':
        has_backslash = true;
        needs_braces = true;
        break;
      default:
        break;
    }
  }
  if (depth != 0) {
    unbalanced = true;
  }
  if (element.front() == '#') {
    needs_braces = true;  // Protect against comment interpretation.
  }
  if (!needs_braces) {
    return std::string(element);
  }
  if (!unbalanced && !has_backslash) {
    std::string out;
    out.reserve(element.size() + 2);
    out.push_back('{');
    out.append(element);
    out.push_back('}');
    return out;
  }
  // Fall back to backslash quoting.
  std::string out;
  out.reserve(element.size() * 2);
  for (char c : element) {
    switch (c) {
      case ' ':
      case '\t':
      case ';':
      case '$':
      case '[':
      case ']':
      case '"':
      case '{':
      case '}':
      case '\\':
        out.push_back('\\');
        out.push_back(c);
        break;
      case '\n':
        out.append("\\n");
        break;
      case '\r':
        out.append("\\r");
        break;
      case '\f':
        out.append("\\f");
        break;
      case '\v':
        out.append("\\v");
        break;
      default:
        out.push_back(c);
        break;
    }
  }
  return out;
}

std::string MergeList(const std::vector<std::string>& elements) {
  std::string out;
  for (size_t i = 0; i < elements.size(); ++i) {
    if (i > 0) {
      out.push_back(' ');
    }
    out.append(QuoteListElement(elements[i]));
  }
  return out;
}

std::string ConcatStrings(const std::vector<std::string>& parts) {
  std::string out;
  for (const std::string& part : parts) {
    size_t begin = 0;
    size_t end = part.size();
    while (begin < end && IsTclSpace(part[begin])) {
      ++begin;
    }
    while (begin < end && std::isspace(static_cast<unsigned char>(part[end - 1]))) {
      --end;
    }
    while (begin < end && std::isspace(static_cast<unsigned char>(part[begin]))) {
      ++begin;
    }
    if (begin == end) {
      continue;
    }
    if (!out.empty()) {
      out.push_back(' ');
    }
    out.append(part, begin, end - begin);
  }
  return out;
}

}  // namespace tcl
