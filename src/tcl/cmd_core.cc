// Core built-in commands: variables, control flow, procedures, evaluation.

#include <chrono>

#include "src/tcl/expr.h"
#include "src/tcl/interp.h"
#include "src/tcl/list.h"
#include "src/tcl/parser.h"
#include "src/tcl/utils.h"

namespace tcl {
namespace {

Code SetCmd(Interp& interp, std::vector<std::string>& args) {
  if (args.size() == 2) {
    const std::string* value = interp.GetVar(args[1]);
    if (value == nullptr) {
      return Code::kError;
    }
    interp.SetResult(*value);
    return Code::kOk;
  }
  if (args.size() == 3) {
    Code code = interp.SetVar(args[1], args[2]);
    if (code != Code::kOk) {
      return code;
    }
    interp.SetResult(args[2]);
    return Code::kOk;
  }
  return interp.WrongNumArgs("set varName ?newValue?");
}

Code UnsetCmd(Interp& interp, std::vector<std::string>& args) {
  if (args.size() < 2) {
    return interp.WrongNumArgs("unset varName ?varName ...?");
  }
  for (size_t i = 1; i < args.size(); ++i) {
    Code code = interp.UnsetVar(args[i]);
    if (code != Code::kOk) {
      return code;
    }
  }
  interp.ResetResult();
  return Code::kOk;
}

Code IncrCmd(Interp& interp, std::vector<std::string>& args) {
  if (args.size() != 2 && args.size() != 3) {
    return interp.WrongNumArgs("incr varName ?increment?");
  }
  const std::string* value = interp.GetVar(args[1]);
  if (value == nullptr) {
    return Code::kError;
  }
  std::optional<int64_t> current = ParseInt(*value);
  if (!current) {
    return interp.Error("expected integer but got \"" + *value + "\"");
  }
  int64_t amount = 1;
  if (args.size() == 3) {
    std::optional<int64_t> parsed = ParseInt(args[2]);
    if (!parsed) {
      return interp.Error("expected integer but got \"" + args[2] + "\"");
    }
    amount = *parsed;
  }
  std::string updated = FormatInt(*current + amount);
  Code code = interp.SetVar(args[1], updated);
  if (code != Code::kOk) {
    return code;
  }
  interp.SetResult(std::move(updated));
  return Code::kOk;
}

Code AppendCmd(Interp& interp, std::vector<std::string>& args) {
  if (args.size() < 2) {
    return interp.WrongNumArgs("append varName ?value value ...?");
  }
  const std::string* existing = interp.GetVarQuiet(args[1]);
  std::string value = existing != nullptr ? *existing : "";
  for (size_t i = 2; i < args.size(); ++i) {
    value += args[i];
  }
  Code code = interp.SetVar(args[1], value);
  if (code != Code::kOk) {
    return code;
  }
  interp.SetResult(std::move(value));
  return Code::kOk;
}

Code IfCmd(Interp& interp, std::vector<std::string>& args) {
  size_t i = 1;
  while (true) {
    if (i >= args.size()) {
      return interp.Error("wrong # args: no expression after \"" + args[0] + "\" argument");
    }
    bool condition = false;
    Code code = ExprBoolean(interp, args[i], &condition);
    if (code != Code::kOk) {
      return code;
    }
    ++i;
    if (i < args.size() && args[i] == "then") {
      ++i;
    }
    if (i >= args.size()) {
      return interp.Error("wrong # args: no script following \"" + args[i - 1] +
                          "\" argument");
    }
    if (condition) {
      return interp.Eval(args[i]);
    }
    ++i;
    if (i >= args.size()) {
      interp.ResetResult();
      return Code::kOk;
    }
    if (args[i] == "elseif") {
      ++i;
      continue;
    }
    if (args[i] == "else") {
      ++i;
    }
    if (i >= args.size()) {
      return interp.Error("wrong # args: no script following \"else\" argument");
    }
    return interp.Eval(args[i]);
  }
}

Code WhileCmd(Interp& interp, std::vector<std::string>& args) {
  if (args.size() != 3) {
    return interp.WrongNumArgs("while test command");
  }
  while (true) {
    bool condition = false;
    Code code = ExprBoolean(interp, args[1], &condition);
    if (code != Code::kOk) {
      return code;
    }
    if (!condition) {
      break;
    }
    code = interp.Eval(args[2]);
    if (code == Code::kBreak) {
      break;
    }
    if (code != Code::kOk && code != Code::kContinue) {
      if (code == Code::kError) {
        interp.AddErrorInfo("\n    (\"while\" body line)");
      }
      return code;
    }
  }
  interp.ResetResult();
  return Code::kOk;
}

Code ForCmd(Interp& interp, std::vector<std::string>& args) {
  if (args.size() != 5) {
    return interp.WrongNumArgs("for start test next command");
  }
  Code code = interp.Eval(args[1]);
  if (code != Code::kOk) {
    return code;
  }
  while (true) {
    bool condition = false;
    code = ExprBoolean(interp, args[2], &condition);
    if (code != Code::kOk) {
      return code;
    }
    if (!condition) {
      break;
    }
    code = interp.Eval(args[4]);
    if (code == Code::kBreak) {
      break;
    }
    if (code != Code::kOk && code != Code::kContinue) {
      return code;
    }
    code = interp.Eval(args[3]);
    if (code != Code::kOk) {
      return code;
    }
  }
  interp.ResetResult();
  return Code::kOk;
}

Code ForeachCmd(Interp& interp, std::vector<std::string>& args) {
  if (args.size() != 4) {
    return interp.WrongNumArgs("foreach varList list command");
  }
  std::string error;
  std::optional<std::vector<std::string>> names = SplitList(args[1], &error);
  if (!names || names->empty()) {
    return interp.Error(names ? "foreach varList must contain at least one variable name"
                              : error);
  }
  std::optional<std::vector<std::string>> values = SplitList(args[2], &error);
  if (!values) {
    return interp.Error(error);
  }
  size_t stride = names->size();
  for (size_t i = 0; i < values->size(); i += stride) {
    for (size_t j = 0; j < stride; ++j) {
      std::string value = (i + j) < values->size() ? (*values)[i + j] : "";
      Code code = interp.SetVar((*names)[j], std::move(value));
      if (code != Code::kOk) {
        return code;
      }
    }
    Code code = interp.Eval(args[3]);
    if (code == Code::kBreak) {
      break;
    }
    if (code != Code::kOk && code != Code::kContinue) {
      if (code == Code::kError) {
        interp.AddErrorInfo("\n    (\"foreach\" body line)");
      }
      return code;
    }
  }
  interp.ResetResult();
  return Code::kOk;
}

Code SwitchCmd(Interp& interp, std::vector<std::string>& args) {
  size_t i = 1;
  enum class Mode { kExact, kGlob };
  Mode mode = Mode::kGlob;
  while (i < args.size() && !args[i].empty() && args[i][0] == '-') {
    if (args[i] == "-exact") {
      mode = Mode::kExact;
    } else if (args[i] == "-glob") {
      mode = Mode::kGlob;
    } else if (args[i] == "--") {
      ++i;
      break;
    } else {
      return interp.Error("bad option \"" + args[i] + "\": should be -exact, -glob, or --");
    }
    ++i;
  }
  if (i >= args.size()) {
    return interp.WrongNumArgs("switch ?switches? string pattern body ... ?default body?");
  }
  const std::string subject = args[i];
  ++i;
  std::vector<std::string> pairs;
  if (args.size() - i == 1) {
    std::string error;
    std::optional<std::vector<std::string>> split = SplitList(args[i], &error);
    if (!split) {
      return interp.Error(error);
    }
    pairs = std::move(*split);
  } else {
    pairs.assign(args.begin() + i, args.end());
  }
  if (pairs.empty() || pairs.size() % 2 != 0) {
    return interp.Error("extra switch pattern with no body");
  }
  for (size_t p = 0; p < pairs.size(); p += 2) {
    bool matched = false;
    if (pairs[p] == "default" && p + 2 == pairs.size()) {
      matched = true;
    } else if (mode == Mode::kExact) {
      matched = subject == pairs[p];
    } else {
      matched = StringMatch(pairs[p], subject);
    }
    if (!matched) {
      continue;
    }
    // "-" chains to the next body.
    size_t body = p + 1;
    while (body < pairs.size() && pairs[body] == "-") {
      body += 2;
    }
    if (body >= pairs.size()) {
      return interp.Error("no body specified for pattern \"" + pairs[p] + "\"");
    }
    return interp.Eval(pairs[body]);
  }
  interp.ResetResult();
  return Code::kOk;
}

Code CaseCmd(Interp& interp, std::vector<std::string>& args) {
  // Old-style `case string ?in? {pat body pat body ...}` or inline pairs.
  if (args.size() < 3) {
    return interp.WrongNumArgs("case string ?in? patList body ?patList body ...?");
  }
  size_t i = 1;
  const std::string subject = args[i];
  ++i;
  if (args[i] == "in") {
    ++i;
  }
  std::vector<std::string> pairs;
  if (args.size() - i == 1) {
    std::string error;
    std::optional<std::vector<std::string>> split = SplitList(args[i], &error);
    if (!split) {
      return interp.Error(error);
    }
    pairs = std::move(*split);
  } else {
    pairs.assign(args.begin() + i, args.end());
  }
  if (pairs.size() % 2 != 0) {
    return interp.Error("extra case pattern with no body");
  }
  size_t default_body = pairs.size();
  for (size_t p = 0; p < pairs.size(); p += 2) {
    if (pairs[p] == "default") {
      default_body = p + 1;
      continue;
    }
    std::string error;
    std::optional<std::vector<std::string>> patterns = SplitList(pairs[p], &error);
    if (!patterns) {
      return interp.Error(error);
    }
    for (const std::string& pattern : *patterns) {
      if (StringMatch(pattern, subject)) {
        return interp.Eval(pairs[p + 1]);
      }
    }
  }
  if (default_body < pairs.size()) {
    return interp.Eval(pairs[default_body]);
  }
  interp.ResetResult();
  return Code::kOk;
}

Code BreakCmd(Interp& interp, std::vector<std::string>& args) {
  if (args.size() != 1) {
    return interp.WrongNumArgs("break");
  }
  interp.ResetResult();
  return Code::kBreak;
}

Code ContinueCmd(Interp& interp, std::vector<std::string>& args) {
  if (args.size() != 1) {
    return interp.WrongNumArgs("continue");
  }
  interp.ResetResult();
  return Code::kContinue;
}

Code ReturnCmd(Interp& interp, std::vector<std::string>& args) {
  Code code = Code::kReturn;
  size_t i = 1;
  if (args.size() >= 3 && args[i] == "-code") {
    const std::string& name = args[i + 1];
    if (name == "ok") {
      code = Code::kReturn;
    } else if (name == "error") {
      code = Code::kError;
    } else if (name == "return") {
      code = Code::kReturn;
    } else if (name == "break") {
      code = Code::kBreak;
    } else if (name == "continue") {
      code = Code::kContinue;
    } else if (std::optional<int64_t> numeric = ParseInt(name)) {
      code = static_cast<Code>(*numeric);
    } else {
      return interp.Error("bad completion code \"" + name +
                          "\": must be ok, error, return, break, or continue");
    }
    i += 2;
  }
  if (args.size() - i > 1) {
    return interp.WrongNumArgs("return ?-code code? ?value?");
  }
  interp.SetResult(i < args.size() ? args[i] : "");
  return code;
}

Code ProcCmd(Interp& interp, std::vector<std::string>& args) {
  if (args.size() != 4) {
    return interp.WrongNumArgs("proc name args body");
  }
  std::string error;
  std::optional<std::vector<std::string>> formals = SplitList(args[2], &error);
  if (!formals) {
    return interp.Error(error);
  }
  Proc proc;
  for (const std::string& spec : *formals) {
    std::optional<std::vector<std::string>> parts = SplitList(spec, &error);
    if (!parts || parts->empty() || parts->size() > 2) {
      return interp.Error("procedure \"" + args[1] +
                          "\" has argument with bad format: \"" + spec + "\"");
    }
    Proc::Formal formal;
    formal.name = (*parts)[0];
    if (parts->size() == 2) {
      formal.default_value = (*parts)[1];
      formal.has_default = true;
    }
    proc.formals.push_back(std::move(formal));
  }
  proc.body = args[3];
  const std::string name = args[1];
  // Redefining an existing proc keeps the registered trampoline (it
  // dispatches by invoked name), so only the body table changes; DefineProc
  // flushes the eval cache in that case.
  bool already_proc = interp.FindProc(name) != nullptr && interp.HasCommand(name);
  interp.DefineProc(name, proc);
  if (already_proc) {
    interp.ResetResult();
    return Code::kOk;
  }
  // Look the body up by the *invoked* name (args[0]) so `rename` keeps
  // working: RenameCommand moves the proc entry along with the command.
  interp.RegisterCommand(name, [](Interp& i, std::vector<std::string>& call_args) {
    const Proc* p = i.FindProc(call_args[0]);
    if (p == nullptr) {
      return i.Error("invalid command name \"" + call_args[0] + "\"");
    }
    // Copy so redefining the proc mid-call is safe.
    Proc snapshot = *p;
    return ProcInvoke(i, call_args[0], snapshot, call_args);
  });
  interp.ResetResult();
  return Code::kOk;
}

Code CatchCmd(Interp& interp, std::vector<std::string>& args) {
  if (args.size() != 2 && args.size() != 3) {
    return interp.WrongNumArgs("catch command ?varName?");
  }
  Code code = interp.Eval(args[1]);
  if (args.size() == 3) {
    Code set_code = interp.SetVar(args[2], interp.result());
    if (set_code != Code::kOk) {
      return set_code;
    }
  }
  interp.ResetErrorState();
  interp.SetResult(FormatInt(static_cast<int64_t>(code)));
  return Code::kOk;
}

Code ErrorCmd(Interp& interp, std::vector<std::string>& args) {
  if (args.size() < 2 || args.size() > 4) {
    return interp.WrongNumArgs("error message ?errorInfo? ?errorCode?");
  }
  if (args.size() >= 3 && !args[2].empty()) {
    // Seed the error trace with the caller-supplied errorInfo.
    interp.SetResult(args[2]);
    interp.AddErrorInfo("");
  }
  if (args.size() == 4) {
    interp.SetVar("errorCode", args[3]);
  }
  return interp.Error(args[1]);
}

Code EvalCmd(Interp& interp, std::vector<std::string>& args) {
  if (args.size() < 2) {
    return interp.WrongNumArgs("eval arg ?arg ...?");
  }
  if (args.size() == 2) {
    return interp.Eval(args[1]);
  }
  std::vector<std::string> parts(args.begin() + 1, args.end());
  return interp.Eval(ConcatStrings(parts));
}

Code ExprCmd(Interp& interp, std::vector<std::string>& args) {
  if (args.size() < 2) {
    return interp.WrongNumArgs("expr arg ?arg ...?");
  }
  std::string text;
  for (size_t i = 1; i < args.size(); ++i) {
    if (i > 1) {
      text.push_back(' ');
    }
    text += args[i];
  }
  std::string result;
  Code code = ExprEval(interp, text, &result);
  if (code != Code::kOk) {
    return code;
  }
  interp.SetResult(std::move(result));
  return Code::kOk;
}

Code GlobalCmd(Interp& interp, std::vector<std::string>& args) {
  if (args.size() < 2) {
    return interp.WrongNumArgs("global varName ?varName ...?");
  }
  for (size_t i = 1; i < args.size(); ++i) {
    Code code = interp.LinkGlobal(args[i]);
    if (code != Code::kOk) {
      return code;
    }
  }
  interp.ResetResult();
  return Code::kOk;
}

Code UpvarCmd(Interp& interp, std::vector<std::string>& args) {
  if (args.size() < 3) {
    return interp.WrongNumArgs("upvar ?level? otherVar myVar ?otherVar myVar ...?");
  }
  size_t i = 1;
  std::string level = "1";
  // A level spec is "#n" or a number; otherwise it's a variable name.
  if (args[1][0] == '#' || std::isdigit(static_cast<unsigned char>(args[1][0]))) {
    level = args[1];
    ++i;
  }
  if ((args.size() - i) % 2 != 0 || args.size() - i == 0) {
    return interp.WrongNumArgs("upvar ?level? otherVar myVar ?otherVar myVar ...?");
  }
  for (; i + 1 < args.size(); i += 2) {
    Code code = interp.LinkUpvar(level, args[i], args[i + 1]);
    if (code != Code::kOk) {
      return code;
    }
  }
  interp.ResetResult();
  return Code::kOk;
}

Code UplevelCmd(Interp& interp, std::vector<std::string>& args) {
  if (args.size() < 2) {
    return interp.WrongNumArgs("uplevel ?level? command ?arg ...?");
  }
  size_t i = 1;
  std::string level = "1";
  if (args.size() > 2 &&
      (args[1][0] == '#' || std::isdigit(static_cast<unsigned char>(args[1][0])))) {
    level = args[1];
    ++i;
  }
  std::string script;
  if (args.size() - i == 1) {
    script = args[i];
  } else {
    std::vector<std::string> parts(args.begin() + i, args.end());
    script = ConcatStrings(parts);
  }
  return interp.EvalAtLevel(level, script);
}

Code RenameCmd(Interp& interp, std::vector<std::string>& args) {
  if (args.size() != 3) {
    return interp.WrongNumArgs("rename oldName newName");
  }
  if (args[2].empty()) {
    if (!interp.DeleteCommand(args[1])) {
      return interp.Error("can't delete \"" + args[1] + "\": command doesn't exist");
    }
    interp.ResetResult();
    return Code::kOk;
  }
  if (interp.HasCommand(args[2])) {
    return interp.Error("can't rename to \"" + args[2] + "\": command already exists");
  }
  if (!interp.RenameCommand(args[1], args[2])) {
    return interp.Error("can't rename \"" + args[1] + "\": command doesn't exist");
  }
  interp.ResetResult();
  return Code::kOk;
}

Code SubstCmd(Interp& interp, std::vector<std::string>& args) {
  if (args.size() != 2) {
    return interp.WrongNumArgs("subst string");
  }
  std::string out;
  Code code = SubstString(interp, args[1], &out);
  if (code != Code::kOk) {
    return code;
  }
  interp.SetResult(std::move(out));
  return Code::kOk;
}

Code TimeCmd(Interp& interp, std::vector<std::string>& args) {
  if (args.size() != 2 && args.size() != 3) {
    return interp.WrongNumArgs("time command ?count?");
  }
  int64_t count = 1;
  if (args.size() == 3) {
    std::optional<int64_t> parsed = ParseInt(args[2]);
    if (!parsed || *parsed <= 0) {
      return interp.Error("expected positive integer but got \"" + args[2] + "\"");
    }
    count = *parsed;
  }
  auto start = std::chrono::steady_clock::now();
  for (int64_t i = 0; i < count; ++i) {
    Code code = interp.Eval(args[1]);
    if (code != Code::kOk) {
      return code;
    }
  }
  auto elapsed = std::chrono::duration_cast<std::chrono::microseconds>(
                     std::chrono::steady_clock::now() - start)
                     .count();
  interp.SetResult(FormatInt(elapsed / count) + " microseconds per iteration");
  return Code::kOk;
}

}  // namespace

void RegisterCoreCommands(Interp& interp) {
  interp.RegisterCommand("set", SetCmd);
  interp.RegisterCommand("unset", UnsetCmd);
  interp.RegisterCommand("incr", IncrCmd);
  interp.RegisterCommand("append", AppendCmd);
  interp.RegisterCommand("if", IfCmd);
  interp.RegisterCommand("while", WhileCmd);
  interp.RegisterCommand("for", ForCmd);
  interp.RegisterCommand("foreach", ForeachCmd);
  interp.RegisterCommand("switch", SwitchCmd);
  interp.RegisterCommand("case", CaseCmd);
  interp.RegisterCommand("break", BreakCmd);
  interp.RegisterCommand("continue", ContinueCmd);
  interp.RegisterCommand("return", ReturnCmd);
  interp.RegisterCommand("proc", ProcCmd);
  interp.RegisterCommand("catch", CatchCmd);
  interp.RegisterCommand("error", ErrorCmd);
  interp.RegisterCommand("eval", EvalCmd);
  interp.RegisterCommand("expr", ExprCmd);
  interp.RegisterCommand("global", GlobalCmd);
  interp.RegisterCommand("upvar", UpvarCmd);
  interp.RegisterCommand("uplevel", UplevelCmd);
  interp.RegisterCommand("rename", RenameCmd);
  interp.RegisterCommand("subst", SubstCmd);
  interp.RegisterCommand("time", TimeCmd);
}

}  // namespace tcl
