// Introspection commands: `info` and `array`.
//
// The paper highlights that Tcl "provides access to its own internals (e.g.
// it is possible to retrieve the body of a Tcl procedure or a list of all
// defined variable names)" -- that is exactly what `info` implements.

#include "src/tcl/compiler.h"
#include "src/tcl/interp.h"
#include "src/tcl/list.h"
#include "src/tcl/parser.h"
#include "src/tcl/utils.h"

namespace tcl {
namespace {

constexpr char kTclVersion[] = "7.0-tclk";

Code InfoCmd(Interp& interp, std::vector<std::string>& args) {
  if (args.size() < 2) {
    return interp.WrongNumArgs("info option ?arg arg ...?");
  }
  const std::string& option = args[1];
  if (option == "exists") {
    if (args.size() != 3) {
      return interp.WrongNumArgs("info exists varName");
    }
    interp.SetResult(interp.VarExists(args[2]) ? "1" : "0");
    return Code::kOk;
  }
  if (option == "commands") {
    std::string pattern = args.size() > 2 ? args[2] : "";
    interp.SetResult(MergeList(interp.CommandNames(pattern)));
    return Code::kOk;
  }
  if (option == "procs") {
    std::string pattern = args.size() > 2 ? args[2] : "";
    interp.SetResult(MergeList(interp.ProcNames(pattern)));
    return Code::kOk;
  }
  if (option == "vars") {
    std::string pattern = args.size() > 2 ? args[2] : "";
    interp.SetResult(MergeList(interp.LocalVarNames(pattern)));
    return Code::kOk;
  }
  if (option == "globals") {
    std::string pattern = args.size() > 2 ? args[2] : "";
    interp.SetResult(MergeList(interp.GlobalVarNames(pattern)));
    return Code::kOk;
  }
  if (option == "locals") {
    std::string pattern = args.size() > 2 ? args[2] : "";
    if (interp.current_level() == 0) {
      interp.ResetResult();
      return Code::kOk;
    }
    interp.SetResult(MergeList(interp.LocalVarNames(pattern)));
    return Code::kOk;
  }
  if (option == "body") {
    if (args.size() != 3) {
      return interp.WrongNumArgs("info body procName");
    }
    const Proc* proc = interp.FindProc(args[2]);
    if (proc == nullptr) {
      return interp.Error("\"" + args[2] + "\" isn't a procedure");
    }
    interp.SetResult(proc->body);
    return Code::kOk;
  }
  if (option == "args") {
    if (args.size() != 3) {
      return interp.WrongNumArgs("info args procName");
    }
    const Proc* proc = interp.FindProc(args[2]);
    if (proc == nullptr) {
      return interp.Error("\"" + args[2] + "\" isn't a procedure");
    }
    std::vector<std::string> names;
    for (const Proc::Formal& formal : proc->formals) {
      names.push_back(formal.name);
    }
    interp.SetResult(MergeList(names));
    return Code::kOk;
  }
  if (option == "default") {
    if (args.size() != 5) {
      return interp.WrongNumArgs("info default procName arg varName");
    }
    const Proc* proc = interp.FindProc(args[2]);
    if (proc == nullptr) {
      return interp.Error("\"" + args[2] + "\" isn't a procedure");
    }
    for (const Proc::Formal& formal : proc->formals) {
      if (formal.name == args[3]) {
        if (formal.has_default) {
          interp.SetVar(args[4], formal.default_value);
          interp.SetResult("1");
        } else {
          interp.SetVar(args[4], "");
          interp.SetResult("0");
        }
        return Code::kOk;
      }
    }
    return interp.Error("procedure \"" + args[2] + "\" doesn't have an argument \"" + args[3] +
                        "\"");
  }
  if (option == "level") {
    if (args.size() == 2) {
      interp.SetResult(FormatInt(interp.current_level()));
      return Code::kOk;
    }
    return interp.WrongNumArgs("info level");
  }
  if (option == "cmdcount") {
    interp.SetResult(FormatInt(static_cast<int64_t>(interp.command_count())));
    return Code::kOk;
  }
  if (option == "evalcache") {
    // info evalcache                 -> stats as a key/value list
    // info evalcache clear           -> drop entries, zero counters
    // info evalcache limit ?n?       -> get/set the LRU capacity
    // info evalcache enabled ?bool?  -> get/set whether Eval uses the cache
    if (args.size() == 2) {
      const EvalCacheStats& stats = interp.eval_cache_stats();
      std::vector<std::string> kv = {
          "hits",          FormatInt(static_cast<int64_t>(stats.hits)),
          "misses",        FormatInt(static_cast<int64_t>(stats.misses)),
          "invalidations", FormatInt(static_cast<int64_t>(stats.invalidations)),
          "fallbacks",     FormatInt(static_cast<int64_t>(stats.fallbacks)),
          "entries",       FormatInt(static_cast<int64_t>(interp.eval_cache_size())),
          "limit",         FormatInt(static_cast<int64_t>(interp.eval_cache_capacity())),
          "enabled",       interp.eval_cache_enabled() ? "1" : "0",
          "compiles",      FormatInt(static_cast<int64_t>(stats.compiles)),
          "compiled_evals", FormatInt(static_cast<int64_t>(stats.compiled_evals)),
          "mode", interp.exec_mode() == ExecMode::kCompile ? "compile" : "interp"};
      interp.SetResult(MergeList(kv));
      return Code::kOk;
    }
    const std::string& action = args[2];
    if (action == "clear") {
      if (args.size() != 3) {
        return interp.WrongNumArgs("info evalcache clear");
      }
      interp.ClearEvalCache();
      interp.ResetResult();
      return Code::kOk;
    }
    if (action == "limit") {
      if (args.size() == 3) {
        interp.SetResult(FormatInt(static_cast<int64_t>(interp.eval_cache_capacity())));
        return Code::kOk;
      }
      if (args.size() != 4) {
        return interp.WrongNumArgs("info evalcache limit ?size?");
      }
      std::optional<int64_t> limit = ParseInt(args[3]);
      if (!limit || *limit < 0) {
        return interp.Error("expected non-negative integer but got \"" + args[3] + "\"");
      }
      interp.set_eval_cache_capacity(static_cast<size_t>(*limit));
      interp.ResetResult();
      return Code::kOk;
    }
    if (action == "enabled") {
      if (args.size() == 3) {
        interp.SetResult(interp.eval_cache_enabled() ? "1" : "0");
        return Code::kOk;
      }
      if (args.size() != 4) {
        return interp.WrongNumArgs("info evalcache enabled ?boolean?");
      }
      std::optional<bool> enabled = ParseBool(args[3]);
      if (!enabled) {
        return interp.Error("expected boolean value but got \"" + args[3] + "\"");
      }
      interp.set_eval_cache_enabled(*enabled);
      interp.ResetResult();
      return Code::kOk;
    }
    return interp.Error("bad evalcache option \"" + action +
                        "\": should be clear, enabled, or limit");
  }
  if (option == "bytecode") {
    // info bytecode script -> instruction listing of the compiled script
    // (compiled fresh; does not populate the eval cache).
    if (args.size() != 3) {
      return interp.WrongNumArgs("info bytecode script");
    }
    std::shared_ptr<const ParsedScript> parsed = ParseScript(args[2]);
    if (!parsed->ok) {
      return interp.Error("can't compile script: static parse failed");
    }
    std::shared_ptr<const CompiledScript> compiled = CompileScript(std::move(parsed));
    interp.SetResult(Disassemble(*compiled));
    return Code::kOk;
  }
  if (option == "tclversion") {
    interp.SetResult(kTclVersion);
    return Code::kOk;
  }
  if (option == "complete") {
    if (args.size() != 3) {
      return interp.WrongNumArgs("info complete command");
    }
    // A command is complete when braces, brackets and quotes balance.
    int braces = 0;
    int brackets = 0;
    bool in_quote = false;
    const std::string& text = args[2];
    for (size_t i = 0; i < text.size(); ++i) {
      char c = text[i];
      if (c == '\\') {
        ++i;
        continue;
      }
      if (in_quote) {
        if (c == '"') {
          in_quote = false;
        }
        continue;
      }
      switch (c) {
        case '{':
          ++braces;
          break;
        case '}':
          --braces;
          break;
        case '[':
          ++brackets;
          break;
        case ']':
          --brackets;
          break;
        case '"':
          in_quote = true;
          break;
        default:
          break;
      }
    }
    interp.SetResult((braces <= 0 && brackets <= 0 && !in_quote) ? "1" : "0");
    return Code::kOk;
  }
  // Layers above the core (Tk) can add their own `info` subcommands; see
  // Interp::RegisterInfoExtension.
  if (const CommandProc* extension = interp.FindInfoExtension(option)) {
    return (*extension)(interp, args);
  }
  return interp.Error("bad option \"" + option +
                      "\": should be args, body, bytecode, cmdcount, commands, complete, "
                      "default, evalcache, exists, globals, level, locals, procs, "
                      "tclversion, or vars");
}

Code ArrayCmd(Interp& interp, std::vector<std::string>& args) {
  if (args.size() < 3) {
    return interp.WrongNumArgs("array option arrayName ?arg ...?");
  }
  const std::string& option = args[1];
  const std::string& name = args[2];
  const std::map<std::string, std::string>* array = interp.GetArray(name);
  if (option == "exists") {
    interp.SetResult(array != nullptr ? "1" : "0");
    return Code::kOk;
  }
  if (option == "set") {
    if (args.size() != 4) {
      return interp.WrongNumArgs("array set arrayName list");
    }
    std::string error;
    std::optional<std::vector<std::string>> pairs = SplitList(args[3], &error);
    if (!pairs) {
      return interp.Error(error);
    }
    if (pairs->size() % 2 != 0) {
      return interp.Error("list must have an even number of elements");
    }
    for (size_t i = 0; i < pairs->size(); i += 2) {
      Code code = interp.SetVar(name + "(" + (*pairs)[i] + ")", (*pairs)[i + 1]);
      if (code != Code::kOk) {
        return code;
      }
    }
    interp.ResetResult();
    return Code::kOk;
  }
  if (array == nullptr) {
    return interp.Error("\"" + name + "\" isn't an array");
  }
  if (option == "names") {
    std::string pattern = args.size() > 3 ? args[3] : "";
    std::vector<std::string> names;
    for (const auto& [key, value] : *array) {
      if (pattern.empty() || StringMatch(pattern, key)) {
        names.push_back(key);
      }
    }
    interp.SetResult(MergeList(names));
    return Code::kOk;
  }
  if (option == "size") {
    interp.SetResult(FormatInt(static_cast<int64_t>(array->size())));
    return Code::kOk;
  }
  if (option == "get") {
    std::string pattern = args.size() > 3 ? args[3] : "";
    std::vector<std::string> flat;
    for (const auto& [key, value] : *array) {
      if (pattern.empty() || StringMatch(pattern, key)) {
        flat.push_back(key);
        flat.push_back(value);
      }
    }
    interp.SetResult(MergeList(flat));
    return Code::kOk;
  }
  return interp.Error("bad option \"" + option +
                      "\": should be exists, get, names, set, or size");
}

}  // namespace

void RegisterInfoCommands(Interp& interp) {
  interp.RegisterCommand("info", InfoCmd);
  interp.RegisterCommand("array", ArrayCmd);
}

}  // namespace tcl
