// The Tcl arithmetic expression engine (the `expr` command and the
// conditions of `if`, `while` and `for`).
//
// Expressions follow C syntax and precedence, operate on integers, doubles
// and strings, and perform their own $variable / [command] substitution so
// that short-circuit operators (&&, ||, ?:) only evaluate the operands they
// need -- exactly the semantics scripts in the paper rely on, e.g.
// `if {[string compare $dir "."] != 0} ...` (Figure 9, line 6).

#ifndef SRC_TCL_EXPR_H_
#define SRC_TCL_EXPR_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "src/tcl/types.h"

namespace tcl {

class Interp;

// Evaluates `text` and stores the printed result (int, double or string) in
// *result.  On error, the message is left in the interp result.
Code ExprEval(Interp& interp, std::string_view text, std::string* result);

// Evaluates `text` and coerces the result to a boolean (numeric non-zero, or
// one of true/false/yes/no/on/off).
Code ExprBoolean(Interp& interp, std::string_view text, bool* out);

// Evaluates `text` and requires an integer result.
Code ExprInt(Interp& interp, std::string_view text, int64_t* out);

// Evaluates `text` and coerces the result to a double.
Code ExprDoubleValue(Interp& interp, std::string_view text, double* out);

}  // namespace tcl

#endif  // SRC_TCL_EXPR_H_
