// I/O and OS commands: puts/print, source, exec, file, glob, pwd, cd, exit.
//
// `exec` runs subprocesses through popen (the Figure 9 browser uses
// `exec ls -a $dir`); `file` accepts both the modern argument order
// (`file isdirectory $name`) and the pre-7.0 order used in the paper
// (`file $name isdirectory`).

#include <array>
#include <memory>
#include <vector>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>

#include "src/tcl/interp.h"
#include "src/tcl/list.h"
#include "src/tcl/utils.h"

namespace tcl {
namespace {

namespace fs = std::filesystem;

Code PutsCmd(Interp& interp, std::vector<std::string>& args) {
  bool newline = true;
  size_t i = 1;
  if (i < args.size() && args[i] == "-nonewline") {
    newline = false;
    ++i;
  }
  std::ostream* stream = &std::cout;
  if (args.size() - i == 2) {
    if (args[i] == "stderr") {
      stream = &std::cerr;
    } else if (args[i] != "stdout") {
      return interp.Error("unsupported channel \"" + args[i] + "\" (stdout/stderr only)");
    }
    ++i;
  }
  if (args.size() - i != 1) {
    return interp.WrongNumArgs("puts ?-nonewline? ?channel? string");
  }
  (*stream) << args[i];
  if (newline) {
    (*stream) << "\n";
  }
  stream->flush();
  interp.ResetResult();
  return Code::kOk;
}

// `print` (early Tcl): writes its argument verbatim, no newline appended
// (scripts in the paper embed "\n" explicitly).
Code PrintCmd(Interp& interp, std::vector<std::string>& args) {
  if (args.size() != 2) {
    return interp.WrongNumArgs("print string");
  }
  std::cout << args[1];
  std::cout.flush();
  interp.ResetResult();
  return Code::kOk;
}

Code SourceCmd(Interp& interp, std::vector<std::string>& args) {
  if (args.size() != 2) {
    return interp.WrongNumArgs("source fileName");
  }
  std::ifstream file(args[1]);
  if (!file) {
    return interp.Error("couldn't read file \"" + args[1] + "\"");
  }
  std::ostringstream contents;
  contents << file.rdbuf();
  Code code = interp.Eval(contents.str());
  if (code == Code::kReturn) {
    code = Code::kOk;
  }
  if (code == Code::kError) {
    interp.AddErrorInfo("\n    (file \"" + args[1] + "\")");
  }
  return code;
}

Code ExecCmd(Interp& interp, std::vector<std::string>& args) {
  if (args.size() < 2) {
    return interp.WrongNumArgs("exec arg ?arg ...?");
  }
  // Build a shell command line; each argument is single-quoted.
  std::string command;
  bool background = false;
  for (size_t i = 1; i < args.size(); ++i) {
    if (i == args.size() - 1 && args[i] == "&") {
      background = true;
      break;
    }
    if (!command.empty()) {
      command.push_back(' ');
    }
    command.push_back('\'');
    for (char c : args[i]) {
      if (c == '\'') {
        command += "'\\''";
      } else {
        command.push_back(c);
      }
    }
    command.push_back('\'');
  }
  if (background) {
    command += " &";
    int rc = std::system(command.c_str());
    (void)rc;
    interp.ResetResult();
    return Code::kOk;
  }
  FILE* pipe = popen(command.c_str(), "r");
  if (pipe == nullptr) {
    return interp.Error("couldn't execute \"" + args[1] + "\"");
  }
  std::string output;
  std::array<char, 4096> buffer;
  size_t n = 0;
  while ((n = fread(buffer.data(), 1, buffer.size(), pipe)) > 0) {
    output.append(buffer.data(), n);
  }
  int status = pclose(pipe);
  // Strip a single trailing newline, as Tcl does.
  if (!output.empty() && output.back() == '\n') {
    output.pop_back();
  }
  if (status != 0) {
    interp.SetResult(std::move(output));
    interp.AddErrorInfo("\n    (command \"" + command + "\" returned non-zero status)");
    return Code::kError;
  }
  interp.SetResult(std::move(output));
  return Code::kOk;
}

Code FileSubcommand(Interp& interp, const std::string& option, const std::string& name) {
  std::error_code ec;
  if (option == "exists") {
    interp.SetResult(fs::exists(name, ec) ? "1" : "0");
    return Code::kOk;
  }
  if (option == "isdirectory") {
    interp.SetResult(fs::is_directory(name, ec) ? "1" : "0");
    return Code::kOk;
  }
  if (option == "isfile") {
    interp.SetResult(fs::is_regular_file(name, ec) ? "1" : "0");
    return Code::kOk;
  }
  if (option == "readable" || option == "writable" || option == "executable") {
    fs::file_status status = fs::status(name, ec);
    if (ec) {
      interp.SetResult("0");
      return Code::kOk;
    }
    fs::perms perms = status.permissions();
    bool ok = false;
    if (option == "readable") {
      ok = (perms & fs::perms::owner_read) != fs::perms::none;
    } else if (option == "writable") {
      ok = (perms & fs::perms::owner_write) != fs::perms::none;
    } else {
      ok = (perms & fs::perms::owner_exec) != fs::perms::none;
    }
    interp.SetResult(ok ? "1" : "0");
    return Code::kOk;
  }
  if (option == "dirname") {
    fs::path path(name);
    std::string dir = path.parent_path().string();
    interp.SetResult(dir.empty() ? "." : dir);
    return Code::kOk;
  }
  if (option == "tail") {
    interp.SetResult(fs::path(name).filename().string());
    return Code::kOk;
  }
  if (option == "rootname") {
    fs::path path(name);
    interp.SetResult((path.parent_path() / path.stem()).string());
    return Code::kOk;
  }
  if (option == "extension") {
    interp.SetResult(fs::path(name).extension().string());
    return Code::kOk;
  }
  if (option == "size") {
    uintmax_t size = fs::file_size(name, ec);
    if (ec) {
      return interp.Error("couldn't stat \"" + name + "\"");
    }
    interp.SetResult(FormatInt(static_cast<int64_t>(size)));
    return Code::kOk;
  }
  if (option == "type") {
    fs::file_status status = fs::symlink_status(name, ec);
    if (ec) {
      return interp.Error("couldn't stat \"" + name + "\"");
    }
    switch (status.type()) {
      case fs::file_type::regular:
        interp.SetResult("file");
        break;
      case fs::file_type::directory:
        interp.SetResult("directory");
        break;
      case fs::file_type::symlink:
        interp.SetResult("link");
        break;
      default:
        interp.SetResult("other");
        break;
    }
    return Code::kOk;
  }
  return interp.Error("bad option \"" + option + "\" for file command");
}

const char* const kFileOptions[] = {"exists",   "isdirectory", "isfile",    "readable",
                                    "writable", "executable",  "dirname",   "tail",
                                    "rootname", "extension",   "size",      "type"};

bool IsFileOption(const std::string& text) {
  for (const char* option : kFileOptions) {
    if (text == option) {
      return true;
    }
  }
  return false;
}

Code FileCmd(Interp& interp, std::vector<std::string>& args) {
  if (args.size() != 3) {
    return interp.WrongNumArgs("file option name (or: file name option)");
  }
  // Modern order: `file isdirectory $name`.  Pre-7.0 order (used in the
  // paper's Figure 9): `file $name isdirectory`.
  if (IsFileOption(args[1])) {
    return FileSubcommand(interp, args[1], args[2]);
  }
  if (IsFileOption(args[2])) {
    return FileSubcommand(interp, args[2], args[1]);
  }
  return interp.Error("bad file option: neither \"" + args[1] + "\" nor \"" + args[2] +
                      "\" is a known subcommand");
}

Code GlobCmd(Interp& interp, std::vector<std::string>& args) {
  if (args.size() < 2) {
    return interp.WrongNumArgs("glob ?-nocomplain? pattern ?pattern ...?");
  }
  size_t i = 1;
  bool nocomplain = false;
  if (args[i] == "-nocomplain") {
    nocomplain = true;
    ++i;
  }
  std::vector<std::string> matches;
  std::error_code ec;
  for (; i < args.size(); ++i) {
    const std::string& pattern = args[i];
    fs::path pattern_path(pattern);
    fs::path dir = pattern_path.parent_path();
    std::string leaf = pattern_path.filename().string();
    if (dir.empty()) {
      dir = ".";
    }
    for (const fs::directory_entry& entry : fs::directory_iterator(dir, ec)) {
      std::string name = entry.path().filename().string();
      if (StringMatch(leaf, name)) {
        if (pattern_path.parent_path().empty()) {
          matches.push_back(name);
        } else {
          matches.push_back((pattern_path.parent_path() / name).string());
        }
      }
    }
  }
  if (matches.empty() && !nocomplain) {
    return interp.Error("no files matched glob patterns");
  }
  interp.SetResult(MergeList(matches));
  return Code::kOk;
}

Code PwdCmd(Interp& interp, std::vector<std::string>& args) {
  if (args.size() != 1) {
    return interp.WrongNumArgs("pwd");
  }
  std::error_code ec;
  interp.SetResult(fs::current_path(ec).string());
  return Code::kOk;
}

Code CdCmd(Interp& interp, std::vector<std::string>& args) {
  if (args.size() > 2) {
    return interp.WrongNumArgs("cd ?dirName?");
  }
  std::error_code ec;
  fs::current_path(args.size() == 2 ? fs::path(args[1]) : fs::path("/"), ec);
  if (ec) {
    return interp.Error("couldn't change working directory to \"" +
                        (args.size() == 2 ? args[1] : std::string("/")) + "\"");
  }
  interp.ResetResult();
  return Code::kOk;
}

Code ExitCmd([[maybe_unused]] Interp& interp, std::vector<std::string>& args) {
  int status = 0;
  if (args.size() == 2) {
    status = static_cast<int>(ParseInt(args[1]).value_or(0));
  }
  std::exit(status);
}

// The `history` command.  State is captured per-interpreter in the closure.
//
//   history                  -- numbered listing of recorded events
//   history add command      -- record an event (the REPL does this)
//   history event ?n?        -- the text of event n (default: latest);
//                               negative n counts back from the latest
//   history keep ?n?         -- query/set the retention limit
struct HistoryState {
  std::vector<std::string> events;
  size_t keep = 20;
  int first_serial = 1;  // Event number of events[0].
};

Code HistoryCmd(std::shared_ptr<HistoryState> state, Interp& interp,
                std::vector<std::string>& args) {
  if (args.size() == 1) {
    std::string out;
    for (size_t i = 0; i < state->events.size(); ++i) {
      out += std::to_string(state->first_serial + static_cast<int>(i)) + "\t" +
             state->events[i] + "\n";
    }
    interp.SetResult(std::move(out));
    return Code::kOk;
  }
  const std::string& option = args[1];
  if (option == "add") {
    if (args.size() != 3) {
      return interp.WrongNumArgs("history add command");
    }
    state->events.push_back(args[2]);
    while (state->events.size() > state->keep) {
      state->events.erase(state->events.begin());
      ++state->first_serial;
    }
    interp.ResetResult();
    return Code::kOk;
  }
  if (option == "event") {
    if (state->events.empty()) {
      return interp.Error("no history events");
    }
    int64_t index = -1;  // Latest.
    if (args.size() == 3) {
      std::optional<int64_t> parsed = ParseInt(args[2]);
      if (!parsed) {
        return interp.Error("expected integer but got \"" + args[2] + "\"");
      }
      index = *parsed;
    }
    int64_t slot;
    if (index < 0) {
      slot = static_cast<int64_t>(state->events.size()) + index;
    } else {
      slot = index - state->first_serial;
    }
    if (slot < 0 || slot >= static_cast<int64_t>(state->events.size())) {
      return interp.Error("event \"" + (args.size() == 3 ? args[2] : std::string("-1")) +
                          "\" is not in the history");
    }
    interp.SetResult(state->events[slot]);
    return Code::kOk;
  }
  if (option == "keep") {
    if (args.size() == 2) {
      interp.SetResult(FormatInt(static_cast<int64_t>(state->keep)));
      return Code::kOk;
    }
    std::optional<int64_t> n = ParseInt(args[2]);
    if (!n || *n < 0) {
      return interp.Error("illegal keep count \"" + args[2] + "\"");
    }
    state->keep = static_cast<size_t>(*n);
    while (state->events.size() > state->keep) {
      state->events.erase(state->events.begin());
      ++state->first_serial;
    }
    interp.ResetResult();
    return Code::kOk;
  }
  return interp.Error("bad option \"" + option + "\": must be add, event, or keep");
}

}  // namespace

void RegisterIoCommands(Interp& interp) {
  interp.RegisterCommand("puts", PutsCmd);
  interp.RegisterCommand("print", PrintCmd);
  interp.RegisterCommand("source", SourceCmd);
  interp.RegisterCommand("exec", ExecCmd);
  interp.RegisterCommand("file", FileCmd);
  interp.RegisterCommand("glob", GlobCmd);
  interp.RegisterCommand("pwd", PwdCmd);
  interp.RegisterCommand("cd", CdCmd);
  interp.RegisterCommand("exit", ExitCmd);
  auto history = std::make_shared<HistoryState>();
  interp.RegisterCommand("history", [history](Interp& i, std::vector<std::string>& args) {
    return HistoryCmd(history, i, args);
  });
}

}  // namespace tcl
