// The bytecode stack VM.  See vm.h for the contract and compiler.h for the
// instruction set.
//
// Parity discipline: every inline fast path here shadows one concrete code
// path in cmd_core.cc / parser.cc / interp.cc, and bails out to that exact
// code the moment any precondition fails (builtin redefined, variable has
// traces / is an array / is undefined, value is non-numeric, ...).  The fast
// paths therefore never need to reproduce error messages themselves -- the
// canonical code produces them.

#include "src/tcl/vm.h"

#include <algorithm>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "src/tcl/compiler.h"
#include "src/tcl/expr.h"
#include "src/tcl/interp.h"
#include "src/tcl/list.h"
#include "src/tcl/parser.h"
#include "src/tcl/utils.h"

namespace tcl {

struct VmExecutor::Run {
  // One active inlined loop.  `brk` is the kLoopExit instruction (pops this
  // frame and resets the result, like the `break` exit of While/ForeachCmd);
  // `cont` is the condition / step instruction.
  struct LoopFrame {
    uint32_t brk = 0;
    uint32_t cont = 0;
    const ForeachPlan* plan = nullptr;  // Null for while loops.
    std::vector<std::string> owned;     // Runtime-assembled foreach values.
    size_t vidx = 0;

    const std::vector<std::string>& values() const {
      return plan->const_values ? *plan->const_values : owned;
    }
  };

  Run(Interp& interp, const CompiledScript& cs)
      : interp_(interp), cs_(cs), slots_(cs.slot_names.size(), nullptr) {}

  Interp& interp_;
  const CompiledScript& cs_;
  std::vector<LoopFrame> loops_;
  std::vector<std::string> words_;  // Reused kInvoke argument buffer.
  Code ret_ = Code::kOk;

  // --- Local-variable slot cache --------------------------------------------
  //
  // Caches the Var behind each slot name in the current frame.  Valid only
  // while (a) the active frame is the same object, (b) no frame was pushed or
  // popped since (frame_generation_ guards address reuse), and (c) no binding
  // in the frame was removed or re-pointed (vars_epoch).  Plain insertion of
  // new names invalidates nothing, so resolved entries survive it.
  CallFrame* cached_frame_ = nullptr;
  uint64_t cached_gen_ = 0;
  uint64_t cached_epoch_ = 0;
  std::vector<Var*> slots_;

  void RevalidateSlots() {
    CallFrame& cf = interp_.current_frame();
    if (cached_frame_ == &cf && cached_gen_ == interp_.frame_generation_ &&
        cached_epoch_ == cf.vars_epoch) {
      return;
    }
    cached_frame_ = &cf;
    cached_gen_ = interp_.frame_generation_;
    cached_epoch_ = cf.vars_epoch;
    std::fill(slots_.begin(), slots_.end(), nullptr);
  }

  // Returns the (possibly just-created) Var for `slot`, or nullptr when the
  // variable does not exist and `create` is false.  Misses are not cached:
  // a variable created later through the generic path must become visible.
  Var* SlotVar(int32_t slot, bool create) {
    RevalidateSlots();
    Var* var = slots_[slot];
    if (var != nullptr) {
      return var;
    }
    std::shared_ptr<Var> found =
        interp_.LookupVar(*cached_frame_, cs_.slot_names[slot], create);
    if (found == nullptr) {
      return nullptr;
    }
    var = found.get();
    slots_[slot] = var;
    return var;
  }

  static const std::string* LoadSlotThunk(void* ctx, uint32_t slot) {
    Run* self = static_cast<Run*>(ctx);
    Var* var = self->SlotVar(static_cast<int32_t>(slot), /*create=*/false);
    if (var == nullptr || !var->defined || var->is_array) {
      return nullptr;  // Canonical engine reproduces the read error / string.
    }
    return &var->scalar;
  }

  // A scalar Var the inline write path may store to directly.  Anything else
  // (write traces to fire, array collision error to report) goes through the
  // generic SetVar.
  static bool FastWritable(const Var* var) {
    return var != nullptr && var->traces.empty() && !(var->defined && var->is_array);
  }

  // --- Error/trace plumbing -------------------------------------------------

  // Rebuilds the errorInfo chain the tree-walker would have built: the
  // failing command's own text (unless the error came from word assembly,
  // which EvalParsed does not trace), then each ancestor construct's
  // connecting note and command text.
  void ApplyTrace(int32_t trace_idx, bool own) {
    if (trace_idx < 0) {
      return;
    }
    const TraceNode* node = &cs_.traces[trace_idx];
    if (own) {
      interp_.AddCommandTrace(node->text);
    }
    while (node->parent >= 0) {
      const TraceNode* parent = &cs_.traces[node->parent];
      if (!node->note.empty()) {
        interp_.AddErrorInfo(node->note);
      }
      interp_.AddCommandTrace(parent->text);
      node = parent;
    }
  }

  // Routes a non-kOk completion code.  Break/continue inside an inlined loop
  // jump to the loop's exit / continuation point; everything else unwinds out
  // of the script (adding error traces first).  Returns true when execution
  // continues at *ip.
  bool Handle(Code code, const Instr& in, bool own, uint32_t* ip) {
    if (code == Code::kBreak && !loops_.empty()) {
      *ip = loops_.back().brk;
      return true;
    }
    if (code == Code::kContinue && !loops_.empty()) {
      *ip = loops_.back().cont;
      return true;
    }
    if (code == Code::kError) {
      ApplyTrace(in.trace, own);
    }
    ret_ = code;
    return false;
  }

  // --- Generic dispatch -----------------------------------------------------

  // Exactly one EvalParsed step: assemble the command's words, dispatch via
  // EvalWords.  `*own` reports whether an error came from the dispatch (which
  // EvalParsed traces) or from word assembly (which it does not).
  Code Invoke(const ParsedCommand& cmd, bool* own) {
    words_.clear();
    Code code = AssembleCommandWords(interp_, cmd, &words_);
    if (code != Code::kOk) {
      *own = false;
      return code;
    }
    return interp_.EvalWords(words_);
  }

  // Dispatches `in.pcmd` generically and advances *ip to `next` on success.
  // Used both for kInvoke and for every inlined instruction's builtin-guard
  // bailout.  Returns false when Go() must return ret_.
  bool GenericStep(const Instr& in, uint32_t next, uint32_t* ip) {
    bool own = true;
    Code code = Invoke(*in.pcmd, &own);
    if (code == Code::kOk) {
      *ip = next;
      return true;
    }
    return Handle(code, in, own, ip);
  }

  // True when one of the inlined builtins (set, incr, expr, if, while, for,
  // foreach, break, continue) has been redefined, renamed or deleted; every
  // inlined instruction then takes the generic dispatch path so the
  // replacement command is honoured.
  bool BuiltinsShadowed() const { return interp_.builtin_epoch_ != 0; }

  // --- Condition evaluation -------------------------------------------------

  // Evaluates exprs[eidx] as a boolean, preferring the compiled program.
  // Returns kOk with *cond set, or the canonical engine's completion code.
  Code EvalCond(int32_t eidx, bool* cond) {
    const CompiledExpr& expr = cs_.exprs[eidx];
    if (!expr.ops.empty()) {
      std::optional<NumVal> value = RunCompiledExpr(expr, &LoadSlotThunk, this);
      if (value) {
        // NumVal::Truthy matches ParseBool on every printable numeric value
        // (including NaN -> "NaN" -> true and -0.0 -> "-0" -> false).
        *cond = value->Truthy();
        return Code::kOk;
      }
    }
    return ExprBoolean(interp_, expr.text, cond);
  }

  // --- Main loop ------------------------------------------------------------

  Code Go() {
    interp_.ResetResult();  // EvalParsed resets at the top, too.
    const Instr* ins = cs_.instrs.data();
    uint32_t ip = 0;
    while (true) {
      const Instr& in = ins[ip];
      switch (in.op) {
        case Instr::Op::kDone:
          return Code::kOk;

        case Instr::Op::kJump:
          ip = in.a;
          break;

        case Instr::Op::kResetResult:
          interp_.ResetResult();
          ++ip;
          break;

        case Instr::Op::kInvoke: {
          if (!GenericStep(in, ip + 1, &ip)) {
            return ret_;
          }
          break;
        }

        case Instr::Op::kSetConst: {
          if (BuiltinsShadowed()) {
            if (!GenericStep(in, ip + 1, &ip)) {
              return ret_;
            }
            break;
          }
          ++interp_.command_count_;
          const std::string& value = cs_.constants[in.cidx];
          Var* var = in.slot >= 0 ? SlotVar(in.slot, /*create=*/true) : nullptr;
          if (FastWritable(var)) {
            var->defined = true;
            var->scalar = value;
          } else {
            Code code = interp_.SetVar(cs_.constants[in.name_cidx], value);
            if (code != Code::kOk) {
              if (!Handle(code, in, /*own=*/true, &ip)) {
                return ret_;
              }
              break;
            }
          }
          if (in.live) {
            interp_.SetResult(value);
          }
          ++ip;
          break;
        }

        case Instr::Op::kSetWord: {
          if (BuiltinsShadowed()) {
            if (!GenericStep(in, ip + 1, &ip)) {
              return ret_;
            }
            break;
          }
          std::string value;
          Code code = AssembleWordParts(interp_, *in.word, &value);
          if (code != Code::kOk) {
            if (!Handle(code, in, /*own=*/false, &ip)) {
              return ret_;
            }
            break;
          }
          ++interp_.command_count_;
          Var* var = in.slot >= 0 ? SlotVar(in.slot, /*create=*/true) : nullptr;
          if (FastWritable(var)) {
            var->defined = true;
            var->scalar = value;  // Copy: `value` may still become the result.
          } else {
            code = interp_.SetVar(cs_.constants[in.name_cidx], value);
            if (code != Code::kOk) {
              if (!Handle(code, in, /*own=*/true, &ip)) {
                return ret_;
              }
              break;
            }
          }
          if (in.live) {
            interp_.SetResult(std::move(value));
          }
          ++ip;
          break;
        }

        case Instr::Op::kSetRead: {
          if (BuiltinsShadowed()) {
            if (!GenericStep(in, ip + 1, &ip)) {
              return ret_;
            }
            break;
          }
          ++interp_.command_count_;
          Var* var = in.slot >= 0 ? SlotVar(in.slot, /*create=*/false) : nullptr;
          if (var != nullptr && var->defined && !var->is_array) {
            if (in.live) {
              interp_.SetResult(var->scalar);
            }
          } else {
            const std::string* value = interp_.GetVar(cs_.constants[in.name_cidx]);
            if (value == nullptr) {
              if (!Handle(Code::kError, in, /*own=*/true, &ip)) {
                return ret_;
              }
              break;
            }
            if (in.live) {
              interp_.SetResult(*value);
            }
          }
          ++ip;
          break;
        }

        case Instr::Op::kIncr: {
          if (BuiltinsShadowed()) {
            if (!GenericStep(in, ip + 1, &ip)) {
              return ret_;
            }
            break;
          }
          // IncrCmd's exact order: assemble amount word, count, read the
          // variable, parse it, parse the amount, write, set result.
          std::string amount_text;
          if (!in.amount_const) {
            Code code = AssembleWordParts(interp_, *in.word, &amount_text);
            if (code != Code::kOk) {
              if (!Handle(code, in, /*own=*/false, &ip)) {
                return ret_;
              }
              break;
            }
          }
          ++interp_.command_count_;
          Var* var = in.slot >= 0 ? SlotVar(in.slot, /*create=*/false) : nullptr;
          bool fast = var != nullptr && var->defined && !var->is_array &&
                      var->traces.empty();
          const std::string* current_text = nullptr;
          if (fast) {
            current_text = &var->scalar;
          } else {
            current_text = interp_.GetVar(cs_.constants[in.name_cidx]);
            if (current_text == nullptr) {
              if (!Handle(Code::kError, in, /*own=*/true, &ip)) {
                return ret_;
              }
              break;
            }
          }
          std::optional<int64_t> current = ParseInt(*current_text);
          if (!current) {
            interp_.Error("expected integer but got \"" + *current_text + "\"");
            if (!Handle(Code::kError, in, /*own=*/true, &ip)) {
              return ret_;
            }
            break;
          }
          int64_t amount = in.amount;
          if (!in.amount_const) {
            std::optional<int64_t> parsed = ParseInt(amount_text);
            if (!parsed) {
              interp_.Error("expected integer but got \"" + amount_text + "\"");
              if (!Handle(Code::kError, in, /*own=*/true, &ip)) {
                return ret_;
              }
              break;
            }
            amount = *parsed;
          }
          std::string updated = FormatInt(*current + amount);
          if (fast) {
            if (in.live) {
              var->scalar = updated;
              interp_.SetResult(std::move(updated));
            } else {
              var->scalar = std::move(updated);
            }
          } else {
            Code code = interp_.SetVar(cs_.constants[in.name_cidx], updated);
            if (code != Code::kOk) {
              if (!Handle(code, in, /*own=*/true, &ip)) {
                return ret_;
              }
              break;
            }
            if (in.live) {
              interp_.SetResult(std::move(updated));
            }
          }
          ++ip;
          break;
        }

        case Instr::Op::kExprCmd: {
          if (BuiltinsShadowed()) {
            if (!GenericStep(in, ip + 1, &ip)) {
              return ret_;
            }
            break;
          }
          ++interp_.command_count_;
          const CompiledExpr& expr = cs_.exprs[in.expr];
          std::optional<NumVal> value;
          if (!expr.ops.empty()) {
            value = RunCompiledExpr(expr, &LoadSlotThunk, this);
          }
          if (value) {
            if (in.live) {
              interp_.SetResult(value->Print());
            }
          } else {
            std::string result;
            Code code = ExprEval(interp_, expr.text, &result);
            if (code != Code::kOk) {
              if (!Handle(code, in, /*own=*/true, &ip)) {
                return ret_;
              }
              break;
            }
            interp_.SetResult(std::move(result));
          }
          ++ip;
          break;
        }

        case Instr::Op::kEnterIf: {
          if (BuiltinsShadowed()) {
            if (!GenericStep(in, in.a, &ip)) {
              return ret_;
            }
            break;
          }
          ++interp_.command_count_;
          ++ip;
          break;
        }

        case Instr::Op::kEnterWhile: {
          if (BuiltinsShadowed()) {
            if (!GenericStep(in, in.b + 1, &ip)) {
              return ret_;
            }
            break;
          }
          ++interp_.command_count_;
          LoopFrame frame;
          frame.brk = in.b;
          frame.cont = ip + 1;  // The kCond.
          loops_.push_back(std::move(frame));
          ++ip;
          break;
        }

        case Instr::Op::kEnterFor: {
          // The loop frame is NOT pushed here: the init body runs first, and
          // its completion codes must escape the construct the way ForCmd
          // returns Eval(init)'s code.  The kLoopPush after init opens the
          // frame.
          if (BuiltinsShadowed()) {
            if (!GenericStep(in, in.b + 1, &ip)) {
              return ret_;
            }
            break;
          }
          ++interp_.command_count_;
          ++ip;
          break;
        }

        case Instr::Op::kLoopPush: {
          LoopFrame frame;
          frame.brk = in.b;
          frame.cont = in.a;  // The for's next-script.
          loops_.push_back(std::move(frame));
          ++ip;
          break;
        }

        case Instr::Op::kLoopPop:
          // A for's next-script runs without the loop frame: ForCmd
          // propagates every non-ok code (break and continue included) out
          // of the loop, so they must route past this frame.
          loops_.pop_back();
          ++ip;
          break;

        case Instr::Op::kEnterForeach: {
          if (BuiltinsShadowed()) {
            if (!GenericStep(in, in.b + 1, &ip)) {
              return ret_;
            }
            break;
          }
          const ForeachPlan& plan = cs_.foreaches[in.fe];
          LoopFrame frame;
          frame.brk = in.b;
          frame.cont = ip + 1;  // The kForeachStep.
          frame.plan = &plan;
          if (!plan.const_values) {
            // Assemble and split the value list the way EvalParsed +
            // ForeachCmd would: assembly errors are untraced word errors,
            // the command counts after assembly, split errors are the
            // command's own.
            std::string list_text;
            Code code = AssembleWordParts(interp_, *plan.list_word, &list_text);
            if (code != Code::kOk) {
              if (!Handle(code, in, /*own=*/false, &ip)) {
                return ret_;
              }
              break;
            }
            ++interp_.command_count_;
            std::string error;
            std::optional<std::vector<std::string>> values = SplitList(list_text, &error);
            if (!values) {
              interp_.Error(error);
              if (!Handle(Code::kError, in, /*own=*/true, &ip)) {
                return ret_;
              }
              break;
            }
            frame.owned = std::move(*values);
          } else {
            ++interp_.command_count_;
          }
          loops_.push_back(std::move(frame));
          ++ip;
          break;
        }

        case Instr::Op::kForeachStep: {
          LoopFrame& frame = loops_.back();
          const std::vector<std::string>& values = frame.values();
          if (frame.vidx >= values.size()) {
            ip = frame.brk;
            break;
          }
          const ForeachPlan& plan = *frame.plan;
          size_t stride = plan.names.size();
          bool failed = false;
          for (size_t j = 0; j < stride; ++j) {
            static const std::string kEmpty;
            const std::string& value =
                frame.vidx + j < values.size() ? values[frame.vidx + j] : kEmpty;
            int32_t slot = plan.name_slots[j];
            Var* var = slot >= 0 ? SlotVar(slot, /*create=*/true) : nullptr;
            if (FastWritable(var)) {
              var->defined = true;
              var->scalar = value;
            } else if (interp_.SetVar(plan.names[j], value) != Code::kOk) {
              failed = true;
              break;
            }
          }
          if (failed) {
            // ForeachCmd returns the SetVar error directly; the foreach
            // command itself gets the trace.
            loops_.pop_back();
            if (!Handle(Code::kError, in, /*own=*/true, &ip)) {
              return ret_;
            }
            break;
          }
          frame.vidx += stride;
          ++ip;
          break;
        }

        case Instr::Op::kCond: {
          bool cond = false;
          Code code = EvalCond(in.expr, &cond);
          if (code != Code::kOk) {
            // While/ForeachCmd return condition codes directly -- even break
            // and continue leave the loop and propagate to the enclosing one.
            if (in.pop_loop_on_code) {
              loops_.pop_back();
            }
            if (!Handle(code, in, /*own=*/true, &ip)) {
              return ret_;
            }
            break;
          }
          ip = cond ? ip + 1 : in.a;
          break;
        }

        case Instr::Op::kLoopExit:
          loops_.pop_back();
          interp_.ResetResult();
          ++ip;
          break;

        case Instr::Op::kBreak: {
          if (BuiltinsShadowed()) {
            if (!GenericStep(in, ip + 1, &ip)) {
              return ret_;
            }
            break;
          }
          ++interp_.command_count_;
          interp_.ResetResult();
          if (!Handle(Code::kBreak, in, /*own=*/true, &ip)) {
            return ret_;
          }
          break;
        }

        case Instr::Op::kContinue: {
          if (BuiltinsShadowed()) {
            if (!GenericStep(in, ip + 1, &ip)) {
              return ret_;
            }
            break;
          }
          ++interp_.command_count_;
          interp_.ResetResult();
          if (!Handle(Code::kContinue, in, /*own=*/true, &ip)) {
            return ret_;
          }
          break;
        }
      }
    }
  }
};

Code VmExecutor::Execute(Interp& interp, std::shared_ptr<const CompiledScript> script) {
  Run run(interp, *script);
  return run.Go();
}

}  // namespace tcl
