// The Tcl interpreter.
//
// This is a faithful C++ re-implementation of the interpreter described in
// "Tcl: An Embeddable Command Language" (Ousterhout, USENIX Winter 1990) and
// used as the substrate for Tk in the 1991 paper.  The interpreter:
//
//   * parses command strings (fields separated by white space, commands
//     separated by newlines or semicolons),
//   * performs `$var`, `[command]` and backslash substitution,
//   * dispatches the first field to a registered command procedure,
//   * returns a string result plus a completion Code.
//
// Applications extend the language by registering their own command
// procedures (Tk registers `button`, `bind`, `pack`, `send`, ...); built-in
// and application commands are indistinguishable, exactly as in the paper.
//
// Usage:
//   tcl::Interp interp;
//   interp.RegisterCommand("greet", [](tcl::Interp& i, std::vector<std::string>& args) {
//     i.SetResult("hello " + args[1]);
//     return tcl::Code::kOk;
//   });
//   interp.Eval("greet world");   // interp.result() == "hello world"

#ifndef SRC_TCL_INTERP_H_
#define SRC_TCL_INTERP_H_

#include <cstdint>
#include <functional>
#include <list>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "src/tcl/types.h"

namespace tcl {

class Interp;
struct ParsedScript;
struct CompiledScript;

// How Interp::Eval executes statically-parsed scripts.  The default is the
// bytecode compiler + stack VM; the tree-walking evaluator is retained for
// conformance comparison and debugging, selected by TCLK_TCL_EXEC=interp
// (mirroring the TCLK_WIRE_BACKEND dual-backend pattern).
enum class ExecMode {
  kCompile,  // parse -> compile -> stack VM (vm.h).
  kInterp,   // parse -> tree-walk (EvalParsed).
};

// Counters for the parsed/compiled-script eval cache (`info evalcache`).
struct EvalCacheStats {
  uint64_t hits = 0;            // Evals served from a cached parse.
  uint64_t misses = 0;          // Evals that had to parse.
  uint64_t invalidations = 0;   // Entries dropped by invalidation hooks.
  uint64_t fallbacks = 0;       // Scripts the static tokenizer rejected.
  uint64_t compiles = 0;        // Scripts lowered to bytecode.
  uint64_t compiled_evals = 0;  // Evals executed by the bytecode VM.
};

// A command procedure.  args[0] is the command name; the remaining entries
// are the fully substituted argument fields.  The procedure reports its
// result via Interp::SetResult / Interp::Error and returns a completion code.
using CommandProc = std::function<Code(Interp&, std::vector<std::string>& args)>;

// Callback invoked when a variable is written or unset (`trace`-lite; used by
// Tk's checkbutton/radiobutton -variable plumbing).
using VarTraceProc =
    std::function<void(Interp&, std::string_view name, std::string_view new_value, bool unset)>;

// A Tcl variable: either a scalar or an array of scalars.  Variables are
// heap-allocated and shared so that `upvar`/`global` links remain valid even
// if the defining frame goes away first.
struct Var {
  bool defined = false;  // A link target may exist before ever being set.
  bool is_array = false;
  std::string scalar;
  std::map<std::string, std::string> array;
  std::vector<VarTraceProc> traces;
};

// One procedure call frame (or the global frame, at level 0).
struct CallFrame {
  int level = 0;
  // Index (into the interp's frame stack) of the frame that was active when
  // this frame was pushed; used to resolve uplevel/upvar level specs.
  int caller_index = -1;
  std::map<std::string, std::shared_ptr<Var>> vars;
  // Bumped whenever a name->Var binding in `vars` is removed or re-pointed
  // (unset, global, upvar).  The VM's local-slot cache revalidates against
  // this; plain insertion of new names does not bump it (existing bindings
  // are unaffected).
  uint64_t vars_epoch = 0;
  // The command + arguments that created this frame, for error traces.
  std::string invocation;
};

// User-defined procedure created by `proc`.
struct Proc {
  // Pairs of (formal name, default value); has_default marks which formals
  // carry defaults.  A trailing formal named "args" collects the rest.
  struct Formal {
    std::string name;
    std::string default_value;
    bool has_default = false;
  };
  std::vector<Formal> formals;
  std::string body;
};

class Interp {
 public:
  Interp();
  ~Interp();

  Interp(const Interp&) = delete;
  Interp& operator=(const Interp&) = delete;

  // --- Evaluation -----------------------------------------------------------

  // Parses and executes `script` (a sequence of commands).  The result of the
  // last command executed is left in result().
  Code Eval(std::string_view script);

  // Executes a single already-parsed command (no further substitution).
  Code EvalWords(std::vector<std::string>& words);

  // Evaluates `script` as a boolean expression (via the expr engine).
  Code EvalBool(std::string_view expr_text, bool* out);

  // Execution backend for statically-parsed scripts.  Initialized from the
  // TCLK_TCL_EXEC environment variable ("compile" default, "interp" for the
  // tree-walker); tests pin it in-process via set_exec_mode.
  ExecMode exec_mode() const { return exec_mode_; }
  void set_exec_mode(ExecMode mode) { exec_mode_ = mode; }

  // --- Results --------------------------------------------------------------

  const std::string& result() const { return result_; }
  void SetResult(std::string value) { result_ = std::move(value); }
  void ResetResult() { result_.clear(); }
  // Appends `element` to result() as a proper list element.
  void AppendElement(std::string_view element);

  // Sets the result to `message` and returns Code::kError.
  Code Error(std::string message);
  // Convenience: "wrong # args: should be \"usage\"".
  Code WrongNumArgs(std::string_view usage);

  // Accumulated stack trace for the error currently being propagated
  // (mirrors the errorInfo global variable, which is also maintained).
  const std::string& error_info() const { return error_info_; }
  void AddErrorInfo(std::string_view info);
  // Appends a "while executing/invoked from within" frame naming the command
  // whose evaluation produced the error.  Called by the parser.
  void AddCommandTrace(std::string_view command_text);
  // Clears the in-progress error trace (used by `catch` after absorbing an
  // error).
  void ResetErrorState() {
    error_in_progress_ = false;
    error_info_.clear();
  }

  // --- Commands --------------------------------------------------------------

  void RegisterCommand(std::string name, CommandProc proc);
  // Registers an extra `info <name>` subcommand.  Layers above the core
  // interpreter (Tk) use this to surface their own introspection data --
  // e.g. `info faults` -- without the core knowing about them.  The proc is
  // invoked with the full `info ...` argument vector.
  void RegisterInfoExtension(std::string name, CommandProc proc);
  const CommandProc* FindInfoExtension(std::string_view name) const;
  bool DeleteCommand(std::string_view name);
  bool RenameCommand(std::string_view old_name, std::string_view new_name);
  bool HasCommand(std::string_view name) const;
  // All registered command names matching a glob pattern (empty = all).
  std::vector<std::string> CommandNames(std::string_view pattern = "") const;

  // User-defined procedures (managed by the `proc` command but exposed for
  // `info body` / `info args`).
  const Proc* FindProc(std::string_view name) const;
  void DefineProc(std::string name, Proc proc);
  std::vector<std::string> ProcNames(std::string_view pattern = "") const;

  // --- Variables --------------------------------------------------------------
  //
  // `name` may be a scalar name ("x") or an array element ("a(i)").

  // Returns nullptr (and sets an error result) if the variable is undefined.
  const std::string* GetVar(std::string_view name);
  // Variant that does not disturb the result on failure.
  const std::string* GetVarQuiet(std::string_view name);
  Code SetVar(std::string_view name, std::string value);
  Code UnsetVar(std::string_view name);
  bool VarExists(std::string_view name);
  // Registers a write/unset trace on a (scalar or whole-array) variable.
  void TraceVar(std::string_view name, VarTraceProc trace);

  // Direct access to array storage, for `array names` etc.  Returns nullptr
  // if `name` is not an array variable.
  const std::map<std::string, std::string>* GetArray(std::string_view name);

  // Names of variables visible in the current frame / the global frame.
  std::vector<std::string> LocalVarNames(std::string_view pattern = "");
  std::vector<std::string> GlobalVarNames(std::string_view pattern = "");

  // `global name`: links `name` in the current frame to the global variable.
  Code LinkGlobal(std::string_view name);
  // `upvar level other my`: links `my` in the current frame to `other` in the
  // frame denoted by `level` ("#0", "1", ...).
  Code LinkUpvar(std::string_view level_spec, std::string_view other, std::string_view my_name);

  // --- Frames ------------------------------------------------------------------

  int current_level() const;
  // Evaluates `script` in the frame denoted by `level_spec` (for `uplevel`).
  Code EvalAtLevel(std::string_view level_spec, std::string_view script);

  // --- Eval cache -----------------------------------------------------------
  //
  // Interp::Eval keeps an LRU cache mapping script text to its pre-parsed
  // command/word structure (see ParsedScript in parser.h), so loop bodies,
  // proc bodies and event-binding scripts are tokenized once and executed
  // many times.  The cache is purely syntactic -- command dispatch and
  // variable lookup stay dynamic -- but `proc` redefinition, `rename` and
  // command deletion flush it anyway (belt and braces, and it makes the
  // invalidation counters observable for tests).

  bool eval_cache_enabled() const { return eval_cache_enabled_; }
  void set_eval_cache_enabled(bool enabled) { eval_cache_enabled_ = enabled; }
  size_t eval_cache_capacity() const { return eval_cache_capacity_; }
  // Shrinking the capacity evicts least-recently-used entries immediately.
  void set_eval_cache_capacity(size_t capacity);
  size_t eval_cache_size() const { return eval_cache_.size(); }
  const EvalCacheStats& eval_cache_stats() const { return eval_cache_stats_; }
  // Drops all entries and zeroes the counters.
  void ClearEvalCache();
  // Invalidation hook: drops all entries (counted in stats().invalidations).
  // Called on proc redefinition, rename and command deletion.
  void InvalidateEvalCache();

  // --- Misc ---------------------------------------------------------------------

  // Nesting limit guard (prevents runaway recursion in scripts).
  int max_nesting_depth() const { return max_nesting_depth_; }
  void set_max_nesting_depth(int depth) { max_nesting_depth_ = depth; }

  // Number of commands executed so far (for `info cmdcount` and benchmarks).
  uint64_t command_count() const { return command_count_; }

 private:
  friend class Parser;
  friend Code ProcInvoke(Interp& interp, const std::string& name, const Proc& proc,
                         std::vector<std::string>& args);
  friend class FrameGuard;
  friend class VmExecutor;

  struct CommandEntry {
    CommandProc proc;
  };

  CallFrame& current_frame() { return *frames_[active_index_]; }
  CallFrame& global_frame() { return *frames_.front(); }

  // Locates (optionally creating) the Var for `name` in `frame`.
  std::shared_ptr<Var> LookupVar(CallFrame& frame, std::string_view base, bool create);

  // Resolves a frame from an uplevel/upvar level spec relative to the
  // current frame.  Returns nullptr on a bad spec.
  CallFrame* ResolveLevel(std::string_view level_spec, bool* explicit_spec);

  void PushFrame(std::string invocation);
  void PopFrame();

  struct EvalCacheEntry {
    std::shared_ptr<const ParsedScript> parsed;
    // Bytecode for `parsed`, compiled lazily on the first compiled-mode
    // execution of this entry.  Dropped with the entry, so the PR-1
    // invalidation rules (proc redefinition, rename, deletion, capacity
    // eviction) carry over to compiled code unchanged.
    std::shared_ptr<const CompiledScript> compiled;
    std::list<std::string_view>::iterator lru_it;
  };

  // Transparent hashing so the owned std::string keys can be probed with the
  // caller's string_view (C++20 heterogeneous lookup) without a copy.
  struct EvalCacheKeyHash {
    using is_transparent = void;
    size_t operator()(std::string_view key) const {
      return std::hash<std::string_view>()(key);
    }
  };

  // Looks `script` up in the eval cache, parsing and inserting on a miss.
  // When `compiled` is non-null (compile mode) the entry's bytecode is
  // compiled on demand and returned alongside.  The returned objects are
  // shared so an entry evicted or invalidated mid-execution stays alive
  // until the execution finishes.
  std::shared_ptr<const ParsedScript> EvalCacheLookup(
      std::string_view script, std::shared_ptr<const CompiledScript>* compiled);

  // Bumps builtin_epoch_ when `name` is one of the builtins the VM inlines.
  void NoteCommandMutation(std::string_view name);

  std::map<std::string, CommandEntry, std::less<>> commands_;
  std::map<std::string, CommandProc, std::less<>> info_extensions_;
  std::map<std::string, Proc, std::less<>> procs_;

  // Eval cache state.  Keys own their script text (an Eval caller's buffer
  // may be freed while the entry lives); LRU entries are views into the map
  // node's stored key, which is stable across rehashing.
  std::unordered_map<std::string, EvalCacheEntry, EvalCacheKeyHash, std::equal_to<>>
      eval_cache_;
  std::list<std::string_view> eval_cache_lru_;  // Front = most recently used.
  EvalCacheStats eval_cache_stats_;
  size_t eval_cache_capacity_ = 256;
  bool eval_cache_enabled_ = true;
  ExecMode exec_mode_ = ExecMode::kCompile;

  // Incremented whenever one of the VM-inlined builtins (set, incr, expr,
  // if, while, foreach, break, continue) is overwritten, deleted or renamed.
  // Nonzero sends every inlined instruction down the generic dispatch path,
  // so shadowing `proc set ...` behaves identically in both exec modes.
  uint64_t builtin_epoch_ = 0;
  // Incremented on every frame push AND pop, so a cached CallFrame pointer
  // can never be revalidated against a recycled address.
  uint64_t frame_generation_ = 0;

  std::vector<std::unique_ptr<CallFrame>> frames_;
  // Index of the frame used for variable lookups; normally the top of
  // frames_, but uplevel temporarily re-targets it.
  size_t active_index_ = 0;

  std::string result_;
  std::string error_info_;
  bool error_in_progress_ = false;

  int nesting_depth_ = 0;
  int max_nesting_depth_ = 1000;
  uint64_t command_count_ = 0;
};

// Invokes a user-defined procedure: pushes a call frame, binds formals to
// args (args[0] is the command name), evaluates the body, and maps `return`
// to a normal completion.
Code ProcInvoke(Interp& interp, const std::string& name, const Proc& proc,
                std::vector<std::string>& args);

// Registers every built-in command (set, if, while, proc, string, list ops,
// expr, info, array, file/exec emulation, ...).  Called by the constructor.
void RegisterBuiltins(Interp& interp);
void RegisterCoreCommands(Interp& interp);
void RegisterListCommands(Interp& interp);
void RegisterStringCommands(Interp& interp);
void RegisterInfoCommands(Interp& interp);
void RegisterIoCommands(Interp& interp);
void RegisterRegexpCommands(Interp& interp);

}  // namespace tcl

#endif  // SRC_TCL_INTERP_H_
