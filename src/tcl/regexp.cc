#include "src/tcl/regexp.h"

#include <array>
#include <cctype>
#include <functional>

namespace tcl {
namespace {

char Fold(char c, bool nocase) {
  return nocase ? static_cast<char>(std::tolower(static_cast<unsigned char>(c))) : c;
}

}  // namespace

struct Regexp::Node {
  enum class Kind {
    kAlt,     // children = branches
    kConcat,  // children in sequence
    kRepeat,  // children[0], min..max (max -1 = unbounded)
    kChar,    // ch
    kAny,     // .
    kClass,   // cls bitmap (+ negate folded in at build time)
    kGroup,   // children[0], capture index `group`
    kBol,     // ^
    kEol,     // $
  };
  Kind kind;
  std::vector<std::unique_ptr<Node>> children;
  char ch = 0;
  std::array<bool, 256> cls{};
  int min = 0;
  int max = -1;
  int group = 0;
};

namespace {

using Node = Regexp::Node;

// Recursive-descent parser over the pattern.
class Parser {
 public:
  Parser(std::string_view pattern, bool nocase) : pattern_(pattern), nocase_(nocase) {}

  std::unique_ptr<Node> Parse(std::string* error, int* group_count) {
    std::unique_ptr<Node> root = ParseAlt();
    if (!error_.empty()) {
      *error = error_;
      return nullptr;
    }
    if (pos_ != pattern_.size()) {
      *error = "unmatched () in regular expression";
      return nullptr;
    }
    *group_count = next_group_ - 1;
    return root;
  }

 private:
  std::unique_ptr<Node> MakeNode(Node::Kind kind) {
    auto node = std::make_unique<Node>();
    node->kind = kind;
    return node;
  }

  std::unique_ptr<Node> ParseAlt() {
    auto alt = MakeNode(Node::Kind::kAlt);
    alt->children.push_back(ParseConcat());
    while (pos_ < pattern_.size() && pattern_[pos_] == '|') {
      ++pos_;
      alt->children.push_back(ParseConcat());
    }
    if (alt->children.size() == 1) {
      return std::move(alt->children[0]);
    }
    return alt;
  }

  std::unique_ptr<Node> ParseConcat() {
    auto concat = MakeNode(Node::Kind::kConcat);
    while (pos_ < pattern_.size() && pattern_[pos_] != '|' && pattern_[pos_] != ')') {
      std::unique_ptr<Node> atom = ParseRepeat();
      if (atom == nullptr) {
        break;
      }
      concat->children.push_back(std::move(atom));
    }
    return concat;
  }

  std::unique_ptr<Node> ParseRepeat() {
    std::unique_ptr<Node> atom = ParseAtom();
    if (atom == nullptr) {
      return nullptr;
    }
    while (pos_ < pattern_.size()) {
      char c = pattern_[pos_];
      int min = 0;
      int max = -1;
      if (c == '*') {
        min = 0;
      } else if (c == '+') {
        min = 1;
      } else if (c == '?') {
        min = 0;
        max = 1;
      } else {
        break;
      }
      ++pos_;
      if (atom->kind == Node::Kind::kBol || atom->kind == Node::Kind::kEol) {
        error_ = "quantifier applied to anchor";
        return nullptr;
      }
      auto repeat = MakeNode(Node::Kind::kRepeat);
      repeat->min = min;
      repeat->max = max;
      repeat->children.push_back(std::move(atom));
      atom = std::move(repeat);
    }
    return atom;
  }

  std::unique_ptr<Node> ParseAtom() {
    if (pos_ >= pattern_.size()) {
      return nullptr;
    }
    char c = pattern_[pos_];
    switch (c) {
      case '(': {
        ++pos_;
        int index = next_group_++;
        auto group = MakeNode(Node::Kind::kGroup);
        group->group = index;
        group->children.push_back(ParseAlt());
        if (pos_ >= pattern_.size() || pattern_[pos_] != ')') {
          error_ = "unmatched ( in regular expression";
          return nullptr;
        }
        ++pos_;
        return group;
      }
      case ')':
        return nullptr;
      case '[':
        return ParseClass();
      case '.':
        ++pos_;
        return MakeNode(Node::Kind::kAny);
      case '^':
        ++pos_;
        return MakeNode(Node::Kind::kBol);
      case '$':
        ++pos_;
        return MakeNode(Node::Kind::kEol);
      case '*':
      case '+':
      case '?':
        error_ = std::string("quantifier \"") + c + "\" with nothing to repeat";
        return nullptr;
      case '\\': {
        ++pos_;
        if (pos_ >= pattern_.size()) {
          error_ = "trailing backslash in regular expression";
          return nullptr;
        }
        char escaped = pattern_[pos_];
        ++pos_;
        auto node = MakeNode(Node::Kind::kChar);
        switch (escaped) {
          case 'n':
            node->ch = '\n';
            break;
          case 't':
            node->ch = '\t';
            break;
          case 'r':
            node->ch = '\r';
            break;
          default:
            node->ch = Fold(escaped, nocase_);
            break;
        }
        return node;
      }
      default: {
        ++pos_;
        auto node = MakeNode(Node::Kind::kChar);
        node->ch = Fold(c, nocase_);
        return node;
      }
    }
  }

  std::unique_ptr<Node> ParseClass() {
    ++pos_;  // Skip '['.
    auto node = MakeNode(Node::Kind::kClass);
    bool negate = false;
    if (pos_ < pattern_.size() && pattern_[pos_] == '^') {
      negate = true;
      ++pos_;
    }
    bool first = true;
    while (pos_ < pattern_.size() && (pattern_[pos_] != ']' || first)) {
      first = false;
      unsigned char lo = static_cast<unsigned char>(pattern_[pos_]);
      if (lo == '\\' && pos_ + 1 < pattern_.size()) {
        ++pos_;
        lo = static_cast<unsigned char>(pattern_[pos_]);
      }
      ++pos_;
      unsigned char hi = lo;
      if (pos_ + 1 < pattern_.size() && pattern_[pos_] == '-' && pattern_[pos_ + 1] != ']') {
        ++pos_;
        hi = static_cast<unsigned char>(pattern_[pos_]);
        ++pos_;
      }
      if (lo > hi) {
        std::swap(lo, hi);
      }
      for (unsigned int ch = lo; ch <= hi; ++ch) {
        node->cls[ch] = true;
        if (nocase_) {
          node->cls[static_cast<unsigned char>(std::tolower(ch))] = true;
          node->cls[static_cast<unsigned char>(std::toupper(ch))] = true;
        }
      }
    }
    if (pos_ >= pattern_.size()) {
      error_ = "unmatched [] in regular expression";
      return nullptr;
    }
    ++pos_;  // Skip ']'.
    if (negate) {
      for (bool& bit : node->cls) {
        bit = !bit;
      }
    }
    return node;
  }

  std::string_view pattern_;
  bool nocase_;
  size_t pos_ = 0;
  int next_group_ = 1;
  std::string error_;
};

// Backtracking matcher using explicit continuations.
class Matcher {
 public:
  Matcher(std::string_view text, bool nocase, std::vector<RegexpRange>* ranges)
      : text_(text), nocase_(nocase), ranges_(ranges) {}

  using Cont = std::function<bool(size_t)>;

  bool Match(const Node* node, size_t pos, const Cont& k) {
    switch (node->kind) {
      case Node::Kind::kChar:
        if (pos < text_.size() && Fold(text_[pos], nocase_) == node->ch) {
          return k(pos + 1);
        }
        return false;
      case Node::Kind::kAny:
        if (pos < text_.size() && text_[pos] != '\n') {
          return k(pos + 1);
        }
        return false;
      case Node::Kind::kClass:
        if (pos < text_.size() && node->cls[static_cast<unsigned char>(text_[pos])]) {
          return k(pos + 1);
        }
        return false;
      case Node::Kind::kBol:
        return pos == 0 ? k(pos) : false;
      case Node::Kind::kEol:
        return pos == text_.size() ? k(pos) : false;
      case Node::Kind::kConcat:
        return MatchSeq(node, 0, pos, k);
      case Node::Kind::kAlt: {
        for (const auto& branch : node->children) {
          if (Match(branch.get(), pos, k)) {
            return true;
          }
        }
        return false;
      }
      case Node::Kind::kGroup: {
        int index = node->group;
        RegexpRange saved = (*ranges_)[index];
        bool ok = Match(node->children[0].get(), pos, [&, index, pos](size_t end) {
          RegexpRange prev = (*ranges_)[index];
          (*ranges_)[index] = {static_cast<int>(pos), static_cast<int>(end)};
          if (k(end)) {
            return true;
          }
          (*ranges_)[index] = prev;
          return false;
        });
        if (!ok) {
          (*ranges_)[index] = saved;
        }
        return ok;
      }
      case Node::Kind::kRepeat:
        return MatchRepeat(node, 0, pos, k);
    }
    return false;
  }

 private:
  bool MatchSeq(const Node* node, size_t index, size_t pos, const Cont& k) {
    if (index == node->children.size()) {
      return k(pos);
    }
    return Match(node->children[index].get(), pos,
                 [&](size_t next) { return MatchSeq(node, index + 1, next, k); });
  }

  bool MatchRepeat(const Node* node, int count, size_t pos, const Cont& k) {
    const Node* child = node->children[0].get();
    // Greedy: try one more iteration first (unless at max), then fall back
    // to the continuation once the minimum is satisfied.
    if (node->max < 0 || count < node->max) {
      bool advanced = Match(child, pos, [&](size_t next) {
        if (next == pos) {
          return false;  // Empty iteration: stop to avoid infinite loops.
        }
        return MatchRepeat(node, count + 1, next, k);
      });
      if (advanced) {
        return true;
      }
    }
    if (count >= node->min) {
      return k(pos);
    }
    return false;
  }

  std::string_view text_;
  bool nocase_;
  std::vector<RegexpRange>* ranges_;
};

}  // namespace

Regexp::~Regexp() = default;

std::unique_ptr<Regexp> Regexp::Compile(std::string_view pattern, bool nocase,
                                        std::string* error) {
  Parser parser(pattern, nocase);
  int group_count = 0;
  std::unique_ptr<Node> root = parser.Parse(error, &group_count);
  if (root == nullptr) {
    return nullptr;
  }
  auto compiled = std::unique_ptr<Regexp>(new Regexp());
  compiled->root_ = std::move(root);
  compiled->group_count_ = group_count;
  compiled->nocase_ = nocase;
  return compiled;
}

bool Regexp::Search(std::string_view text, size_t start,
                    std::vector<RegexpRange>* ranges) const {
  ranges->assign(static_cast<size_t>(group_count_) + 1, RegexpRange());
  for (size_t pos = start; pos <= text.size(); ++pos) {
    Matcher matcher(text, nocase_, ranges);
    size_t match_end = 0;
    bool found = matcher.Match(root_.get(), pos, [&](size_t end) {
      match_end = end;
      return true;
    });
    if (found) {
      (*ranges)[0] = {static_cast<int>(pos), static_cast<int>(match_end)};
      return true;
    }
    ranges->assign(static_cast<size_t>(group_count_) + 1, RegexpRange());
  }
  return false;
}

}  // namespace tcl
