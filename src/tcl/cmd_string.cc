// String commands: the `string` ensemble, `format`, and `scan`.

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "src/tcl/interp.h"
#include "src/tcl/list.h"
#include "src/tcl/utils.h"

namespace tcl {
namespace {

Code StringCmd(Interp& interp, std::vector<std::string>& args) {
  if (args.size() < 3) {
    return interp.WrongNumArgs("string option arg ?arg ...?");
  }
  const std::string& option = args[1];
  auto arity = [&](size_t n, const char* usage) -> bool {
    if (args.size() != n) {
      interp.WrongNumArgs(usage);
      return false;
    }
    return true;
  };
  if (option == "compare") {
    if (!arity(4, "string compare string1 string2")) {
      return Code::kError;
    }
    int cmp = args[2].compare(args[3]);
    interp.SetResult(FormatInt(cmp < 0 ? -1 : (cmp > 0 ? 1 : 0)));
    return Code::kOk;
  }
  if (option == "match") {
    if (!arity(4, "string match pattern string")) {
      return Code::kError;
    }
    interp.SetResult(StringMatch(args[2], args[3]) ? "1" : "0");
    return Code::kOk;
  }
  if (option == "length") {
    if (!arity(3, "string length string")) {
      return Code::kError;
    }
    interp.SetResult(FormatInt(static_cast<int64_t>(args[2].size())));
    return Code::kOk;
  }
  if (option == "index") {
    if (!arity(4, "string index string charIndex")) {
      return Code::kError;
    }
    std::optional<int64_t> index = ParseInt(args[3]);
    int64_t idx = 0;
    if (args[3] == "end") {
      idx = static_cast<int64_t>(args[2].size()) - 1;
    } else if (index) {
      idx = *index;
    } else {
      return interp.Error("bad index \"" + args[3] + "\": must be integer or end");
    }
    if (idx < 0 || idx >= static_cast<int64_t>(args[2].size())) {
      interp.ResetResult();
    } else {
      interp.SetResult(std::string(1, args[2][idx]));
    }
    return Code::kOk;
  }
  if (option == "range") {
    if (!arity(5, "string range string first last")) {
      return Code::kError;
    }
    const std::string& text = args[2];
    auto parse_end_index = [&](const std::string& spec, int64_t* out) -> bool {
      if (spec == "end") {
        *out = static_cast<int64_t>(text.size()) - 1;
        return true;
      }
      std::optional<int64_t> v = ParseInt(spec);
      if (!v) {
        return false;
      }
      *out = *v;
      return true;
    };
    int64_t first = 0;
    int64_t last = 0;
    if (!parse_end_index(args[3], &first) || !parse_end_index(args[4], &last)) {
      return interp.Error("expected integer or \"end\"");
    }
    first = std::max<int64_t>(first, 0);
    last = std::min<int64_t>(last, static_cast<int64_t>(text.size()) - 1);
    if (first > last) {
      interp.ResetResult();
    } else {
      interp.SetResult(text.substr(first, last - first + 1));
    }
    return Code::kOk;
  }
  if (option == "first" || option == "last") {
    if (args.size() != 4) {
      return interp.WrongNumArgs("string " + option + " string1 string2");
    }
    size_t pos = option == "first" ? args[3].find(args[2]) : args[3].rfind(args[2]);
    interp.SetResult(
        FormatInt(pos == std::string::npos ? -1 : static_cast<int64_t>(pos)));
    return Code::kOk;
  }
  if (option == "tolower") {
    if (!arity(3, "string tolower string")) {
      return Code::kError;
    }
    interp.SetResult(ToLowerAscii(args[2]));
    return Code::kOk;
  }
  if (option == "toupper") {
    if (!arity(3, "string toupper string")) {
      return Code::kError;
    }
    interp.SetResult(ToUpperAscii(args[2]));
    return Code::kOk;
  }
  if (option == "trim" || option == "trimleft" || option == "trimright") {
    if (args.size() != 3 && args.size() != 4) {
      return interp.WrongNumArgs("string " + option + " string ?chars?");
    }
    std::string chars = args.size() == 4 ? args[3] : " \t\n\r\f\v";
    std::string text = args[2];
    size_t begin = 0;
    size_t end = text.size();
    if (option != "trimright") {
      while (begin < end && chars.find(text[begin]) != std::string::npos) {
        ++begin;
      }
    }
    if (option != "trimleft") {
      while (end > begin && chars.find(text[end - 1]) != std::string::npos) {
        --end;
      }
    }
    interp.SetResult(text.substr(begin, end - begin));
    return Code::kOk;
  }
  if (option == "wordstart" || option == "wordend") {
    if (!arity(4, "string wordstart string index")) {
      return Code::kError;
    }
    const std::string& text = args[2];
    std::optional<int64_t> parsed = ParseInt(args[3]);
    if (!parsed) {
      return interp.Error("expected integer but got \"" + args[3] + "\"");
    }
    int64_t idx = std::clamp<int64_t>(*parsed, 0,
                                      std::max<int64_t>(0, static_cast<int64_t>(text.size()) - 1));
    auto is_word = [](char c) {
      return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
    };
    if (option == "wordstart") {
      while (idx > 0 && !text.empty() && is_word(text[idx]) && is_word(text[idx - 1])) {
        --idx;
      }
      interp.SetResult(FormatInt(idx));
    } else {
      int64_t end = idx;
      while (end < static_cast<int64_t>(text.size()) && is_word(text[end])) {
        ++end;
      }
      if (end == idx && end < static_cast<int64_t>(text.size())) {
        ++end;  // Non-word char: the "word" is that single character.
      }
      interp.SetResult(FormatInt(end));
    }
    return Code::kOk;
  }
  return interp.Error(
      "bad option \"" + option +
      "\": should be compare, first, index, last, length, match, range, tolower, toupper, "
      "trim, trimleft, trimright, wordend, or wordstart");
}

// `format spec arg arg ...` -- a faithful subset of sprintf.
Code FormatCmd(Interp& interp, std::vector<std::string>& args) {
  if (args.size() < 2) {
    return interp.WrongNumArgs("format formatString ?arg arg ...?");
  }
  const std::string& spec = args[1];
  std::string out;
  size_t arg_index = 2;
  size_t i = 0;
  while (i < spec.size()) {
    char c = spec[i];
    if (c != '%') {
      out.push_back(c);
      ++i;
      continue;
    }
    ++i;
    if (i < spec.size() && spec[i] == '%') {
      out.push_back('%');
      ++i;
      continue;
    }
    // Collect the conversion spec: flags, width, precision.
    std::string conv = "%";
    while (i < spec.size() && std::strchr("-+ #0", spec[i]) != nullptr) {
      conv.push_back(spec[i]);
      ++i;
    }
    auto fetch_arg = [&](std::string* value) -> bool {
      if (arg_index >= args.size()) {
        return false;
      }
      *value = args[arg_index];
      ++arg_index;
      return true;
    };
    // Width (possibly '*').
    if (i < spec.size() && spec[i] == '*') {
      std::string width_arg;
      if (!fetch_arg(&width_arg)) {
        return interp.Error("not enough arguments for all format specifiers");
      }
      conv += FormatInt(ParseInt(width_arg).value_or(0));
      ++i;
    } else {
      while (i < spec.size() && std::isdigit(static_cast<unsigned char>(spec[i]))) {
        conv.push_back(spec[i]);
        ++i;
      }
    }
    if (i < spec.size() && spec[i] == '.') {
      conv.push_back('.');
      ++i;
      if (i < spec.size() && spec[i] == '*') {
        std::string prec_arg;
        if (!fetch_arg(&prec_arg)) {
          return interp.Error("not enough arguments for all format specifiers");
        }
        conv += FormatInt(ParseInt(prec_arg).value_or(0));
        ++i;
      } else {
        while (i < spec.size() && std::isdigit(static_cast<unsigned char>(spec[i]))) {
          conv.push_back(spec[i]);
          ++i;
        }
      }
    }
    // Skip length modifiers (h, l) -- we always use the widest type.
    while (i < spec.size() && (spec[i] == 'h' || spec[i] == 'l')) {
      ++i;
    }
    if (i >= spec.size()) {
      return interp.Error("format string ended in middle of field specifier");
    }
    char kind = spec[i];
    ++i;
    std::string value;
    if (!fetch_arg(&value)) {
      return interp.Error("not enough arguments for all format specifiers");
    }
    char buf[512];
    switch (kind) {
      case 'd':
      case 'i':
      case 'o':
      case 'u':
      case 'x':
      case 'X': {
        std::optional<int64_t> v = ParseInt(value);
        if (!v) {
          if (std::optional<double> dv = ParseDouble(value)) {
            v = static_cast<int64_t>(*dv);
          } else {
            return interp.Error("expected integer but got \"" + value + "\"");
          }
        }
        conv += "ll";
        conv.push_back(kind == 'i' ? 'd' : kind);
        std::snprintf(buf, sizeof(buf), conv.c_str(), static_cast<long long>(*v));
        out += buf;
        break;
      }
      case 'c': {
        std::optional<int64_t> v = ParseInt(value);
        if (!v) {
          return interp.Error("expected integer but got \"" + value + "\"");
        }
        conv.push_back('c');
        std::snprintf(buf, sizeof(buf), conv.c_str(), static_cast<int>(*v));
        out += buf;
        break;
      }
      case 'e':
      case 'E':
      case 'f':
      case 'g':
      case 'G': {
        std::optional<double> v = ParseDouble(value);
        if (!v) {
          return interp.Error("expected floating-point number but got \"" + value + "\"");
        }
        conv.push_back(kind);
        std::snprintf(buf, sizeof(buf), conv.c_str(), *v);
        out += buf;
        break;
      }
      case 's': {
        conv.push_back('s');
        // Strings can exceed the stack buffer; use the dynamic overload.
        int needed = std::snprintf(nullptr, 0, conv.c_str(), value.c_str());
        std::string formatted(needed > 0 ? needed : 0, '\0');
        std::snprintf(formatted.data(), formatted.size() + 1, conv.c_str(), value.c_str());
        out += formatted;
        break;
      }
      default:
        return interp.Error(std::string("bad field specifier \"") + kind + "\"");
    }
  }
  interp.SetResult(std::move(out));
  return Code::kOk;
}

// `scan string format var var ...`
Code ScanCmd(Interp& interp, std::vector<std::string>& args) {
  if (args.size() < 3) {
    return interp.WrongNumArgs("scan string format ?varName varName ...?");
  }
  const std::string& input = args[1];
  const std::string& spec = args[2];
  size_t var_index = 3;
  size_t ipos = 0;
  int64_t conversions = 0;
  size_t s = 0;
  auto skip_space = [&]() {
    while (ipos < input.size() && std::isspace(static_cast<unsigned char>(input[ipos]))) {
      ++ipos;
    }
  };
  while (s < spec.size()) {
    char c = spec[s];
    if (std::isspace(static_cast<unsigned char>(c))) {
      skip_space();
      ++s;
      continue;
    }
    if (c != '%') {
      if (ipos < input.size() && input[ipos] == c) {
        ++ipos;
        ++s;
        continue;
      }
      break;
    }
    ++s;
    if (s >= spec.size()) {
      break;
    }
    // Optional width.
    size_t width = 0;
    while (s < spec.size() && std::isdigit(static_cast<unsigned char>(spec[s]))) {
      width = width * 10 + (spec[s] - '0');
      ++s;
    }
    if (s >= spec.size()) {
      break;
    }
    char kind = spec[s];
    ++s;
    std::string token;
    if (kind == 'c') {
      if (ipos >= input.size()) {
        break;
      }
      token = std::string(1, input[ipos]);
      ++ipos;
      if (var_index >= args.size()) {
        return interp.Error("not enough variables for all conversions");
      }
      interp.SetVar(args[var_index], FormatInt(static_cast<unsigned char>(token[0])));
      ++var_index;
      ++conversions;
      continue;
    }
    skip_space();
    size_t start = ipos;
    size_t limit = width > 0 ? std::min(input.size(), ipos + width) : input.size();
    if (kind == 'd' || kind == 'o' || kind == 'x') {
      if (ipos < limit && (input[ipos] == '-' || input[ipos] == '+')) {
        ++ipos;
      }
      auto is_digit_for = [&](char ch) {
        if (kind == 'x') {
          return std::isxdigit(static_cast<unsigned char>(ch)) != 0;
        }
        if (kind == 'o') {
          return ch >= '0' && ch <= '7';
        }
        return std::isdigit(static_cast<unsigned char>(ch)) != 0;
      };
      while (ipos < limit && is_digit_for(input[ipos])) {
        ++ipos;
      }
      if (ipos == start) {
        break;
      }
      token = input.substr(start, ipos - start);
      int base = kind == 'd' ? 10 : (kind == 'o' ? 8 : 16);
      long long value = std::strtoll(token.c_str(), nullptr, base);
      if (var_index >= args.size()) {
        return interp.Error("not enough variables for all conversions");
      }
      interp.SetVar(args[var_index], FormatInt(value));
    } else if (kind == 'f' || kind == 'e' || kind == 'g') {
      while (ipos < limit &&
             (std::isdigit(static_cast<unsigned char>(input[ipos])) ||
              std::strchr("+-.eE", input[ipos]) != nullptr)) {
        ++ipos;
      }
      if (ipos == start) {
        break;
      }
      token = input.substr(start, ipos - start);
      std::optional<double> value = ParseDouble(token);
      if (!value) {
        break;
      }
      if (var_index >= args.size()) {
        return interp.Error("not enough variables for all conversions");
      }
      interp.SetVar(args[var_index], FormatDouble(*value));
    } else if (kind == 's') {
      while (ipos < limit && !std::isspace(static_cast<unsigned char>(input[ipos]))) {
        ++ipos;
      }
      token = input.substr(start, ipos - start);
      if (var_index >= args.size()) {
        return interp.Error("not enough variables for all conversions");
      }
      interp.SetVar(args[var_index], token);
    } else {
      return interp.Error(std::string("bad scan conversion character \"") + kind + "\"");
    }
    ++var_index;
    ++conversions;
  }
  interp.SetResult(FormatInt(conversions));
  return Code::kOk;
}

}  // namespace

void RegisterStringCommands(Interp& interp) {
  interp.RegisterCommand("string", StringCmd);
  interp.RegisterCommand("format", FormatCmd);
  interp.RegisterCommand("scan", ScanCmd);
}

}  // namespace tcl
