// wish -- the windowing shell (Section 5 of the paper).
//
// Reads Tcl commands from a script file (-f) or standard input and executes
// them against a Tk application.  Entire windowing applications can be
// written as wish scripts, e.g. the 21-line directory browser of Figure 9
// (examples/browse.tcl in this repository).
//
// Because the display is simulated in-process, wish adds two flags that
// replace "look at the screen":
//   -dump       print the window tree (the Figure 10 stand-in) on exit
//   -ppm FILE   write the framebuffer as a PPM image on exit

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "src/tcl/list.h"
#include "src/tk/app.h"
#include "src/xsim/server.h"

namespace {

void Repl(tk::App& app) {
  std::string command;
  std::string line;
  std::printf("%% ");
  std::fflush(stdout);
  while (std::getline(std::cin, line)) {
    command += line;
    command.push_back('\n');
    // Only evaluate complete commands (balanced braces/brackets/quotes).
    std::vector<std::string> check = {"info", "complete", command};
    app.interp().EvalWords(check);
    if (app.interp().result() == "1") {
      std::vector<std::string> record = {"history", "add", command};
      app.interp().EvalWords(record);
      tcl::Code code = app.interp().Eval(command);
      if (!app.interp().result().empty()) {
        std::printf("%s%s\n", code == tcl::Code::kError ? "error: " : "",
                    app.interp().result().c_str());
      }
      command.clear();
      app.Update();
      std::printf("%% ");
    } else {
      std::printf("> ");
    }
    std::fflush(stdout);
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string script_file;
  std::string app_name = "wish";
  bool dump_tree = false;
  std::string ppm_file;
  std::vector<std::string> script_args;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "-f") == 0 && i + 1 < argc) {
      script_file = argv[++i];
    } else if (std::strcmp(argv[i], "-name") == 0 && i + 1 < argc) {
      app_name = argv[++i];
    } else if (std::strcmp(argv[i], "-dump") == 0) {
      dump_tree = true;
    } else if (std::strcmp(argv[i], "-ppm") == 0 && i + 1 < argc) {
      ppm_file = argv[++i];
    } else if (std::strcmp(argv[i], "-help") == 0) {
      std::printf("usage: wish ?-f script? ?-name appName? ?-dump? ?-ppm file? ?arg ...?\n");
      return 0;
    } else {
      script_args.emplace_back(argv[i]);
    }
  }

  xsim::Server server;
  tk::App app(server, app_name);
  tcl::Interp& interp = app.interp();

  // Expose the script arguments, as wish does.
  interp.SetVar("argv0", script_file.empty() ? "wish" : script_file);
  interp.SetVar("argc", std::to_string(script_args.size()));
  interp.SetVar("argv", tcl::MergeList(script_args));

  int exit_code = 0;
  if (!script_file.empty()) {
    std::ifstream file(script_file);
    if (!file) {
      std::fprintf(stderr, "wish: couldn't read file \"%s\"\n", script_file.c_str());
      return 1;
    }
    std::ostringstream contents;
    contents << file.rdbuf();
    tcl::Code code = interp.Eval(contents.str());
    if (code == tcl::Code::kError) {
      std::fprintf(stderr, "wish: %s\n", interp.result().c_str());
      const std::string* info = interp.GetVarQuiet("errorInfo");
      if (info != nullptr) {
        std::fprintf(stderr, "%s\n", info->c_str());
      }
      exit_code = 1;
    }
    app.Update();
  } else {
    Repl(app);
  }

  if (dump_tree) {
    std::printf("%s", server.DumpTree().c_str());
  }
  if (!ppm_file.empty()) {
    std::ofstream out(ppm_file, std::ios::binary);
    out << server.raster().ToPpm();
  }
  return exit_code;
}
